"""Thin setup.py shim.

The environment ships setuptools without the ``wheel`` package, so PEP
660 editable installs (``pip install -e .`` via pyproject only) fail
with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
