"""repro — reproduction of *Make Every Word Count: Adaptive Byzantine
Agreement with Fewer Words* (Cohen, Keidar, Spiegelman, PODC 2022).

Public API highlights
---------------------
* :class:`repro.config.SystemConfig` — deployment parameters (``n = 2t + 1``).
* :func:`repro.core.byzantine_broadcast.run_byzantine_broadcast` — the
  adaptive ``O(n(f+1))``-word Byzantine Broadcast (Algorithms 1+2).
* :func:`repro.core.weak_ba.run_weak_ba` — adaptive weak Byzantine
  Agreement with unique validity (Algorithms 3+4).
* :func:`repro.core.strong_ba.run_strong_ba` — binary strong BA, linear
  words when failure-free (Algorithm 5).
* :mod:`repro.adversary` — pluggable Byzantine strategies.
* :mod:`repro.analysis` — sweeps and complexity-slope fitting for the
  benchmark harness.
"""

from repro.config import RunParameters, SystemConfig

__version__ = "1.0.0"

__all__ = ["SystemConfig", "RunParameters", "__version__"]
