"""Counterexample shrinking and the JSON replay artifact.

A raw counterexample from the explorer is a decision sequence plus the
violation kinds its run produced.  Because option 0 is always the
canonical continuation (identity inbox order, no drop, no duplicate, no
delay, first adversary parameter), *zeroing* a decision is the natural
"remove this perturbation" move — so shrinking is ddmin over the
sequence's nonzero positions, followed by per-position value
minimization and trailing-zero truncation.  The shrunk sequence
reproduces (at least) the original violation kinds and is typically a
handful of nonzero entries: the schedule decisions that *matter*.

The replay artifact is plain JSON::

    {"format": "repro-mc-replay/1",
     "scenario": "weak-ba",
     "params": {...},                  # rebuilds the scenario exactly
     "decisions": [0, 3, 1],
     "violations": [{"kind": ..., "detail": ...}, ...],
     "choice_labels": ["order(2, 7)", ...]}   # human documentation

``scenario``/``params`` feed :func:`~repro.mc.scenario.make_scenario`,
``decisions`` feed a :class:`~repro.mc.choices.ScriptedChoices` (with
the canonical all-zeros continuation past the end, since shrinking
strips trailing zeros) — no pickling, no closures, re-executable by any
later checkout that keeps the scenario registry stable.  :func:`replay`
verifies the recorded violations recur and raises
:class:`~repro.errors.ModelCheckError` on divergence (as does a script
entry that no longer fits its choice point's arity).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ModelCheckError
from repro.mc.explore import Counterexample, ScheduleOutcome, run_schedule
from repro.mc.scenario import Scenario, make_scenario

REPLAY_FORMAT = "repro-mc-replay/1"


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


@dataclass
class ShrinkResult:
    decisions: tuple[int, ...]
    original: tuple[int, ...]
    kinds: tuple[str, ...]
    tests: int
    """Schedules executed while shrinking."""


def _reproduces(
    scenario: Scenario, decisions: Iterable[int], kinds: frozenset[str]
) -> ScheduleOutcome | None:
    outcome = run_schedule(scenario, list(decisions))
    if outcome.report is None:
        return None
    if kinds <= {v.kind for v in outcome.report.violations}:
        return outcome
    return None


def shrink(scenario: Scenario, counterexample: Counterexample) -> ShrinkResult:
    """Minimize ``counterexample.decisions`` while preserving its
    violation kinds; see the module docstring for the strategy."""
    kinds = frozenset(counterexample.kinds)
    tests = 0

    def test(candidate: list[int]) -> bool:
        nonlocal tests
        tests += 1
        return _reproduces(scenario, candidate, kinds) is not None

    best = list(counterexample.decisions)
    if not test(best):
        raise ModelCheckError(
            f"counterexample does not reproduce kinds {sorted(kinds)}: "
            f"{best}"
        )

    # Phase 1: ddmin over the nonzero positions (zeroing a position
    # restores the canonical choice there).
    def applied(keep: set[int]) -> list[int]:
        return [d if i in keep else 0 for i, d in enumerate(best)]

    nonzero = [i for i, d in enumerate(best) if d]
    granularity = 2
    while nonzero:
        chunk_size = max(1, len(nonzero) // granularity)
        chunks = [
            nonzero[i : i + chunk_size]
            for i in range(0, len(nonzero), chunk_size)
        ]
        reduced = False
        for chunk in chunks:
            keep = [i for i in nonzero if i not in chunk]
            if test(applied(set(keep))):
                nonzero = keep
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(nonzero):
                break
            granularity = min(len(nonzero), granularity * 2)
    best = applied(set(nonzero))

    # Phase 2: minimize surviving values toward the canonical option.
    for i in nonzero:
        for smaller in range(1, best[i]):
            candidate = list(best)
            candidate[i] = smaller
            if test(candidate):
                best = candidate
                break

    # Phase 3: drop the trailing canonical region (non-strict scripts
    # default to 0 past the end, so trailing zeros are pure noise).
    while best and best[-1] == 0:
        best.pop()

    return ShrinkResult(
        decisions=tuple(best),
        original=tuple(counterexample.decisions),
        kinds=tuple(sorted(kinds)),
        tests=tests,
    )


# ----------------------------------------------------------------------
# Replay artifacts
# ----------------------------------------------------------------------


def replay_artifact(
    scenario: Scenario, decisions: Iterable[int]
) -> dict[str, Any]:
    """Build the JSON artifact for ``decisions`` (re-running them once
    to record the violations and human-readable choice labels)."""
    decisions = list(decisions)
    outcome = run_schedule(scenario, decisions)
    if outcome.report is None:
        raise ModelCheckError("cannot build an artifact for a pruned run")
    return {
        "format": REPLAY_FORMAT,
        "scenario": scenario.name,
        "params": dict(scenario.params),
        "decisions": decisions,
        "violations": [
            {"kind": v.kind, "detail": v.detail}
            for v in outcome.report.violations
        ],
        "choice_labels": [
            f"{entry.point.kind}{entry.point.coords}={entry.chosen}"
            f"/{entry.point.options}"
            for entry in outcome.log
        ],
    }


def save_replay(path: str | Path, artifact: dict[str, Any]) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def load_replay(path: str | Path) -> dict[str, Any]:
    artifact = json.loads(Path(path).read_text())
    if artifact.get("format") != REPLAY_FORMAT:
        raise ModelCheckError(
            f"unsupported replay format {artifact.get('format')!r} "
            f"(expected {REPLAY_FORMAT})"
        )
    return artifact


def replay(artifact: dict[str, Any], *, verify: bool = True) -> ScheduleOutcome:
    """Re-execute an artifact's schedule from its (name, params) pair.

    With ``verify`` (default), the recorded violation kinds must recur
    exactly; divergence raises :class:`~repro.errors.ModelCheckError`.
    """
    scenario = make_scenario(artifact["scenario"], **artifact["params"])
    outcome = run_schedule(scenario, list(artifact["decisions"]))
    if verify:
        recorded = sorted({v["kind"] for v in artifact["violations"]})
        observed = sorted({v.kind for v in outcome.report.violations})
        if recorded != observed:
            raise ModelCheckError(
                f"replay diverged: artifact records violations {recorded}, "
                f"run produced {observed}"
            )
    return outcome
