"""Mutation testing: does the checker actually check anything?

A model checker that reports "no violations" is only as credible as its
ability to *find* violations when the protocol is wrong.  Each mutant
here re-introduces a bug the paper's design rules out, paired with the
lemma that rules it out:

``quorum-off-by-one``
    Commit quorum ``⌈(n+t+1)/2⌉ - 1`` (= ``t+1`` at ``n = 2t+1``) —
    discards quorum intersection in a correct process (Section 6's
    first key observation, the load-bearing fact behind Lemma 15's
    unique finalize certificate).  Killed by an **agreement** violation
    under the equivocating-leader attack.
``fallback-echo-skipped``
    A correct process no longer re-broadcasts the first fallback
    certificate it receives — discards Lemmas 17/18 ("whenever one
    correct process runs the fallback algorithm, all of them do").
    Killed by a **fallback-sync** violation under Section 6's
    certificate-dealing attack (agreement survives in the halting
    simulation — see ``benchmarks/bench_ablation_fallback_sync.py`` —
    which is exactly why the checker carries a dedicated predicate).
``non-silent-leaders``
    A decided leader re-proposes in its phase anyway — discards the
    adaptivity mechanism behind ``O(n(f+1))`` (Algorithm 4 line 31,
    Lemma 9's accounting).  Killed by an **adaptive-silence**
    violation.

For each mutant, :func:`kill_mutant` explores the mutated scenario to a
first counterexample, shrinks it, builds the JSON replay artifact, and
re-verifies the artifact reproduces the violation — then explores the
*unmutated* twin of the same scenario exhaustively to confirm the kill
is the mutation's doing, not the scenario's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ModelCheckError
from repro.mc.explore import (
    Counterexample,
    ExplorationResult,
    explore_exhaustive,
)
from repro.mc.scenario import Scenario, make_scenario
from repro.mc.shrink import ShrinkResult, replay, replay_artifact, save_replay, shrink


@dataclass(frozen=True)
class MutantSpec:
    """One protocol mutation plus the scenario that kills it."""

    name: str
    description: str
    lemma: str
    """The paper lemma/section the mutation discards."""
    expected_kinds: frozenset[str]
    """Violation kinds the kill must include."""
    mutated: dict[str, Any] = field(default_factory=dict)
    baseline: dict[str, Any] = field(default_factory=dict)
    """Scenario params with / without the mutation (same attack)."""
    max_runs: int = 5_000
    scenario: str = "weak-ba"
    """Registry name of the scenario family the kill runs in — backend
    mutants point at their backend's scenario (e.g. "civit-strong-ba")."""


def _cert_dealer_params(**overrides: Any) -> dict[str, Any]:
    params: dict[str, Any] = dict(
        n=7,
        num_phases=7,
        adversary="cert-dealer",
        max_ticks=200,
        reorder=False,
        word_constant=120.0,  # the fallback's quadratic spend is legal here
    )
    params.update(overrides)
    return params


MUTANTS: dict[str, MutantSpec] = {
    "quorum-off-by-one": MutantSpec(
        name="quorum-off-by-one",
        description="commit quorum ceil((n+t+1)/2) - 1: no correct-process "
        "intersection between quorums",
        lemma="Section 6 first key observation; Lemma 15 (unique finalize "
        "certificate)",
        expected_kinds=frozenset({"agreement"}),
        mutated=dict(
            n=4,
            num_phases=1,
            adversary="equivocating-leader",
            max_ticks=24,
            reorder=False,
            quorum_delta=-1,
        ),
        baseline=dict(
            n=4,
            num_phases=1,
            adversary="equivocating-leader",
            max_ticks=24,
            reorder=False,
        ),
    ),
    "fallback-echo-skipped": MutantSpec(
        name="fallback-echo-skipped",
        description="fallback certificates are not re-broadcast: the "
        "adversary can start the fallback at a single victim",
        lemma="Lemmas 17/18 (synchronized fallback entry within delta)",
        expected_kinds=frozenset({"fallback-sync"}),
        mutated=_cert_dealer_params(echo_fallback=False),
        baseline=_cert_dealer_params(),
    ),
    "non-silent-leaders": MutantSpec(
        name="non-silent-leaders",
        description="a decided leader re-proposes in its phase anyway",
        lemma="Algorithm 4 line 31; Lemma 9 (silent phases make the word "
        "count adaptive)",
        expected_kinds=frozenset({"adaptive-silence"}),
        mutated=dict(
            n=4,
            num_phases=2,
            adversary="none",
            max_ticks=40,
            reorder=False,
            chatty_leaders=True,
        ),
        baseline=dict(
            n=4,
            num_phases=2,
            adversary="none",
            max_ticks=40,
            reorder=False,
        ),
    ),
    # -- civit backend twins: the same three lemma ablations, driven
    #    through the certification layer of the second backend.  The
    #    attacks differ (a Byzantine *certifier* must first mint the
    #    conflicting certified values the inner weak BA is fed), but the
    #    kill list is deliberately identical — the conformance suite
    #    asserts that parity (tests/test_conformance.py).
    "civit-quorum-off-by-one": MutantSpec(
        name="civit-quorum-off-by-one",
        description="inner commit quorum ceil((n+t+1)/2) - 1 in the civit "
        "stack: a Byzantine certifier certifies both binary values and "
        "drives them through its weak-BA phase",
        lemma="quorum intersection of the shared adaptive core (Lemma 15); "
        "certification alone cannot provide agreement",
        expected_kinds=frozenset({"agreement"}),
        scenario="civit-strong-ba",
        mutated=dict(
            n=4,
            num_phases=1,
            adversary="equivocating-certifier",
            max_ticks=30,
            reorder=False,
            quorum_delta=-1,
        ),
        baseline=dict(
            n=4,
            num_phases=1,
            adversary="equivocating-certifier",
            max_ticks=30,
            reorder=False,
        ),
    ),
    "civit-fallback-echo-skipped": MutantSpec(
        name="civit-fallback-echo-skipped",
        description="fallback certificates of the inner weak BA are not "
        "re-broadcast: the dealer starts the fallback at a single victim "
        "behind the certification views",
        lemma="Lemmas 17/18 on the shared core, session civit/wba",
        expected_kinds=frozenset({"fallback-sync"}),
        scenario="civit-strong-ba",
        mutated=_cert_dealer_params(
            num_views=4, max_ticks=230, echo_fallback=False
        ),
        baseline=_cert_dealer_params(num_views=4, max_ticks=230),
    ),
    "civit-non-silent-leaders": MutantSpec(
        name="civit-non-silent-leaders",
        description="a decided inner-phase leader re-proposes anyway "
        "(certification views keep their own silence discipline)",
        lemma="Algorithm 4 line 31 applied to the inner core; the civit "
        "stack's adaptivity rests on the same accounting",
        expected_kinds=frozenset({"adaptive-silence"}),
        scenario="civit-strong-ba",
        mutated=dict(
            n=4,
            num_phases=2,
            adversary="none",
            max_ticks=46,
            reorder=False,
            chatty_leaders=True,
        ),
        baseline=dict(
            n=4,
            num_phases=2,
            adversary="none",
            max_ticks=46,
            reorder=False,
        ),
    ),
}


@dataclass
class MutantKill:
    """The full evidence that one mutant is dead."""

    spec: MutantSpec
    counterexample: Counterexample
    shrunk: ShrinkResult
    artifact: dict[str, Any]
    artifact_path: Path | None
    exploration: ExplorationResult
    baseline: ExplorationResult | None
    """Exhaustive run of the unmutated twin (``None`` if skipped); a
    valid kill requires it clean and complete."""

    def summary(self) -> str:
        lines = [
            f"mutant {self.spec.name}: KILLED "
            f"({', '.join(self.counterexample.kinds)})",
            f"  discards: {self.spec.lemma}",
            f"  found after {self.exploration.stats.runs} schedule(s); "
            f"shrunk {len(self.shrunk.original)} -> "
            f"{len(self.shrunk.decisions)} decisions "
            f"in {self.shrunk.tests} test run(s)",
            f"  replay decisions: {list(self.shrunk.decisions)}",
        ]
        if self.baseline is not None:
            lines.append(
                f"  unmutated twin: {self.baseline.stats.terminal} "
                f"schedule(s) explored exhaustively, "
                f"{self.baseline.stats.violations} violation(s)"
            )
        if self.artifact_path is not None:
            lines.append(f"  artifact: {self.artifact_path}")
        return "\n".join(lines)


def kill_mutant(
    name: str,
    *,
    check_baseline: bool = True,
    out_dir: str | Path | None = None,
) -> MutantKill:
    """Kill one mutant end to end (see the module docstring).

    Raises :class:`~repro.errors.ModelCheckError` if the mutant
    survives exploration, the counterexample misses the expected
    violation kinds, or the unmutated twin is not clean.
    """
    spec = MUTANTS.get(name)
    if spec is None:
        raise ModelCheckError(f"unknown mutant {name!r}; known: {sorted(MUTANTS)}")

    mutated = make_scenario(spec.scenario, **spec.mutated)
    exploration = explore_exhaustive(
        mutated, max_runs=spec.max_runs, stop_at_first=True
    )
    if not exploration.counterexamples:
        raise ModelCheckError(
            f"mutant {name} SURVIVED {exploration.stats.runs} schedule(s)"
        )
    counterexample = exploration.counterexamples[0]
    missing = spec.expected_kinds - set(counterexample.kinds)
    if missing:
        raise ModelCheckError(
            f"mutant {name} died of {counterexample.kinds}, expected kinds "
            f"{sorted(spec.expected_kinds)} (missing {sorted(missing)})"
        )

    shrunk = shrink(mutated, counterexample)
    artifact = replay_artifact(mutated, shrunk.decisions)
    replay(artifact)  # must reproduce deterministically, or raises

    artifact_path: Path | None = None
    if out_dir is not None:
        artifact_path = save_replay(
            Path(out_dir) / f"mutant-{name}.replay.json", artifact
        )

    baseline: ExplorationResult | None = None
    if check_baseline:
        baseline = explore_exhaustive(
            make_scenario(spec.scenario, **spec.baseline),
            max_runs=spec.max_runs,
        )
        if baseline.counterexamples:
            raise ModelCheckError(
                f"unmutated twin of {name} has violations of its own: "
                f"{baseline.counterexamples[0].summary}"
            )
        if not baseline.complete:
            raise ModelCheckError(
                f"unmutated twin of {name} not explored exhaustively "
                f"within {spec.max_runs} runs"
            )

    return MutantKill(
        spec=spec,
        counterexample=counterexample,
        shrunk=shrunk,
        artifact=artifact,
        artifact_path=artifact_path,
        exploration=exploration,
        baseline=baseline,
    )
