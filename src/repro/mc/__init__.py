"""Schedule-space model checking.

PR 2 made every source of nondeterminism in a run — inbox permutations,
per-message drop/duplicate/delay decisions, adversary corruption timing
— a pure function of a seed.  This package replaces the seed with a
*pluggable decision source* and then treats a run as a function from a
finite **decision sequence** to an outcome, which is exactly the shape a
model checker needs:

* :mod:`repro.mc.choices` — the choice-point interface threaded through
  :mod:`repro.runtime.scheduler` and :mod:`repro.faults`, with a seeded
  implementation (the old RNG behavior), a scripted implementation
  (replay), and the prefix implementation the explorer drives;
* :mod:`repro.mc.scenario` — bounded, named, JSON-reconstructible
  system configurations (protocol + adversary + decision space +
  property battery);
* :mod:`repro.mc.explore` — exhaustive DFS over decision prefixes with
  state-fingerprint pruning, plus a seeded random-walk mode;
* :mod:`repro.mc.shrink` — ddmin minimization of failing decision
  sequences and the JSON replay artifact;
* :mod:`repro.mc.mutants` — seeded protocol mutations that the checker
  must kill, each mapped to the paper lemma it falsifies.
"""

from repro.mc.choices import (
    ChoicePoint,
    ChoiceSource,
    ChoiceSpace,
    ScriptedChoices,
    SeededChoices,
)
from repro.mc.explore import (
    Counterexample,
    ExplorationResult,
    ExplorationStats,
    explore_exhaustive,
    explore_exhaustive_parallel,
    explore_random,
    run_schedule,
)
from repro.mc.mutants import MUTANTS, MutantKill, kill_mutant
from repro.mc.scenario import SCENARIOS, Scenario, make_scenario
from repro.mc.shrink import (
    load_replay,
    replay,
    replay_artifact,
    save_replay,
    shrink,
)

__all__ = [
    "ChoicePoint",
    "ChoiceSource",
    "ChoiceSpace",
    "Counterexample",
    "ExplorationResult",
    "ExplorationStats",
    "MUTANTS",
    "MutantKill",
    "SCENARIOS",
    "Scenario",
    "ScriptedChoices",
    "SeededChoices",
    "explore_exhaustive",
    "explore_exhaustive_parallel",
    "explore_random",
    "kill_mutant",
    "load_replay",
    "make_scenario",
    "replay",
    "replay_artifact",
    "run_schedule",
    "save_replay",
    "shrink",
]
