"""The choice-point interface: nondeterminism as an explicit decision.

A run of the tick simulator consults its :class:`ChoiceSource` at every
point where the model leaves behavior unspecified:

* the within-``delta`` **order** of a correct process's per-tick inbox;
* the network's verdict on each message — **drop** (send omission),
  **duplicate**, sub-``delta`` **delay** — via
  :class:`~repro.faults.injector.FaultInjector`;
* **adversary parameters** a scenario leaves open: which process is
  corrupted, at which tick, which victim a dealt certificate targets
  (scenario builders and choice-driven behaviors call :meth:`choose`
  directly).

Each consultation is a :class:`ChoicePoint` with a finite number of
``options``; the source answers with an index.  Three implementations:

:class:`SeededChoices`
    Draws uniformly from one seeded RNG stream — the sampling behavior
    the repo always had, now expressed through the interface.  Because
    every answer is logged, a seeded run is *also* a recorded run: its
    decision list replays bit-identically through
    :class:`ScriptedChoices`.
:class:`ScriptedChoices`
    Answers from a fixed decision list.  Non-strict mode defaults to
    option 0 past the end of the list (the explorer's prefix semantics);
    strict mode raises instead (replay must never improvise).
:class:`ChoiceSource` subclasses in general
    The explorer's DFS is just ``ScriptedChoices`` over systematically
    generated prefixes — no separate enumerating class is needed.

The option *set* at each point is governed by a :class:`ChoiceSpace` —
the bounded schedule space under exploration.  A point with one option
is not a branch: it is answered 0 and never logged, so decision
sequences stay short and shrinkable.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.config import ProcessId, derive_rng
from repro.errors import ModelCheckError
from repro.faults.plan import FaultDecision

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via repro.runtime
    from repro.runtime.envelope import Envelope


@dataclass(frozen=True)
class ChoiceSpace:
    """The bounded decision space offered to a :class:`ChoiceSource`.

    Exploration cost is the product of option counts over a run, so
    every field exists to keep that product finite and meaningful.

    Model-legality note: inbox reordering, duplication, and sub-``delta``
    delays are perturbations the synchronous model always allowed; drops
    are *send-omission faults* and count toward the run's failure number
    ``f``.  Scenarios that check the paper's properties must therefore
    keep ``droppable_senders`` within the corrupted/omission budget
    ``t`` (see DESIGN.md §8); an unrestricted drop space deliberately
    exceeds the model.
    """

    reorder: bool = True
    """Offer inbox permutations for correct receivers."""
    perm_cap: int = 6
    """Max orderings offered per inbox (first ``perm_cap`` distinct
    permutations in lexicographic index order; 6 = full S_3)."""
    drop_budget: int = 0
    """Max messages dropped per run (0 disables drop choice points)."""
    droppable_senders: frozenset[ProcessId] | None = None
    """Senders whose messages may be dropped; ``None`` = all."""
    droppable_payloads: frozenset[str] | None = None
    """Payload type names eligible for drops; ``None`` = all.  Scoping
    drops to the message class under attack (e.g. ``WbaFallbackCert``)
    keeps exhaustive exploration tractable."""
    max_duplicates: int = 0
    """Extra copies the network may choose to deliver (0 disables)."""
    delay_levels: int = 1
    """Number of evenly spaced sub-``delta`` delay options per message
    (1 = always deliver undelayed; k>1 offers delays ``i/k`` of the
    bound, which in the tick world manifest as inbox position)."""

    def __post_init__(self) -> None:
        if self.perm_cap < 1:
            raise ModelCheckError(f"perm_cap must be >= 1, got {self.perm_cap}")
        if self.drop_budget < 0:
            raise ModelCheckError(
                f"drop_budget must be >= 0, got {self.drop_budget}"
            )
        if self.max_duplicates < 0:
            raise ModelCheckError(
                f"max_duplicates must be >= 0, got {self.max_duplicates}"
            )
        if self.delay_levels < 1:
            raise ModelCheckError(
                f"delay_levels must be >= 1, got {self.delay_levels}"
            )

    def drop_eligible(self, sender: ProcessId, payload: object) -> bool:
        if self.drop_budget == 0:
            return False
        if self.droppable_senders is not None and sender not in self.droppable_senders:
            return False
        if (
            self.droppable_payloads is not None
            and type(payload).__name__ not in self.droppable_payloads
        ):
            return False
        return True


#: The space with no open decisions at all: every point collapses to its
#: canonical option, so a run under it is the pristine deterministic run.
CLOSED_SPACE = ChoiceSpace(reorder=False)


@dataclass(frozen=True)
class ChoicePoint:
    """One consultation of the source: ``kind`` + coordinates + arity."""

    kind: str
    coords: tuple
    options: int


@dataclass(frozen=True)
class LoggedChoice:
    """A resolved choice point, as recorded in a source's log."""

    point: ChoicePoint
    chosen: int


class ChoiceSource:
    """Base class: logging, budget accounting, and the scheduler-facing
    helpers that translate structured questions into :meth:`choose`
    calls.  Subclasses implement :meth:`_pick` only.

    Instances are **per-run**: they carry the drop-budget counter and
    the decision log, so reusing one across runs would contaminate both.
    """

    def __init__(self, space: ChoiceSpace) -> None:
        self.space = space
        self.log: list[LoggedChoice] = []
        self._drops_used = 0

    # ------------------------------------------------------------------
    # The primitive
    # ------------------------------------------------------------------

    def _pick(self, point: ChoicePoint) -> int:
        raise NotImplementedError

    def choose(self, kind: str, coords: tuple, options: int) -> int:
        """Resolve one choice point.  Points with a single option are
        answered 0 without logging — they are not branches."""
        if options < 1:
            raise ModelCheckError(f"choice point {kind}{coords} has no options")
        if options == 1:
            return 0
        point = ChoicePoint(kind=kind, coords=coords, options=options)
        chosen = self._pick(point)
        if not 0 <= chosen < options:
            raise ModelCheckError(
                f"source picked {chosen} outside 0..{options - 1} at {point}"
            )
        self.log.append(LoggedChoice(point=point, chosen=chosen))
        return chosen

    @property
    def decisions(self) -> list[int]:
        """The run's decision sequence so far (replayable)."""
        return [entry.chosen for entry in self.log]

    @property
    def drops_used(self) -> int:
        return self._drops_used

    # ------------------------------------------------------------------
    # Scheduler-facing helpers
    # ------------------------------------------------------------------

    def fault_decision(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        tick: int,
        seq: int,
        payload: object = None,
    ) -> FaultDecision:
        """The network's verdict on one send, drawn from the space."""
        space = self.space
        coords = (sender, receiver, tick, seq)
        drop = False
        if space.drop_eligible(sender, payload) and self._drops_used < space.drop_budget:
            drop = bool(self.choose("drop", coords, 2))
            if drop:
                self._drops_used += 1
        duplicates = 0
        if not drop and space.max_duplicates:
            duplicates = self.choose("dup", coords, space.max_duplicates + 1)
        delay = 0.0
        if not drop and space.delay_levels > 1:
            level = self.choose("delay", coords, space.delay_levels)
            delay = level / space.delay_levels
        return FaultDecision(drop=drop, duplicates=duplicates, delay=delay)

    def order_inbox(
        self, receiver: ProcessId, tick: int, envelopes: Sequence["Envelope"]
    ) -> list["Envelope"]:
        """Pick one of the offered orderings of a per-tick inbox.

        The incoming sequence is already canonical (the scheduler sorts
        by sub-``delta`` delay then sender); permutations that produce
        an identical envelope sequence (duplicated copies of one
        message) are collapsed, so the option count never inflates with
        symmetric branches."""
        envelopes = list(envelopes)
        if not self.space.reorder or len(envelopes) < 2:
            return envelopes
        orderings = _distinct_orderings(envelopes, self.space.perm_cap)
        chosen = self.choose("order", (receiver, tick), len(orderings))
        return list(orderings[chosen])


def _distinct_orderings(
    envelopes: list["Envelope"], cap: int
) -> list[tuple["Envelope", ...]]:
    """The first ``cap`` distinct permutations, in lexicographic index
    order (identity first), deduplicated by envelope equality.

    Each envelope is keyed by the index of its first indistinguishable
    occurrence (via :meth:`Envelope.mc_key`, the same repr-faithful key
    state fingerprints use), so duplicated copies of one message never
    inflate the option count with indistinguishable orderings."""
    first: dict = {}
    canon = [
        first.setdefault(envelope.mc_key(), i)
        for i, envelope in enumerate(envelopes)
    ]
    seen: set[tuple[int, ...]] = set()
    out: list[tuple] = []
    for indices in itertools.permutations(range(len(envelopes))):
        key = tuple(canon[i] for i in indices)
        if key in seen:
            continue
        seen.add(key)
        out.append(tuple(envelopes[i] for i in indices))
        if len(out) >= cap:
            break
    return out


class SeededChoices(ChoiceSource):
    """Uniform seeded sampling — the repo's historical RNG behavior,
    expressed as a :class:`ChoiceSource`.  One run = one walk through
    the space; the log makes the walk replayable as a script."""

    def __init__(self, space: ChoiceSpace, seed: int = 0) -> None:
        super().__init__(space)
        self.seed = seed
        self._rng = derive_rng(seed, 0x5C4E)

    def _pick(self, point: ChoicePoint) -> int:
        return self._rng.randrange(point.options)


class ScriptedChoices(ChoiceSource):
    """Answers from a fixed decision list.

    ``strict=False`` (explorer prefixes): past the end of the list,
    answer 0 — the canonical continuation.  ``strict=True`` (replay):
    running out of script, or a script entry out of range for its
    point, raises :class:`~repro.errors.ModelCheckError` — a replayed
    counterexample must never improvise, so a mismatch means the
    scenario diverged from the recording.
    """

    def __init__(
        self, space: ChoiceSpace, script: Sequence[int], *, strict: bool = False
    ) -> None:
        super().__init__(space)
        self.script = list(script)
        self.strict = strict
        self.consumed = 0

    def _pick(self, point: ChoicePoint) -> int:
        if self.consumed >= len(self.script):
            if self.strict:
                raise ModelCheckError(
                    f"replay script exhausted at choice point {point} "
                    f"(script length {len(self.script)})"
                )
            self.consumed += 1
            return 0
        chosen = self.script[self.consumed]
        self.consumed += 1
        if chosen >= point.options:
            raise ModelCheckError(
                f"script entry {chosen} out of range for {point}"
            )
        return chosen

    @property
    def in_free_region(self) -> bool:
        """Whether every scripted decision has been consumed — the
        explorer only prunes here (earlier, the script still mandates
        divergence from any previously visited state)."""
        return self.consumed >= len(self.script)
