"""The schedule-space explorer.

A run of the tick simulator is a pure function of its decision sequence
(see :mod:`repro.mc.choices`), which turns model checking into tree
search: each logged choice point is a node, its options are edges, and
a run under :class:`~repro.mc.choices.ScriptedChoices` with prefix
``p`` explores the subtree below ``p`` along the all-zeros (canonical)
continuation.

:func:`explore_exhaustive` is depth-first search over decision
prefixes.  After running prefix ``p`` the full decision log is known;
for every choice point at or past ``|p|`` the unexplored siblings
``chosen+1 .. options-1`` are pushed (deepest first, so the search is
depth-first in the tree).  When the stack empties, every schedule in
the bounded space has been executed — that exhaustiveness is what turns
"no violation found" into a *proof over the bounded space*.

**State-fingerprint pruning** cuts confluent branches: a per-tick hook
digests the simulation state; if the digest was seen before (same tick,
same state), the continuation is a subtree already explored, and the
run is aborted via :class:`PruneRun`.  Two soundness rules:

* pruning only fires in the *free region* — once the scripted prefix is
  fully consumed.  Inside the prefix the script still mandates
  divergence from wherever the earlier visit went, so an equal
  fingerprint does not imply an equal future.
* the digest must capture everything the future depends on.  The
  ``"behavior"`` mode digests the visible machine state (inboxes,
  pending deliveries, corruption state, decisions, trace, budget
  counters) but *not* protocol-generator internals — sound for the
  protocols here, whose generators are functions of their emitted
  events and pending messages, but a protocol with silent internal
  state could in principle alias.  The ``"history"`` mode chains
  digests over the whole past, never merges distinct histories, and is
  sound unconditionally (it only collapses replays of the same prefix,
  e.g. permutations the space deduplicated); ``None`` disables pruning.

Siblings of a pruned run's choice points are still pushed — pruning
skips a *continuation*, never the branches that diverge before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ModelCheckError
from repro.mc.choices import ChoiceSource, LoggedChoice, ScriptedChoices, SeededChoices
from repro.mc.scenario import Scenario
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation
from repro.verify.checker import Report


class PruneRun(Exception):
    """Raised by the fingerprint hook to abort a run whose continuation
    was already explored.  Internal to this module."""


# ----------------------------------------------------------------------
# Running one schedule
# ----------------------------------------------------------------------


@dataclass
class ScheduleOutcome:
    """One executed (or pruned) schedule."""

    log: list[LoggedChoice]
    """The decision log up to the end of the run (or the prune point)."""
    result: RunResult | None
    """``None`` when the run was pruned."""
    report: Report | None
    """``None`` when the run was pruned."""
    pruned: bool = False

    @property
    def decisions(self) -> list[int]:
        return [entry.chosen for entry in self.log]


def run_schedule(
    scenario: Scenario,
    script: tuple[int, ...] | list[int] = (),
    *,
    strict: bool = False,
    source: ChoiceSource | None = None,
    fingerprinter: "_Fingerprinter | None" = None,
) -> ScheduleOutcome:
    """Execute one schedule of ``scenario``.

    Decisions come from ``source`` if given (random walk), else from a
    :class:`ScriptedChoices` over ``script`` (DFS prefixes, replay).
    """
    choices = (
        source
        if source is not None
        else ScriptedChoices(scenario.space, script, strict=strict)
    )
    with scenario.active():
        simulation = scenario.build(choices)
        if fingerprinter is not None:
            simulation.tick_hook = fingerprinter.hook(choices)
        try:
            result = simulation.run()
        except PruneRun:
            return ScheduleOutcome(log=list(choices.log), result=None,
                                   report=None, pruned=True)
    report = scenario.evaluate(result)
    return ScheduleOutcome(log=list(choices.log), result=result, report=report)


# ----------------------------------------------------------------------
# State fingerprints
# ----------------------------------------------------------------------


class _Fingerprinter:
    """Builds per-run tick hooks sharing one seen-fingerprint set."""

    def __init__(self, mode: str) -> None:
        if mode not in ("behavior", "history"):
            raise ModelCheckError(
                f"prune mode must be 'behavior' or 'history', got {mode!r}"
            )
        self.mode = mode
        self.seen: set[tuple[int, int]] = set()

    def hook(self, choices: ChoiceSource):
        chained = 0

        def tick_hook(simulation: Simulation, inboxes: dict) -> None:
            nonlocal chained
            digest = _state_digest(simulation, inboxes, choices)
            if self.mode == "history":
                chained = hash((chained, digest))
                digest = chained
            key = (simulation.tick, digest)
            if key in self.seen:
                if getattr(choices, "in_free_region", False):
                    raise PruneRun()
            else:
                self.seen.add(key)

        return tick_hook


def _envelope_key(envelope: Any) -> tuple:
    return envelope.mc_key()


def _state_digest(
    simulation: Simulation, inboxes: dict, choices: ChoiceSource
) -> int:
    """Hash of everything the run's future depends on (module doc).

    Payloads and trace events are keyed by ``repr`` — every wire payload
    and event in this repo is a frozen dataclass of plain values, so
    reprs are deterministic and equality-faithful.
    """
    return hash((
        tuple(sorted(
            (pid, tuple(e.mc_key() for e in box))
            for pid, box in inboxes.items()
        )),
        # The wheel is tick -> receiver -> (delay, envelope) buckets.
        # Bucket order is canonicalized away: delivery always re-sorts
        # by (delay, sender), so only the multiset matters for the
        # run's future.
        tuple(sorted(
            (tick, tuple(sorted(
                (pid, tuple(sorted(
                    (delay, e.mc_key()) for delay, e in bucket
                )))
                for pid, bucket in slot.items()
            )))
            for tick, slot in simulation._due.items()
        )),
        # Behavior reprs (dataclasses), not just pids: adversary
        # *parameters* chosen at build time — which victim a dealer
        # targets — and mutable behavior flags live inside these objects
        # and are otherwise invisible until they act.
        tuple(sorted(
            (pid, repr(behavior))
            for pid, behavior in simulation._behaviors.items()
        )),
        tuple(sorted(simulation.corrupted_now)),
        tuple(sorted(
            (tick, tuple(sorted(
                (pid, repr(behavior)) for pid, behavior in entries
            )))
            for tick, entries in simulation._scheduled_corruptions.items()
        )),
        choices.drops_used,
        # Paced-round state (round index, timeout, retries, buffered
        # deliveries per process) — () under the trivial lockstep model.
        # Without it, two psync states with equal wheels but different
        # round clocks would alias and pruning would be unsound.
        simulation.pacer_fingerprint(),
        tuple(sorted(
            (pid, repr(value)) for pid, value in simulation._decisions.items()
        )),
        tuple(sorted(simulation._halted_at.items())),
        simulation.ledger.correct_words,
        # Incremental hash-chain over the trace: the old per-tick repr
        # of every event made fingerprinting quadratic in run length.
        simulation.trace.fingerprint(),
    ))


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Counterexample:
    """A decision sequence whose run violates a checked property."""

    scenario: str
    params: dict[str, Any]
    decisions: tuple[int, ...]
    kinds: tuple[str, ...]
    """Violation kinds, the reproduction target for shrinking/replay."""
    summary: str
    truncated: bool


@dataclass
class ExplorationStats:
    runs: int = 0
    terminal: int = 0
    """Runs executed to their end (not pruned)."""
    pruned: int = 0
    truncated: int = 0
    """Terminal runs stopped at the tick horizon."""
    violations: int = 0
    distinct_states: int = 0
    """Fingerprints recorded (0 when pruning is disabled)."""
    max_depth: int = 0
    """Longest decision sequence encountered."""


@dataclass
class ExplorationResult:
    stats: ExplorationStats
    counterexamples: list[Counterexample] = field(default_factory=list)
    complete: bool = False
    """The bounded space was exhausted — "no counterexample" is a proof
    over it.  False when ``max_runs`` hit or ``stop_at_first`` fired."""

    @property
    def ok(self) -> bool:
        return not self.counterexamples


def _counterexample(scenario: Scenario, outcome: ScheduleOutcome) -> Counterexample:
    return Counterexample(
        scenario=scenario.name,
        params=dict(scenario.params),
        decisions=tuple(outcome.decisions),
        kinds=tuple(sorted({v.kind for v in outcome.report.violations})),
        summary=outcome.report.summary(),
        truncated=outcome.result.truncated,
    )


def explore_exhaustive(
    scenario: Scenario,
    *,
    max_runs: int = 100_000,
    prune: str | None = "behavior",
    stop_at_first: bool = False,
    roots: tuple[tuple[int, ...], ...] | None = None,
) -> ExplorationResult:
    """DFS over the scenario's full bounded decision space.

    ``prune`` selects the fingerprint mode (module doc); ``None``
    disables pruning.  ``stop_at_first`` returns at the first
    counterexample — the mutant harness's mode.

    ``roots`` restricts the search to the subtrees below the given
    decision prefixes (default: the whole space, one empty root).  The
    parallel explorer shards the space this way — each worker exhausts
    the subtrees it was handed, and the shard roots partition the space
    exactly once.
    """
    stats = ExplorationStats()
    fingerprinter = _Fingerprinter(prune) if prune is not None else None
    counterexamples: list[Counterexample] = []
    stack: list[tuple[int, ...]] = list(roots) if roots is not None else [()]
    stopped = False

    while stack:
        if stats.runs >= max_runs:
            stopped = True
            break
        prefix = stack.pop()
        outcome = run_schedule(scenario, prefix, fingerprinter=fingerprinter)
        stats.runs += 1
        log = outcome.log
        # Unexplored siblings of every choice point in the free region.
        # Deepest-first push order makes the search depth-first.
        for j in range(len(prefix), len(log)):
            entry = log[j]
            base = [log[i].chosen for i in range(j)]
            for option in range(entry.chosen + 1, entry.point.options):
                stack.append(tuple(base + [option]))
        if outcome.pruned:
            stats.pruned += 1
            continue
        stats.terminal += 1
        stats.max_depth = max(stats.max_depth, len(log))
        if outcome.result.truncated:
            stats.truncated += 1
        if not outcome.report.ok:
            stats.violations += 1
            counterexamples.append(_counterexample(scenario, outcome))
            if stop_at_first:
                stopped = True
                break

    if fingerprinter is not None:
        stats.distinct_states = len(fingerprinter.seen)
    return ExplorationResult(
        stats=stats,
        counterexamples=counterexamples,
        complete=not stack and not stopped,
    )


def _shard_roots(
    scenario: Scenario, want: int, probe_cap: int = 64
) -> list[tuple[int, ...]]:
    """Split the decision space into >= ``want`` subtree roots (best
    effort): repeatedly run a root's canonical schedule, find its first
    branching choice point, and replace the root with one child per
    option.  The resulting roots partition the space exactly once —
    forced (single-option) points are folded into the child prefixes.
    """
    roots: list[tuple[int, ...]] = [()]
    probes = 0
    while len(roots) < want and probes < probe_cap:
        for i, root in enumerate(roots):
            outcome = run_schedule(scenario, root)
            probes += 1
            log = outcome.log
            children: list[tuple[int, ...]] | None = None
            for j in range(len(root), len(log)):
                if log[j].point.options > 1:
                    base = [log[k].chosen for k in range(j)]
                    children = [
                        tuple(base + [option])
                        for option in range(log[j].point.options)
                    ]
                    break
            if children is not None:
                roots[i : i + 1] = children
                break
        else:
            break  # no root has a branching point left: space exhausted
    return roots


def _explore_shard(
    args: tuple[str, dict, tuple[int, ...], int, str | None, bool],
) -> ExplorationResult:
    """Worker entry point: exhaust one subtree of a named scenario.

    Module-level (not a closure) so multiprocessing can pickle it; the
    scenario is rebuilt in the worker from its registry name and params.
    """
    from repro.mc.scenario import make_scenario

    name, params, root, max_runs, prune, stop_at_first = args
    scenario = make_scenario(name, **params)
    return explore_exhaustive(
        scenario,
        max_runs=max_runs,
        prune=prune,
        stop_at_first=stop_at_first,
        roots=(root,),
    )


def explore_exhaustive_parallel(
    scenario: Scenario,
    *,
    jobs: int,
    max_runs: int = 100_000,
    prune: str | None = "behavior",
    stop_at_first: bool = False,
) -> ExplorationResult:
    """DFS over the bounded space, sharded across worker processes.

    The space is split into subtree roots (:func:`_shard_roots`), each
    worker exhausts its subtrees with a private fingerprint set, and the
    merged result sums the shard statistics.  Soundness is unchanged —
    shards partition the space exactly once, and fingerprint pruning is
    only ever an optimization — but totals differ from a serial run:

    * each shard prunes against its own fingerprints, so states that a
      serial search would have deduplicated across shards are explored
      once per shard (``runs``/``distinct_states`` read higher);
    * ``max_runs`` is a per-shard budget;
    * ``stop_at_first`` stops each shard independently (no cross-worker
      cancellation).

    ``jobs <= 1`` falls back to the serial explorer.  The scenario must
    be registry-reconstructible (``make_scenario(name, **params)``) so
    workers can rebuild it.
    """
    from repro.runtime.pool import parallel_map

    if jobs <= 1:
        return explore_exhaustive(
            scenario,
            max_runs=max_runs,
            prune=prune,
            stop_at_first=stop_at_first,
        )
    roots = _shard_roots(scenario, jobs)
    shard_args = [
        (scenario.name, dict(scenario.params), root, max_runs, prune,
         stop_at_first)
        for root in roots
    ]
    shard_results = parallel_map(_explore_shard, shard_args, jobs)

    stats = ExplorationStats()
    counterexamples: list[Counterexample] = []
    complete = True
    for shard in shard_results:
        stats.runs += shard.stats.runs
        stats.terminal += shard.stats.terminal
        stats.pruned += shard.stats.pruned
        stats.truncated += shard.stats.truncated
        stats.violations += shard.stats.violations
        stats.distinct_states += shard.stats.distinct_states
        stats.max_depth = max(stats.max_depth, shard.stats.max_depth)
        counterexamples.extend(shard.counterexamples)
        complete = complete and shard.complete
    return ExplorationResult(
        stats=stats,
        counterexamples=counterexamples,
        complete=complete,
    )


def explore_random(
    scenario: Scenario,
    *,
    runs: int = 100,
    seed: int = 0,
    stop_at_first: bool = True,
) -> ExplorationResult:
    """Guided random walk: ``runs`` seeded samples of the space.

    Each walk uses :class:`SeededChoices` with seed ``seed + i``; a
    violating walk's *logged decisions* become the counterexample, so it
    shrinks and replays exactly like a DFS-found one.  Never a proof
    (``complete`` stays ``False``) — the mode for spaces too large to
    exhaust.
    """
    stats = ExplorationStats()
    counterexamples: list[Counterexample] = []
    for i in range(runs):
        source = SeededChoices(scenario.space, seed + i)
        outcome = run_schedule(scenario, source=source)
        stats.runs += 1
        stats.terminal += 1
        stats.max_depth = max(stats.max_depth, len(outcome.log))
        if outcome.result.truncated:
            stats.truncated += 1
        if not outcome.report.ok:
            stats.violations += 1
            counterexamples.append(_counterexample(scenario, outcome))
            if stop_at_first:
                break
    return ExplorationResult(stats=stats, counterexamples=counterexamples)
