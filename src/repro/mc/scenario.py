"""Scenarios: the model checker's unit of configuration.

A :class:`Scenario` bundles everything one exploration needs:

* a ``build(choices)`` closure that assembles a
  :class:`~repro.runtime.scheduler.Simulation` wired to the given
  :class:`~repro.mc.choices.ChoiceSource` (adversary *parameters* the
  scenario leaves open — which process is silenced, at which tick, which
  victim a certificate is dealt to — are themselves choice points, so
  they live in the same decision sequence as the schedule);
* an ``evaluate(result)`` closure running the
  :mod:`repro.verify.checker` predicates appropriate for the
  configuration;
* the :class:`~repro.mc.choices.ChoiceSpace` under exploration and the
  tick horizon;
* optionally a protocol *mutation* (a context manager) — the mutant
  harness runs the same scenario with and without it.

Scenarios are reconstructible from ``(name, params)`` with ``params``
JSON-serializable — that pair is what a replay artifact stores, so a
counterexample found today re-executes tomorrow without pickling any
closures.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import (
    FallbackCertDealer,
    WeakBaEquivocatingLeader,
    WeakBaSplitFinalizeLeader,
)
from repro.config import SystemConfig
from repro.core import weak_ba
from repro.core.validity import ExternalValidity
from repro.core.values import UNDECIDED
from repro.core.weak_ba import WbaPropose, weak_ba_protocol
from repro.errors import ModelCheckError
from repro.mc.choices import ChoiceSource, ChoiceSpace
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation
from repro.runtime.synchrony import PartialSynchrony
from repro.verify.checker import Report, adaptive_word_budget, verify_run


@dataclass
class Scenario:
    """One explorable configuration; see the module docstring."""

    name: str
    params: dict[str, Any]
    space: ChoiceSpace
    max_ticks: int
    build: Callable[[ChoiceSource], Simulation]
    evaluate: Callable[[RunResult], Report]
    mutation: Callable[[], Any] | None = None
    """Factory for a context manager applying a protocol mutation for
    the duration of a run (``None`` = the unmutated protocol)."""

    description: str = ""

    @contextmanager
    def active(self) -> Iterator[None]:
        """Context under which every run of this scenario executes."""
        if self.mutation is None:
            yield
        else:
            with self.mutation():
                yield


def make_scenario(name: str, **params: Any) -> Scenario:
    """Reconstruct a scenario from its registry name and parameters —
    the inverse of what a replay artifact stores."""
    factory = SCENARIOS.get(name)
    if factory is None:
        # Backend packages contribute scenarios through the registry in
        # repro.protocols; merge them in lazily so this module stays
        # importable *from* those packages without a cycle.
        import repro.protocols

        for extra, extra_factory in repro.protocols.mc_scenarios().items():
            SCENARIOS.setdefault(extra, extra_factory)
        factory = SCENARIOS.get(name)
    if factory is None:
        raise ModelCheckError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        )
    return factory(**params)


# ----------------------------------------------------------------------
# The weak-BA scenario family
# ----------------------------------------------------------------------

_ADVERSARIES = ("none", "choose-silent", "equivocating-leader", "cert-dealer")


@contextmanager
def _chatty_leaders() -> Iterator[None]:
    """The non-silent-leaders mutant: a decided leader re-proposes in
    its phase anyway, discarding the adaptivity mechanism (Algorithm 4
    line 31's silence condition)."""
    original = weak_ba._invoke_phase

    def chatty(ctx, pool, crypto, state, phase, validity):
        leader = ctx.config.leader_of_phase(phase)
        if ctx.pid == leader and state.decision != UNDECIDED:
            ctx.emit("phase_non_silent", phase=phase, leader=leader)
            ctx.broadcast(
                WbaPropose(
                    session=crypto.session, phase=phase, value=state.decision
                )
            )
        yield from original(ctx, pool, crypto, state, phase, validity)

    weak_ba._invoke_phase = chatty
    try:
        yield
    finally:
        weak_ba._invoke_phase = original


def _weak_ba_scenario(
    *,
    n: int = 4,
    t: int | None = None,
    num_phases: int = 1,
    adversary: str = "choose-silent",
    corrupt_ticks: list[int] | tuple[int, ...] = (0,),
    input_mode: str = "distinct",
    max_ticks: int = 12,
    reorder: bool = True,
    perm_cap: int = 6,
    drop_budget: int = 0,
    droppable_senders: list[int] | None = None,
    droppable_payloads: list[str] | None = None,
    max_duplicates: int = 0,
    delay_levels: int = 1,
    quorum_delta: int = 0,
    echo_fallback: bool = True,
    chatty_leaders: bool = False,
    word_constant: float = 30.0,
) -> Scenario:
    """Weak BA (Algorithms 3/4) under a bounded schedule space.

    ``adversary`` picks the corruption pattern:

    ``"none"``
        All processes correct.
    ``"choose-silent"``
        The *identity* of the silenced process — or no corruption at
        all — and its corruption tick (one of ``corrupt_ticks``) are
        choice points, so exhaustive exploration covers every ``f <= 1``
        silence pattern alongside every schedule.
    ``"equivocating-leader"``
        p1 drives two values through its phase
        (:class:`WeakBaEquivocatingLeader` with the *scenario's* commit
        quorum, so ``quorum_delta`` weakens attacker and defender
        symmetrically — the quorum-ablation mutant).
    ``"cert-dealer"``
        Section 6's fallback-certificate attack at ``n=7, t=3``: a
        split-finalize leader, a certificate dealer whose victim is a
        choice point, and a silent process.

    The mutation knobs (``quorum_delta``, ``echo_fallback``,
    ``chatty_leaders``) default to the paper's protocol; the mutant
    harness flips exactly one of them per mutant.
    """
    if adversary not in _ADVERSARIES:
        raise ModelCheckError(
            f"unknown adversary {adversary!r}; known: {_ADVERSARIES}"
        )
    if adversary == "cert-dealer" and n != 7:
        raise ModelCheckError("the cert-dealer scenario is specific to n=7, t=3")

    params = dict(
        n=n,
        t=t,
        num_phases=num_phases,
        adversary=adversary,
        corrupt_ticks=list(corrupt_ticks),
        input_mode=input_mode,
        max_ticks=max_ticks,
        reorder=reorder,
        perm_cap=perm_cap,
        drop_budget=drop_budget,
        droppable_senders=droppable_senders,
        droppable_payloads=droppable_payloads,
        max_duplicates=max_duplicates,
        delay_levels=delay_levels,
        quorum_delta=quorum_delta,
        echo_fallback=echo_fallback,
        chatty_leaders=chatty_leaders,
        word_constant=word_constant,
    )
    space = ChoiceSpace(
        reorder=reorder,
        perm_cap=perm_cap,
        drop_budget=drop_budget,
        droppable_senders=(
            frozenset(droppable_senders) if droppable_senders is not None else None
        ),
        droppable_payloads=(
            frozenset(droppable_payloads)
            if droppable_payloads is not None
            else None
        ),
        max_duplicates=max_duplicates,
        delay_levels=delay_levels,
    )
    config = SystemConfig(n=n, t=t if t is not None else (n - 1) // 2)
    quorum = config.commit_quorum + quorum_delta
    validity = ExternalValidity(lambda v: isinstance(v, str))

    def build(choices: ChoiceSource) -> Simulation:
        simulation = Simulation(
            config,
            seed=0,
            max_ticks=max_ticks,
            choices=choices,
            stop_on_horizon=True,
        )
        byzantine: dict[int, Any] = {}
        scheduled: list[tuple[int, int, Any]] = []
        if adversary == "choose-silent":
            pick = choices.choose("corrupt", (), n + 1)
            if pick:
                victim = pick - 1
                tick = corrupt_ticks[
                    choices.choose("corrupt-tick", (victim,), len(corrupt_ticks))
                ]
                if tick == 0:
                    byzantine[victim] = SilentBehavior()
                else:
                    scheduled.append((tick, victim, SilentBehavior()))
        elif adversary == "equivocating-leader":
            byzantine[1] = WeakBaEquivocatingLeader(
                value_a="evil-A", value_b="evil-B", quorum=quorum
            )
        elif adversary == "cert-dealer":
            victims = (0, 3)  # the processes the split leaves undecided
            victim = victims[choices.choose("deal-target", (), len(victims))]
            byzantine[1] = WeakBaSplitFinalizeLeader(
                value="committed", recipients=frozenset({2, 4})
            )
            byzantine[5] = FallbackCertDealer(target=victim)
            byzantine[6] = SilentBehavior()

        for pid in config.processes:
            if pid in byzantine:
                simulation.add_byzantine(pid, byzantine[pid])
            else:
                value = f"v{pid}" if input_mode == "distinct" else "v"
                simulation.add_process(
                    pid,
                    lambda ctx, v=value: weak_ba_protocol(
                        ctx,
                        v,
                        validity,
                        num_phases=num_phases,
                        commit_quorum=quorum,
                        echo_fallback_certificate=echo_fallback,
                    ),
                )
        for tick, pid, behavior in scheduled:
            simulation.schedule_corruption(tick, pid, behavior)
        return simulation

    def evaluate(result: RunResult) -> Report:
        report = verify_run(
            result,
            validity=lambda v: isinstance(v, str),
            allow_bottom=True,
            word_budget=adaptive_word_budget(word_constant),
            check_adaptive_silence=True,
            # Laggards may simply not have entered yet at the horizon.
            check_fallback_sync=not result.truncated,
        )
        if result.truncated:
            report.violations = [
                v for v in report.violations if v.kind != "termination"
            ]
        return report

    return Scenario(
        name="weak-ba",
        params=params,
        space=space,
        max_ticks=max_ticks,
        build=build,
        evaluate=evaluate,
        mutation=_chatty_leaders if chatty_leaders else None,
        description=(
            f"weak BA n={n} t={config.t} phases={num_phases} "
            f"adversary={adversary} horizon={max_ticks}"
        ),
    )


# ----------------------------------------------------------------------
# Partial synchrony: the pre-GST schedule is the adversary
# ----------------------------------------------------------------------

_PSYNC_ADVERSARIES = ("none", "choose-silent")


def _psync_weak_ba_scenario(
    *,
    n: int = 4,
    t: int | None = None,
    gst: int = 1,
    delta: int = 1,
    pre_gst_levels: int = 2,
    num_phases: int = 1,
    adversary: str = "none",
    input_mode: str = "distinct",
    post_gst_budget: int = 80,
    reorder: bool = False,
    perm_cap: int = 2,
    word_constant: float = 30.0,
) -> Scenario:
    """Weak BA under :class:`~repro.runtime.synchrony.PartialSynchrony`.

    The open decisions are the *pre-GST delivery schedule*: every
    message sent before ``gst`` becomes a ``"net-delay"`` choice point
    with ``pre_gst_levels`` delivery ticks spanning earliest-possible
    through held-until-stabilization, so exhaustive exploration proves
    agreement/validity never depend on pre-GST timing — as long as GST
    lands within the protocol's decision horizon.  Beyond it the
    synchronous agreement argument genuinely fails — the adversary
    holds certificates hostage across round boundaries, splitting runs
    commit-vs-⊥ and even commit-vs-commit — while validity and every
    other checked property survive arbitrary timing;
    ``tests/test_mc_psync.py`` pins both regimes and
    ``docs/partial_synchrony.md`` discusses why the split motivates the
    partial-synchrony successor protocols.  The liveness half of the
    GST contract is the horizon itself:
    ``max_ticks = gst + post_gst_budget``, and a truncated run is
    reported as a termination violation (*not* stripped the way the
    lockstep scenario strips it), so "every explored schedule decides
    within a bounded number of post-GST ticks" is checked, not assumed.

    ``adversary="choose-silent"`` additionally makes the identity of
    one silenced process (or no corruption) a choice point, composing
    ``f <= 1`` crash-silence with adversarial timing.
    """
    if adversary not in _PSYNC_ADVERSARIES:
        raise ModelCheckError(
            f"unknown adversary {adversary!r}; known: {_PSYNC_ADVERSARIES}"
        )

    params = dict(
        n=n,
        t=t,
        gst=gst,
        delta=delta,
        pre_gst_levels=pre_gst_levels,
        num_phases=num_phases,
        adversary=adversary,
        input_mode=input_mode,
        post_gst_budget=post_gst_budget,
        reorder=reorder,
        perm_cap=perm_cap,
        word_constant=word_constant,
    )
    max_ticks = gst + post_gst_budget
    space = ChoiceSpace(reorder=reorder, perm_cap=perm_cap)
    config = SystemConfig(n=n, t=t if t is not None else (n - 1) // 2)
    validity = ExternalValidity(lambda v: isinstance(v, str))

    def build(choices: ChoiceSource) -> Simulation:
        simulation = Simulation(
            config,
            seed=0,
            max_ticks=max_ticks,
            choices=choices,
            stop_on_horizon=True,
            synchrony=PartialSynchrony(
                gst=gst, delta=delta, pre_gst_levels=pre_gst_levels
            ),
        )
        byzantine: dict[int, Any] = {}
        if adversary == "choose-silent":
            pick = choices.choose("corrupt", (), n + 1)
            if pick:
                byzantine[pick - 1] = SilentBehavior()
        for pid in config.processes:
            if pid in byzantine:
                simulation.add_byzantine(pid, byzantine[pid])
            else:
                value = f"v{pid}" if input_mode == "distinct" else "v"
                simulation.add_process(
                    pid,
                    lambda ctx, v=value: weak_ba_protocol(
                        ctx, v, validity, num_phases=num_phases
                    ),
                )
        return simulation

    def evaluate(result: RunResult) -> Report:
        return verify_run(
            result,
            validity=lambda v: isinstance(v, str),
            allow_bottom=True,
            # The adaptive O(n(f+1)) bill is a *synchrony* theorem: a
            # pre-GST timing adversary forces the fallback without
            # spending a single corruption, so the honest ceiling under
            # partial synchrony is the fallback's quadratic bill.
            word_budget=lambda r: word_constant * r.config.n * r.config.n,
            check_adaptive_silence=True,
            # Under the shared round clock every correct process leaves
            # a round in the same tick, so entry skew stays within the
            # lockstep tolerance — except on truncated runs, where the
            # laggard objection applies unchanged.
            check_fallback_sync=not result.truncated,
        )

    return Scenario(
        name="psync-weak-ba",
        params=params,
        space=space,
        max_ticks=max_ticks,
        build=build,
        evaluate=evaluate,
        description=(
            f"weak BA n={n} t={config.t} under gst={gst} delta={delta} "
            f"adversary={adversary} horizon={max_ticks}"
        ),
    )


SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "weak-ba": _weak_ba_scenario,
    "psync-weak-ba": _psync_weak_ba_scenario,
}
"""Registry of scenario factories, keyed by the name replay artifacts
store.  Factories must accept only JSON-serializable keyword params."""
