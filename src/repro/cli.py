"""Command-line interface: run, sweep, and inspect the protocols.

Usage (installed as a module entry point):

    python -m repro run bb --n 7 --value hello
    python -m repro run weak-ba --n 9 --f 2 --adversary silent
    python -m repro run strong-ba --n 7 --f 1 --seed 3
    python -m repro run dolev-strong --n 7
    python -m repro run bb --n 7 --drop-rate 0.2 --lossy-senders 2 3
    python -m repro sweep bb --ns 5 9 13 --max-f 2
    python -m repro flows --n 5 --f 0
    python -m repro table1
    python -m repro mc explore --adversary choose-silent --max-ticks 12
    python -m repro mc mutants
    python -m repro mc replay counterexample.json
    python -m repro run weak-ba --n 4 --wal-dir /tmp/wal --crash 2:3:6
    python -m repro recover inspect /tmp/wal/p2
    python -m repro recover replay /tmp/wal/p2
    python -m repro soak --instances 1000 --duration 120 --workers 6
    python -m repro soak --replay runs/soak-artifacts/soak-violation-i7.json

Every command prints the decision(s), the paper's complexity measures,
and — where applicable — the per-layer word attribution.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.adversary.protocol_attacks import WeakBaTeasingLeader
from repro.adversary.strategies import (
    SilentStrategy,
)
from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import (
    sweep_byzantine_broadcast,
    sweep_dolev_strong,
    sweep_fallback_ba,
    sweep_strong_ba,
    sweep_weak_ba,
)
from repro.analysis.tables import format_table, render_points
from repro.config import RunParameters, SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.fallback.dolev_strong import run_dolev_strong
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.synchrony import parse_synchrony

ADVERSARIES = {
    "silent": lambda pid: SilentBehavior(),
    "garbage": lambda pid: GarbageSpammer(),
    "teasing": lambda pid: WeakBaTeasingLeader(value="tease"),
}

SWEEPS = {
    "bb": sweep_byzantine_broadcast,
    "weak-ba": sweep_weak_ba,
    "strong-ba": sweep_strong_ba,
    "fallback": sweep_fallback_ba,
    "dolev-strong": sweep_dolev_strong,
}


def _byzantine_map(config: SystemConfig, f: int, kind: str, seed: int, avoid):
    import random

    rng = random.Random(seed)
    candidates = [p for p in config.processes if p not in avoid]
    config.validate_failures(f)
    targets = sorted(rng.sample(candidates, f))
    factory = ADVERSARIES[kind]
    return {pid: factory(pid) for pid in targets}


def _report(result, label: str) -> None:
    decision = result.unanimous_decision()
    print(f"{label}: decided {decision!r}")
    print(
        f"  f={result.f}, words={result.correct_words}, "
        f"messages={result.ledger.correct_messages}, "
        f"signatures={result.ledger.signature_count()}, "
        f"rounds={result.ticks}, "
        f"fallback={'yes' if result.fallback_was_used() else 'no'}"
    )
    by_scope = result.ledger.words_by_scope()
    if by_scope:
        print("  layers:")
        for scope, words in sorted(by_scope.items()):
            print(f"    {scope:<24} {words} words")


def _parse_crash(spec: str):
    """Parse one ``--crash`` spec, ``PID:AT_TICK:RESTART_TICK``."""
    from repro.faults.plan import ProcessCrash

    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"--crash wants PID:AT_TICK:RESTART_TICK, got {spec!r}"
        )
    try:
        pid, at_tick, restart_tick = (int(part) for part in parts)
    except ValueError:
        raise SystemExit(
            f"--crash wants three integers PID:AT_TICK:RESTART_TICK, "
            f"got {spec!r}"
        ) from None
    return ProcessCrash(pid=pid, at_tick=at_tick, restart_tick=restart_tick)


def _fault_plan(args: argparse.Namespace):
    """Build the CLI's FaultPlan from ``--drop-rate``/``--lossy-senders``/
    ``--crash`` (``None`` when no fault flag is set)."""
    crashes = tuple(_parse_crash(spec) for spec in (args.crash or ()))
    if not args.drop_rate and not args.lossy_senders and not crashes:
        return None
    from repro.faults.plan import FaultPlan

    return FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop_rate,
        lossy=frozenset(args.lossy_senders or ()),
        crashes=crashes,
    )


def _protocol_runners():
    """CLI protocol name -> runner, resolved through the backend
    registry (``repro.protocols``): ``run`` dispatches by backend name
    instead of importing protocol modules directly, so a new backend
    only has to register itself to become runnable.  The pre-backend
    single-shot protocols (bb, fallback, dolev-strong) keep their
    direct entry points."""
    import repro.protocols as protocols

    cohen = protocols.get_backend("cohen")
    civit = protocols.get_backend("civit")

    def weak_ba(backend):
        def run(config, byzantine, args, params):
            validity = lambda suite, cfg: ExternalValidity(
                lambda v: isinstance(v, str)
            )
            inputs = {
                p: args.value for p in config.processes if p not in byzantine
            }
            return backend.run_weak_ba(
                config, inputs, validity, byzantine=byzantine,
                seed=args.seed, params=params,
            )

        return run

    def strong_ba(backend):
        def run(config, byzantine, args, params):
            inputs = {
                p: args.bit for p in config.processes if p not in byzantine
            }
            return backend.run_strong_ba(
                config, inputs, byzantine=byzantine, seed=args.seed,
                params=params,
            )

        return run

    def adaptive_strong_ba(backend):
        def run(config, byzantine, args, params):
            inputs = {
                p: args.value for p in config.processes if p not in byzantine
            }
            return backend.run_adaptive_strong_ba(
                config, inputs, byzantine=byzantine, seed=args.seed,
                params=params,
            )

        return run

    def bb(config, byzantine, args, params):
        return run_byzantine_broadcast(
            config, sender=0, value=args.value, byzantine=byzantine,
            seed=args.seed, params=params,
        )

    def fallback(config, byzantine, args, params):
        inputs = {
            p: args.value for p in config.processes if p not in byzantine
        }
        return run_fallback_ba(
            config, inputs, byzantine=byzantine, seed=args.seed, params=params
        )

    def dolev_strong(config, byzantine, args, params):
        return run_dolev_strong(
            config, sender=0, value=args.value, byzantine=byzantine,
            seed=args.seed, params=params,
        )

    return {
        "bb": bb,
        "weak-ba": weak_ba(cohen),
        "strong-ba": strong_ba(cohen),
        "adaptive-strong-ba": adaptive_strong_ba(cohen),
        "civit-strong-ba": strong_ba(civit),
        "civit-adaptive-strong-ba": adaptive_strong_ba(civit),
        "fallback": fallback,
        "dolev-strong": dolev_strong,
    }


def cmd_run(args: argparse.Namespace) -> int:
    config = SystemConfig.with_optimal_resilience(args.n)
    avoid = frozenset({0}) if args.protocol in ("bb", "dolev-strong") else frozenset()
    byzantine = _byzantine_map(config, args.f, args.adversary, args.seed, avoid)
    plan = _fault_plan(args)
    observer = None
    if args.obs_log or args.export:
        # Tick-clocked observer: deterministic telemetry, and the export
        # gains an ``obs`` snapshot for ``repro obs summary`` hot spots.
        from repro.obs import Observer

        observer = Observer()
    if plan is not None and plan.faulty:
        effective = len(frozenset(byzantine) | plan.faulty)
        if effective > config.t:
            raise SystemExit(
                f"corrupted ({sorted(byzantine)}) plus lossy senders "
                f"({sorted(plan.faulty)}) exceed t={config.t}: no property "
                "can be promised; reduce --f or --lossy-senders"
            )
    recovery = None
    if plan is not None and plan.crashes and not args.wal_dir:
        raise SystemExit(
            "--crash schedules a crash/restart fault, which needs a "
            "write-ahead log to recover from: pass --wal-dir DIR"
        )
    if args.wal_dir:
        from repro.recovery import RecoveryManager

        recovery = RecoveryManager(args.wal_dir, fsync=args.fsync)
    synchrony = (
        parse_synchrony(args.synchrony) if args.synchrony is not None else None
    )
    params = RunParameters(
        seed=args.seed, fault_plan=plan, observer=observer, recovery=recovery,
        synchrony=synchrony,
    )
    runner = _protocol_runners().get(args.protocol)
    if runner is None:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown protocol {args.protocol}")
    result = runner(config, byzantine, args, params)
    _report(result, f"{args.protocol} (n={config.n}, t={config.t})")
    if recovery is not None:
        stats = recovery.stats
        print(
            f"  recovery: crashes={stats.crashes}, restarts={stats.restarts}, "
            f"replayed_ticks={stats.replayed_ticks}, "
            f"replay_seconds={stats.replay_seconds:.6f}, "
            f"wal_bytes={recovery.wal_bytes()}"
        )
        recovered = getattr(result, "recovered", frozenset())
        if recovered:
            print(f"  recovered processes: {sorted(recovered)}")
        print(
            f"  WALs under {args.wal_dir}: "
            + ", ".join(f"p{pid}" for pid in recovery.pids())
        )
    if plan is not None:
        from repro.verify.checker import verify_under_plan

        effective_f = len(frozenset(result.corrupted) | plan.faulty)
        print(
            f"  fault plan: seed={plan.seed}, drop_rate={plan.drop_rate}, "
            f"lossy={sorted(plan.faulty) or '(all edges)'}"
        )
        print(
            f"  effective f (corrupted + omission senders): {effective_f}"
        )
        report = verify_under_plan(result, plan)
        print(f"  verdict under plan: {report.summary()}")
        if not report.ok:
            return 1
    if args.obs_log:
        path = observer.write_events(args.obs_log)
        print(f"  observer event log written to {path}")
    if args.export:
        from repro.analysis.export import save_run

        meta = {
            "protocol": args.protocol,
            "n": config.n,
            "t": config.t,
            "f": args.f,
            "seed": args.seed,
            "num_phases": params.phases_for(config),
        }
        path = save_run(result, args.export, meta=meta)
        print(f"  run exported to {path}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.jobs > 1:
        from repro.analysis.sweeps import sweep_parallel

        points = sweep_parallel(
            args.protocol,
            args.ns,
            fs=lambda c: range(0, min(args.max_f, c.t) + 1),
            seeds=tuple(range(args.seeds)),
            jobs=args.jobs,
            synchrony=args.synchrony,
        )
    else:
        sweep = SWEEPS[args.protocol]
        points = sweep(
            args.ns,
            fs=lambda c: range(0, min(args.max_f, c.t) + 1),
            seeds=tuple(range(args.seeds)),
            synchrony=(
                parse_synchrony(args.synchrony)
                if args.synchrony is not None
                else None
            ),
        )
    print(render_points(points))
    failure_free = [p for p in points if p.f == 0]
    if len({p.n for p in failure_free}) >= 2:
        fit = fit_slope_vs(failure_free, lambda p: p.n, lambda p: p.words)
        print(f"\nfailure-free words ~ n^{fit.slope:.2f} (R^2={fit.r_squared:.3f})")
    return 0


def cmd_flows(args: argparse.Namespace) -> int:
    from repro.adversary.strategies import apply_strategy
    from repro.analysis.flows import (
        activity_timeline,
        flow_matrix,
        leader_centrality,
        render_flow_matrix,
    )
    from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
    from repro.runtime.scheduler import Simulation

    config = SystemConfig.with_optimal_resilience(args.n)
    plan = SilentStrategy(avoid=frozenset({0})).plan(config, args.f, args.seed)
    simulation = Simulation(config, seed=args.seed, record_envelopes=True)
    apply_strategy(
        simulation,
        plan,
        lambda pid: lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v"),
    )
    result = simulation.run()
    print("activity timeline:")
    print(activity_timeline(result))
    print("\nword-flow matrix (sender -> receiver):")
    print(render_flow_matrix(flow_matrix(result.ledger, config.n)))
    print("\ncentrality (share of words touching each process):")
    for pid, share in leader_centrality(result.ledger, config.n).items():
        print(f"  p{pid}: {share:.1%}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    ns = args.ns
    rows = []
    bb0 = sweep_byzantine_broadcast(ns, fs=lambda c: [0])
    bbt = sweep_byzantine_broadcast(ns, fs=lambda c: [c.t])
    wba0 = sweep_weak_ba(ns, fs=lambda c: [0])
    sba0 = sweep_strong_ba(ns, fs=lambda c: [0])
    fb = sweep_fallback_ba(ns, fs=lambda c: [0])

    def slope(points):
        return fit_slope_vs(points, lambda p: p.n, lambda p: p.words).slope

    rows.append(["Byzantine Broadcast", "O(n(f+1))",
                 f"n^{slope(bb0):.2f} (f=0)", f"n^{slope(bbt):.2f} (f=t)"])
    rows.append(["Weak BA", "O(n(f+1))", f"n^{slope(wba0):.2f} (f=0)", "-"])
    rows.append(["Strong BA (binary)", "O(n) if f=0",
                 f"n^{slope(sba0):.2f} (f=0)", "-"])
    rows.append(["Strong BA (Momose-Ren fallback)", "O(n^2)",
                 f"n^{slope(fb):.2f}", "-"])
    print("Table 1, measured (word-growth exponents):\n")
    print(format_table(["protocol", "paper bound", "measured", "worst case"],
                       rows))
    return 0


def cmd_mc_explore(args: argparse.Namespace) -> int:
    from repro import mc

    scenario = mc.make_scenario(
        args.scenario,
        n=args.n,
        num_phases=args.phases,
        adversary=args.adversary,
        max_ticks=args.max_ticks,
        perm_cap=args.perm_cap,
    )
    print(f"scenario: {scenario.description}")
    if args.mode == "exhaustive":
        prune = None if args.prune == "none" else args.prune
        if args.jobs > 1:
            result = mc.explore_exhaustive_parallel(
                scenario, jobs=args.jobs, max_runs=args.max_runs, prune=prune
            )
        else:
            result = mc.explore_exhaustive(
                scenario, max_runs=args.max_runs, prune=prune
            )
    else:
        result = mc.explore_random(
            scenario, runs=args.max_runs, seed=args.walk_seed,
            stop_at_first=False,
        )
    stats = result.stats
    print(
        f"schedules: {stats.runs} run ({stats.terminal} terminal, "
        f"{stats.pruned} pruned, {stats.truncated} truncated at the "
        f"horizon); distinct states: {stats.distinct_states}; "
        f"max decisions: {stats.max_depth}"
    )
    if args.mode == "exhaustive":
        if result.complete:
            print(
                "space exhausted: properties PROVED over the bounded "
                "schedule space"
                if result.ok
                else "space exhausted: counterexamples found"
            )
        else:
            print(f"budget hit ({args.max_runs} runs): NOT a proof")
    for counterexample in result.counterexamples:
        print(f"\ncounterexample {list(counterexample.decisions)}:")
        print(f"  {counterexample.summary}")
    if result.counterexamples and args.replay_out:
        shrunk = mc.shrink(scenario, result.counterexamples[0])
        artifact = mc.replay_artifact(scenario, shrunk.decisions)
        path = mc.save_replay(args.replay_out, artifact)
        print(
            f"\nshrunk {len(shrunk.original)} -> {len(shrunk.decisions)} "
            f"decisions; replay artifact written to {path}"
        )
    return 0 if result.ok else 1


def cmd_mc_mutants(args: argparse.Namespace) -> int:
    from repro import mc

    names = args.names or sorted(mc.MUTANTS)
    failures = 0
    for name in names:
        try:
            kill = mc.kill_mutant(name, out_dir=args.out_dir)
        except Exception as exc:  # surviving mutant = checker bug
            failures += 1
            print(f"mutant {name}: NOT KILLED -> {exc}")
        else:
            print(kill.summary())
        print()
    return 1 if failures else 0


def cmd_mc_replay(args: argparse.Namespace) -> int:
    from repro.mc.shrink import load_replay, replay

    artifact = load_replay(args.artifact)
    print(
        f"replaying {artifact['scenario']} with decisions "
        f"{artifact['decisions']}"
    )
    outcome = replay(artifact)
    print("recorded violations reproduced deterministically:")
    for violation in outcome.report.violations:
        print(f"  [{violation.kind}] {violation.detail}")
    if not outcome.report.violations:
        print("  (none — the artifact records a clean run)")
    return 0


def _load_export(path: str) -> dict:
    import json
    from pathlib import Path

    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, dict) or "format_version" not in raw:
        raise SystemExit(
            f"{path} is not a run export (expected a `repro run --export` file)"
        )
    return raw


def cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, summarize_export

    print(render_summary(summarize_export(_load_export(args.export_path))))
    return 0


def cmd_obs_export(args: argparse.Namespace) -> int:
    import json

    from repro.obs import summarize_export

    text = json.dumps(summarize_export(_load_export(args.export_path)), indent=1)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"summary written to {args.out}")
    else:
        print(text)
    return 0


def cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs import validate_bench_result_file

    failures = 0
    for path in args.paths:
        errors = validate_bench_result_file(path)
        if errors:
            failures += 1
            for error in errors:
                print(error)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


def _wal_stem(path: str):
    """Accept a WAL stem, a ``.wal`` path, or a ``.snap`` path."""
    from pathlib import Path

    stem = Path(path)
    if not stem.is_dir() and stem.suffix in (".wal", ".snap"):
        stem = stem.with_suffix("")
    return stem


def _diagnose_wal_stem(stem) -> str | None:
    """One-line diagnosis of an unusable WAL stem, or ``None`` if it is
    worth opening.

    Covers the operator mistakes a long soak makes routine: pointing the
    command at the run's ``--wal-dir`` instead of a process stem, at a
    stem that was never written, or at a WAL left empty because the
    process died before its first flush.
    """
    if stem.is_dir():
        stems = sorted(p.name[: -len(".wal")] for p in stem.glob("*.wal"))
        hint = ", ".join(stems[:8]) if stems else "none"
        return (
            f"{stem} is a directory, not a process stem "
            f"(stems inside: {hint})"
        )
    wal_path = stem.with_suffix(".wal")
    snap_path = stem.with_suffix(".snap")
    if not wal_path.exists() and not snap_path.exists():
        return f"no WAL or snapshot at {wal_path} / {snap_path}"
    if (
        wal_path.is_file()
        and wal_path.stat().st_size == 0
        and not snap_path.exists()
    ):
        return (
            f"{wal_path} is empty (0 bytes) — the process died before "
            "its first flush; nothing to recover"
        )
    return None


def cmd_recover_inspect(args: argparse.Namespace) -> int:
    """Report what one process's durable state contains — record counts,
    damage, metadata — without executing any protocol code."""
    from repro.recovery import load_history, scan_wal

    stem = _wal_stem(args.stem)
    problem = _diagnose_wal_stem(stem)
    if problem is not None:
        print(f"recover inspect: {problem}")
        return 1
    wal_path = stem.with_suffix(".wal")
    if wal_path.exists():
        scan = scan_wal(wal_path)
        kinds: dict[str, int] = {}
        for record in scan.records:
            kind = (
                record[0]
                if isinstance(record, (list, tuple)) and record
                else "?"
            )
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        print(
            f"{wal_path}: {len(scan.records)} records, "
            f"{scan.bytes_read} valid bytes"
        )
        for kind, count in sorted(kinds.items()):
            print(f"  {kind:<8} x{count}")
        if scan.damage is not None:
            marker = "tolerable" if scan.damage.tolerable else "FATAL"
            print(
                f"  damage ({marker}): {scan.damage.kind} at offset "
                f"{scan.damage.offset}: {scan.damage.detail}"
            )
    else:
        print(f"{wal_path}: absent")
    snap_path = stem.with_suffix(".snap")
    if snap_path.exists():
        print(f"{snap_path}: {snap_path.stat().st_size} bytes")
    try:
        history = load_history(stem, strict=args.strict)
    except Exception as exc:  # RecoveryError or unreadable state
        print(f"history: UNLOADABLE — {exc}")
        return 1
    print("history:")
    for key in sorted(history.meta):
        print(f"  meta.{key} = {history.meta[key]!r}")
    print(f"  ticks with input: {len(history.inboxes)}")
    print(f"  through tick: {history.through_tick}")
    print(f"  total sends: {history.total_sends()}")
    print(f"  events: {len(history.events)}")
    if history.down_windows:
        windows = ", ".join(f"[{lo}, {hi})" for lo, hi in history.down_windows)
        print(f"  down windows: {windows}")
    return 0


def cmd_recover_replay(args: argparse.Namespace) -> int:
    """Re-drive a process's protocol from its WAL and report what the
    deterministic replay reconstructed."""
    from repro.errors import RecoveryError
    from repro.recovery import replay_wal

    stem = _wal_stem(args.stem)
    problem = _diagnose_wal_stem(stem)
    if problem is not None:
        print(f"recover replay: {problem}")
        return 1
    try:
        report = replay_wal(stem, strict=args.strict)
    except (RecoveryError, OSError) as exc:
        print(f"replay failed: {exc}")
        return 1
    summary = report.summary()
    print(f"replayed p{summary.pop('pid')} from {stem}")
    for key in (
        "ticks_replayed", "sends_replayed", "events_replayed",
        "resumed_at_tick",
    ):
        print(f"  {key} = {summary[key]}")
    print(f"  duration = {report.duration_seconds:.6f}s")
    if report.down_windows:
        windows = ", ".join(f"[{lo}, {hi})" for lo, hi in report.down_windows)
        print(f"  down windows: {windows}")
    if report.decided:
        print(f"  decided: {report.decision!r}")
    else:
        print("  decided: not within the recorded history")
    return 0


def _parse_inject(spec: str) -> tuple[int, str]:
    """Parse one ``--inject`` spec, ``INDEX:TAG``."""
    from repro.soak import INJECT_DOUBLE_BILL, INJECT_SKIP_REJOIN_DEDUP

    tags = (INJECT_DOUBLE_BILL, INJECT_SKIP_REJOIN_DEDUP)
    index, sep, tag = spec.partition(":")
    if not sep or tag not in tags:
        raise SystemExit(
            f"--inject wants INDEX:TAG with TAG in {tags}, got {spec!r}"
        )
    try:
        return int(index), tag
    except ValueError:
        raise SystemExit(
            f"--inject wants an integer instance index, got {spec!r}"
        ) from None


def cmd_soak(args: argparse.Namespace) -> int:
    """Run a chaos soak campaign (or replay one violation artifact)."""
    from repro.obs import Observer
    from repro.soak import (
        SoakSettings,
        render_outcome,
        replay_artifact,
        run_fleet,
        write_soak_result,
    )

    if args.replay:
        verdict = replay_artifact(args.replay)
        print(
            f"replayed instance {verdict['index']}: "
            f"recorded {verdict['recorded_kinds']}, "
            f"fresh {verdict['fresh_kinds']}"
        )
        if verdict["derivation_drift"]:
            print(
                "  note: derive_instance no longer produces the recorded "
                "spec (replayed the recorded spec verbatim)"
            )
        if verdict["reproduced"]:
            print("  verdict: REPRODUCED")
            return 0
        print("  verdict: did not reproduce")
        return 1

    instances = args.instances
    if instances is None and args.duration is None:
        instances = 1000
    settings = SoakSettings(
        master_seed=args.seed,
        profile=args.chaos_profile,
        workers=args.workers,
        instances=instances,
        duration=args.duration,
        tick_duration=args.tick,
        artifacts_dir=args.artifacts_dir,
        inject=dict(_parse_inject(spec) for spec in (args.inject or ())),
    )
    observer = Observer.wall()
    outcome = run_fleet(settings, observer=observer, progress=print)
    print(render_outcome(outcome))
    path = write_soak_result(outcome, args.out)
    print(f"trend artifact written to {path}")
    if args.obs_log:
        print(f"observer events written to {observer.write_events(args.obs_log)}")
    if not outcome.ok:
        print(
            f"SOAK FAILED: {len(outcome.violations)} violation(s); "
            f"replay artifacts in {settings.artifacts_dir}"
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Byzantine Agreement (PODC 2022) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one protocol instance")
    run_parser.add_argument(
        "protocol",
        choices=[
            "bb",
            "weak-ba",
            "strong-ba",
            "adaptive-strong-ba",
            "civit-strong-ba",
            "civit-adaptive-strong-ba",
            "fallback",
            "dolev-strong",
        ],
    )
    run_parser.add_argument("--n", type=int, default=7, help="odd, n = 2t+1")
    run_parser.add_argument("--f", type=int, default=0, help="actual failures")
    run_parser.add_argument(
        "--adversary", choices=sorted(ADVERSARIES), default="silent"
    )
    run_parser.add_argument("--value", default="hello")
    run_parser.add_argument("--bit", type=int, choices=[0, 1], default=1,
                            help="strong-ba binary input")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--export", default=None, metavar="PATH",
        help="write the full run (ledger + trace + observer snapshot) "
        "to a JSON file",
    )
    run_parser.add_argument(
        "--obs-log", default=None, metavar="PATH",
        help="record the run with an observer and write its structured "
        "event log as JSONL",
    )
    run_parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed for the fault plan's per-message decisions",
    )
    run_parser.add_argument(
        "--drop-rate", type=float, default=0.0,
        help="probability a message from a lossy sender is dropped "
        "(send-omission faults; counts toward the effective f)",
    )
    run_parser.add_argument(
        "--lossy-senders", type=int, nargs="+", default=None, metavar="PID",
        help="senders whose messages may be dropped; omit to make every "
        "edge lossy (exceeds the paper's model)",
    )
    run_parser.add_argument(
        "--wal-dir", default=None, metavar="DIR",
        help="give every correct process a write-ahead log under DIR "
        "(required for --crash; inspect afterwards with `repro recover`)",
    )
    run_parser.add_argument(
        "--fsync", choices=["always", "batch", "never"], default="batch",
        help="WAL durability policy (default: one fsync per tick)",
    )
    run_parser.add_argument(
        "--crash", action="append", default=None, metavar="PID:AT:RESTART",
        help="crash process PID at tick AT and restart it (from its WAL) "
        "at tick RESTART; repeatable",
    )
    run_parser.add_argument(
        "--synchrony", default=None, metavar="SPEC",
        help="timing model: 'lockstep[:delta]' (default lockstep:1) or "
        "'gst:<tick>[:delta]' for partial synchrony with a global "
        "stabilization time (incompatible with --wal-dir)",
    )
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = sub.add_parser("sweep", help="sweep (n, f) and fit slopes")
    sweep_parser.add_argument("protocol", choices=sorted(SWEEPS))
    sweep_parser.add_argument("--ns", type=int, nargs="+", default=[5, 9, 13])
    sweep_parser.add_argument("--max-f", type=int, default=1)
    sweep_parser.add_argument("--seeds", type=int, default=1)
    sweep_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes fanning out the grid points (1 = serial; "
        "each point's run is identical either way)",
    )
    sweep_parser.add_argument(
        "--synchrony", default=None, metavar="SPEC",
        help="timing model for every grid point: 'lockstep[:delta]' or "
        "'gst:<tick>[:delta]' (e.g. `repro sweep weak-ba --synchrony "
        "gst:4`); the model is reseeded with each point's seed",
    )
    sweep_parser.set_defaults(func=cmd_sweep)

    flows_parser = sub.add_parser(
        "flows", help="message-flow deep dive of one BB run"
    )
    flows_parser.add_argument("--n", type=int, default=5)
    flows_parser.add_argument("--f", type=int, default=0)
    flows_parser.add_argument("--seed", type=int, default=0)
    flows_parser.set_defaults(func=cmd_flows)

    table_parser = sub.add_parser(
        "table1", help="regenerate the paper's Table 1 from measurements"
    )
    table_parser.add_argument("--ns", type=int, nargs="+", default=[5, 9, 13, 17])
    table_parser.set_defaults(func=cmd_table1)

    mc_parser = sub.add_parser(
        "mc", help="schedule-space model checking (explore/mutants/replay)"
    )
    mc_sub = mc_parser.add_subparsers(dest="mc_command", required=True)

    explore_parser = mc_sub.add_parser(
        "explore", help="explore a scenario's bounded schedule space"
    )
    explore_parser.add_argument(
        "--scenario", default="weak-ba", help="scenario registry name"
    )
    explore_parser.add_argument("--n", type=int, default=4)
    explore_parser.add_argument("--phases", type=int, default=1)
    explore_parser.add_argument(
        "--adversary", default="choose-silent",
        help="adversary mode of the scenario (see repro.mc.scenario)",
    )
    explore_parser.add_argument("--max-ticks", type=int, default=12)
    explore_parser.add_argument(
        "--perm-cap", type=int, default=6,
        help="inbox orderings offered per choice point (bounds the space; "
        "6 explores the full n=4 space in ~5 minutes, 2-3 in seconds)",
    )
    explore_parser.add_argument(
        "--mode", choices=["exhaustive", "random"], default="exhaustive"
    )
    explore_parser.add_argument(
        "--max-runs", type=int, default=100_000,
        help="exhaustive budget / number of random walks",
    )
    explore_parser.add_argument(
        "--prune", choices=["behavior", "history", "none"], default="behavior"
    )
    explore_parser.add_argument(
        "--jobs", type=int, default=1,
        help="shard the exhaustive DFS across worker processes (1 = "
        "serial; shards prune independently, so run totals differ "
        "from a serial search while the verdict cannot)",
    )
    explore_parser.add_argument("--walk-seed", type=int, default=0)
    explore_parser.add_argument(
        "--replay-out", default=None, metavar="PATH",
        help="shrink the first counterexample and write its replay artifact",
    )
    explore_parser.set_defaults(func=cmd_mc_explore)

    mutants_parser = mc_sub.add_parser(
        "mutants", help="kill the protocol mutants, artifact per kill"
    )
    mutants_parser.add_argument(
        "names", nargs="*", metavar="MUTANT",
        help="mutants to kill (default: all)",
    )
    mutants_parser.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write a replay artifact per kill into this directory",
    )
    mutants_parser.set_defaults(func=cmd_mc_mutants)

    replay_parser = mc_sub.add_parser(
        "replay", help="re-execute a replay artifact and verify it"
    )
    replay_parser.add_argument("artifact", metavar="PATH")
    replay_parser.set_defaults(func=cmd_mc_replay)

    obs_parser = sub.add_parser(
        "obs", help="observability: summarize exports, validate bench JSON"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    obs_summary = obs_sub.add_parser(
        "summary",
        help="per-phase words, silent-phase ratio, fallback skew, hot "
        "spots of one recorded run (a `repro run --export` file)",
    )
    obs_summary.add_argument("export_path", metavar="EXPORT.json")
    obs_summary.set_defaults(func=cmd_obs_summary)

    obs_export = obs_sub.add_parser(
        "export", help="the same summary as machine-readable JSON"
    )
    obs_export.add_argument("export_path", metavar="EXPORT.json")
    obs_export.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the summary JSON here instead of stdout",
    )
    obs_export.set_defaults(func=cmd_obs_export)

    obs_validate = obs_sub.add_parser(
        "validate",
        help="check benchmarks/results/*.json against the result schema",
    )
    obs_validate.add_argument("paths", nargs="+", metavar="RESULT.json")
    obs_validate.set_defaults(func=cmd_obs_validate)

    recover_parser = sub.add_parser(
        "recover", help="inspect and replay per-process write-ahead logs"
    )
    recover_sub = recover_parser.add_subparsers(
        dest="recover_command", required=True
    )

    inspect_parser = recover_sub.add_parser(
        "inspect",
        help="report a WAL's records, metadata, and any damage "
        "(no protocol code runs)",
    )
    inspect_parser.add_argument(
        "stem", metavar="STEM",
        help="WAL stem (e.g. wal/p2), or its .wal/.snap path",
    )
    inspect_parser.add_argument(
        "--strict", action="store_true",
        help="treat a torn tail (the normal crash signature) as fatal too",
    )
    inspect_parser.set_defaults(func=cmd_recover_inspect)

    replay_parser2 = recover_sub.add_parser(
        "replay",
        help="re-drive the protocol from a WAL and report the "
        "reconstructed state",
    )
    replay_parser2.add_argument(
        "stem", metavar="STEM",
        help="WAL stem (e.g. wal/p2), or its .wal/.snap path",
    )
    replay_parser2.add_argument(
        "--strict", action="store_true",
        help="treat a torn tail (the normal crash signature) as fatal too",
    )
    replay_parser2.set_defaults(func=cmd_recover_replay)

    from repro.soak.plan import DEFAULT_TICK, PROFILES

    soak_parser = sub.add_parser(
        "soak",
        help="long-running chaos soak: a multi-process TCP fleet under "
        "seeded chaos with an always-on invariant auditor",
    )
    soak_parser.add_argument(
        "--seed", type=int, default=7,
        help="master seed; every instance's spec and fault plan derives "
        "from it, so failures replay deterministically",
    )
    soak_parser.add_argument(
        "--chaos-profile", choices=sorted(PROFILES), default="mixed",
        help="fault mix thrown at each instance (default: mixed)",
    )
    soak_parser.add_argument(
        "--workers", type=int, default=3,
        help="worker OS processes, each running whole TCP clusters "
        "(default: 3)",
    )
    soak_parser.add_argument(
        "--instances", type=int, default=None,
        help="run at least this many instances (default 1000 when "
        "--duration is not set; with --duration, both must be met)",
    )
    soak_parser.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="keep soaking for at least this long",
    )
    soak_parser.add_argument(
        "--tick", type=float, default=DEFAULT_TICK,
        help=f"round length in seconds (default {DEFAULT_TICK}; workers "
        "escalate 2x/4x on scheduling stalls)",
    )
    soak_parser.add_argument(
        "--out", default="benchmarks/results/soak.json", metavar="PATH",
        help="schema-valid trend artifact (default: "
        "benchmarks/results/soak.json)",
    )
    soak_parser.add_argument(
        "--artifacts-dir", default="runs/soak-artifacts", metavar="DIR",
        help="replayable violation artifacts land here as they are caught",
    )
    soak_parser.add_argument(
        "--inject", action="append", default=None, metavar="INDEX:TAG",
        help="sabotage instance INDEX with a known accounting bug "
        "(double-bill, skip-rejoin-dedup) to prove the auditor catches "
        "it; repeatable",
    )
    soak_parser.add_argument(
        "--obs-log", default=None, metavar="PATH",
        help="write the campaign's structured observer events as JSONL",
    )
    soak_parser.add_argument(
        "--replay", default=None, metavar="ARTIFACT",
        help="instead of soaking, re-run one violation artifact and "
        "report whether its verdict reproduces",
    )
    soak_parser.set_defaults(func=cmd_soak)

    report_parser = sub.add_parser(
        "report", help="run the condensed claim battery, emit markdown"
    )
    report_parser.add_argument("--ns", type=int, nargs="+", default=[5, 9, 13, 17])
    report_parser.add_argument(
        "--out", default=None, help="write the report to this file"
    )
    report_parser.set_defaults(func=cmd_report)
    return parser


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import collect_claims, render_report

    claims = collect_claims(tuple(args.ns))
    text = render_report(claims)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text + "\n")
        print(f"report written to {args.out}")
    print(text)
    return 0 if all(c.holds for c in claims) else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
