"""The Cohen–Keidar–Spiegelman backend: the paper this repo reproduces.

Pure wiring — every driver, factory, and replay builder already lives
in :mod:`repro.core` / :mod:`repro.recovery`; this module lifts them
behind the shared :class:`~repro.protocols.base.Backend` surface so
runtimes and the conformance suite can dispatch on ``"cohen"``.  The
protocol code paths are untouched, which is what keeps pre-refactor
traces byte-identical (``tests/test_backends.py`` pins
``Trace.canonical()`` equality between backend-dispatched and
direct-import runs).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.adaptive_strong_ba import (
    adaptive_strong_ba_protocol,
    run_adaptive_strong_ba,
)
from repro.core.strong_ba import run_strong_ba, strong_ba_protocol
from repro.core.weak_ba import run_weak_ba, weak_ba_protocol
from repro.protocols.base import Backend, register_backend
from repro.recovery.replay import (
    _build_adaptive_strong_ba,
    _build_bb,
    _build_strong_ba,
    _build_weak_ba,
)


def _strong_ba_tick_bound(config: SystemConfig) -> int:
    # 4 leader rounds + final delivery + the grace listening window.
    return 4 + 1 + 4


def _strong_ba_word_budget(config: SystemConfig, f: int) -> float:
    n = config.n
    if f == 0:
        # Lemma 8: the failure-free fast path is 4 linear rounds.
        return 8.0 * n
    # Any failure denies the n-of-n decide certificate: everyone runs
    # the quadratic fallback.
    return 90.0 * n * n


COHEN = register_backend(
    Backend(
        name="cohen",
        title="Make Every Word Count: adaptive BA with fewer words",
        paper="Cohen, Keidar & Spiegelman, PODC 2022",
        run_weak_ba=run_weak_ba,
        run_strong_ba=run_strong_ba,
        run_adaptive_strong_ba=run_adaptive_strong_ba,
        weak_ba_protocol=weak_ba_protocol,
        strong_ba_protocol=strong_ba_protocol,
        adaptive_strong_ba_protocol=adaptive_strong_ba_protocol,
        replay_builders={
            "weak_ba": _build_weak_ba,
            "bb": _build_bb,
            "strong_ba": _build_strong_ba,
            "adaptive_strong_ba": _build_adaptive_strong_ba,
        },
        mc_scenarios={},  # "weak-ba" predates backends; it stays in repro.mc
        mc_strong_scenario="weak-ba",
        strong_ba_multivalued=False,
        strong_ba_never_bottom=False,
        silent_leader_forces_fallback=True,
        strong_ba_degrades_quadratically=True,
        weak_ba_shares_core_with=None,
        strong_ba_tick_bound=_strong_ba_tick_bound,
        strong_ba_word_budget=_strong_ba_word_budget,
    )
)
