"""The Civit et al. backend (arXiv:2308.03524), wired into the shared
Protocol API.

``run_weak_ba`` / ``weak_ba_protocol`` deliberately reference the same
Algorithm-3 core as the cohen backend (``weak_ba_shares_core_with =
"cohen"``): both papers build their adaptive machinery on that weak-BA
substrate, and sharing it is a documented substrate reuse, not an
accident — the backends differ in the *strong* layer (certification
views + ⊥ resolution here vs. Algorithm 5's fixed-leader fast path).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.weak_ba import run_weak_ba, weak_ba_protocol
from repro.protocols.base import Backend, register_backend
from repro.protocols.civit.core import (
    BINARY_VALUES,
    RESOLUTION_VALUE,
    CertifiedValidity,
    CertifiedValue,
    civit_adaptive_strong_ba_protocol,
    civit_ba_protocol,
    civit_strong_ba_protocol,
    run_civit_adaptive_strong_ba,
    run_civit_strong_ba,
)

__all__ = [
    "BINARY_VALUES",
    "RESOLUTION_VALUE",
    "CIVIT",
    "CertifiedValidity",
    "CertifiedValue",
    "civit_adaptive_strong_ba_protocol",
    "civit_ba_protocol",
    "civit_strong_ba_protocol",
    "run_civit_adaptive_strong_ba",
    "run_civit_strong_ba",
]


def _build_civit_strong_ba(meta: dict):
    def factory(ctx):
        return civit_strong_ba_protocol(
            ctx,
            meta.get("input"),
            session=meta.get("session", "civit"),
            num_phases=meta.get("num_phases"),
        )

    return factory


def _build_civit_adaptive_strong_ba(meta: dict):
    def factory(ctx):
        return civit_adaptive_strong_ba_protocol(
            ctx,
            meta.get("input"),
            session=meta.get("session", "civit-asba"),
            num_phases=meta.get("num_phases"),
        )

    return factory


def _strong_ba_tick_bound(config: SystemConfig) -> int:
    # t+1 certification views (3 ticks each) + the full weak-BA round
    # structure (6 ticks per phase, n phases, help + grace epilogue).
    return 3 * (config.t + 1) + 6 * config.n + 15


def _strong_ba_word_budget(config: SystemConfig, f: int) -> float:
    n = config.n
    if f >= config.fallback_failure_threshold:
        # At or above (n-t-1)/2 silent faults the shared weak-BA core
        # legitimately runs its quadratic fallback.
        return 90.0 * n * n
    # Below the threshold the whole stack stays adaptive: one correct
    # certification view plus the weak BA's O(n(f+1)) bill.
    return 45.0 * n * (f + 1)


def _mc_scenarios():
    from repro.protocols.civit.scenario import civit_strong_ba_scenario

    return {"civit-strong-ba": civit_strong_ba_scenario}


CIVIT = register_backend(
    Backend(
        name="civit",
        title="Strong Byzantine Agreement with Adaptive Word Complexity",
        paper="Civit, Gilbert, Guerraoui, Komatovic & Vidigueira, "
        "arXiv:2308.03524",
        run_weak_ba=run_weak_ba,
        run_strong_ba=run_civit_strong_ba,
        run_adaptive_strong_ba=run_civit_adaptive_strong_ba,
        weak_ba_protocol=weak_ba_protocol,
        strong_ba_protocol=civit_strong_ba_protocol,
        adaptive_strong_ba_protocol=civit_adaptive_strong_ba_protocol,
        replay_builders={
            "civit_strong_ba": _build_civit_strong_ba,
            "civit_adaptive_strong_ba": _build_civit_adaptive_strong_ba,
        },
        mc_scenarios=_mc_scenarios(),
        mc_strong_scenario="civit-strong-ba",
        strong_ba_multivalued=False,
        strong_ba_never_bottom=True,
        silent_leader_forces_fallback=False,
        strong_ba_degrades_quadratically=False,
        weak_ba_shares_core_with="cohen",
        asba_non_silent_event="civit_view_non_silent",
        asba_certified_event="civit_certified",
        strong_ba_tick_bound=_strong_ba_tick_bound,
        strong_ba_word_budget=_strong_ba_word_budget,
    )
)
