"""Civit-style adaptive strong BA: certified inputs + the adaptive core.

Reproduction of the *STRONG paradigm* of Civit, Gilbert, Guerraoui,
Komatovic & Vidigueira, "Strong Byzantine Agreement with Adaptive Word
Complexity" (arXiv:2308.03524): strong validity is reduced to **input
certification** — a ``t+1``-threshold certificate on ``("civit-input",
v)`` proves at least one *correct* process proposed ``v`` — and
agreement/termination are delegated to an adaptive agreement core run
over the certified values.  This package instantiates that paradigm on
the repo's substrates:

1. **Certification views** (``t + 1`` views, rotating certifiers with
   the same silent-view discipline as Algorithm 2): a certifier holding
   no input certificate solicits; every process answers with its
   threshold share on its *own* input; the certifier combines any
   value's ``t + 1`` shares and broadcasts the certificate.  A view
   whose certifier already holds a certificate is **silent** — the
   adaptivity argument for this layer is the paper's own silent-phase
   accounting.
2. **The shared adaptive weak BA** (Algorithm 3 of Cohen–Keidar–
   Spiegelman, reused verbatim from :mod:`repro.core.weak_ba` — the
   substrate both papers build on) run over :class:`CertifiedValue`
   wrappers under :class:`CertifiedValidity`.
3. **Resolution**: the decision is the certified underlying value.  The
   *binary* strong BA (:func:`civit_strong_ba_protocol`) additionally
   resolves a ``⊥`` outcome to ``RESOLUTION_VALUE`` — see below for why
   that preserves strong validity — so it **never outputs ⊥**, unlike
   Algorithm 5's fallback path or the Section-3 extension.

Why the ``⊥ -> 0`` resolution is safe (binary domain, ``n = 2t + 1``):

* If all correct processes propose the same ``v``, no certificate for
  ``1 - v`` can ever exist (it would need a correct share), while
  ``n - f >= t + 1`` matching shares make ``v`` certifiable and the
  first correct certifier publishes it.  :class:`CertifiedValue`
  compares by the *underlying value only*, so however many certificate
  objects the adversary mints for ``v``, weak BA sees exactly one valid
  value and unique validity forces it — ``⊥`` is unreachable in
  unanimous runs.
* ``⊥`` therefore implies the run was mixed, i.e. *both* binary values
  were proposed by correct processes, and deciding the constant ``0``
  is strong-valid and (being deterministic) agreement-preserving.

Complexity: with ``f`` silent faults and unanimous (or ``t+1``-popular)
inputs, at most one correct certification view is non-silent and the
weak BA core is adaptive, so the bill is ``O(n(f+1))`` whenever ``f``
is below the fallback threshold ``(n-t-1)/2`` — in particular it stays
*linear* at ``f = 1``, where Algorithm 5's ``n``-of-``n`` decide
certificate is already unreachable and its bill jumps to ``O(n^2)``.
That differential is the content of
``benchmarks/results/backend_adaptivity.json``.  In mixed runs where no
value reaches ``t + 1`` correct shares, every correct certifier probes
and the certification layer degrades to ``O(n^2)`` — the same regime as
the Section-3 extension, and an honest fidelity gap against the exact
STRONG protocol (whose pseudocode this module does not transcribe; see
``docs/backends.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.validity import ValidityPredicate
from repro.core.values import BOTTOM
from repro.core.weak_ba import weak_ba_protocol
from repro.crypto.certificates import (
    CertificateCollector,
    CryptoSuite,
    QuorumCertificate,
)
from repro.crypto.threshold import PartialSignature
from repro.errors import ConfigurationError
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

VIEW_ROUNDS = 3
"""Ticks per certification view: solicit, shares, certificate."""

BINARY_VALUES = (0, 1)

RESOLUTION_VALUE = 0
"""The deterministic ⊥-resolution of the binary strong BA.  Only ever
decided in mixed runs (see the module docstring), where both binary
values were proposed by correct processes."""


def input_label(session: str) -> str:
    return f"civit-inp:{session}"


def input_statement(value: object) -> tuple:
    return ("civit-input", value)


@dataclass(frozen=True)
class CertifiedValue:
    """A value together with its input certificate.

    Equality, hashing, and — crucially — the canonical signing encoding
    cover the *underlying value only*: the certificate rides along as a
    non-field attribute.  Two certificates for the same value minted
    from different share subsets therefore collapse into one weak-BA
    value, which is what makes unique validity force the unanimous
    value (no adversarial ``⊥`` via certificate multiplicity).
    """

    value: object

    def with_certificate(self, certificate: QuorumCertificate) -> "CertifiedValue":
        object.__setattr__(self, "_certificate", certificate)
        return self

    @property
    def certificate(self) -> QuorumCertificate | None:
        return getattr(self, "_certificate", None)

    def words(self) -> int:
        # One word for the value, one for the threshold certificate.
        return 2

    def __repr__(self) -> str:
        return f"Certified({self.value!r})"


class CertifiedValidity(ValidityPredicate):
    """Valid iff the attached input certificate proves ``t+1`` processes
    — hence at least one correct one — claimed the wrapped value as
    their input."""

    def __init__(self, suite: CryptoSuite, config: SystemConfig, session: str):
        self._suite = suite
        self._quorum = config.small_quorum
        self._label = input_label(session)

    def validate(self, value: object) -> bool:
        if not isinstance(value, CertifiedValue):
            return False
        certificate = value.certificate
        try:
            return (
                certificate is not None
                and certificate.payload == input_statement(value.value)
                and self._suite.verify_certificate(
                    certificate, self._label, self._quorum
                )
            )
        except Exception:
            return False


# ----------------------------------------------------------------------
# Wire payloads of the certification views
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CivitSolicit:
    """A certificate-less view certifier asks for input shares."""

    session: str
    view: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the certifier signs its solicitation


@dataclass(frozen=True)
class CivitInputShare:
    """A process's threshold share on its *own* input statement."""

    session: str
    view: int
    value: object
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class CivitInputCert:
    """A combined input certificate, broadcast by the view certifier."""

    session: str
    view: int
    value: object
    certificate: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.certificate.signatures()


def _take_view(
    pool: MessagePool, payload_type: type, session: str, view: int
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session
        and getattr(e.payload, "view", None) == view,
    )


def certification_views(
    ctx: ProcessContext,
    initial_value: object,
    *,
    session: str,
    num_views: int,
    pool: MessagePool,
) -> Generator[None, None, CertifiedValue | None]:
    """Run the certification layer; returns this process's certified
    value (its own input, or the first valid certificate adopted) or
    ``None`` when no certificate was observed."""
    config = ctx.config
    suite = ctx.suite
    quorum = config.small_quorum
    label = input_label(session)
    validity = CertifiedValidity(suite, config, session)
    certified: CertifiedValue | None = None

    def adopt(view: int) -> CertifiedValue | None:
        for envelope in pool.take_payloads(
            CivitInputCert,
            lambda e: getattr(e.payload, "session", None) == session,
        ):
            payload = envelope.payload
            candidate = CertifiedValue(payload.value).with_certificate(
                payload.certificate
            )
            if validity.validate(candidate):
                ctx.emit("civit_certified", view=view)
                return candidate
        return None

    for view in range(1, num_views + 1):
        certifier = config.leader_of_phase(view)
        is_certifier = ctx.pid == certifier

        # Round 1: a certificate-less certifier solicits; holders of a
        # certificate keep their view silent (the adaptivity argument).
        if is_certifier and certified is None:
            ctx.emit("civit_view_non_silent", view=view, certifier=certifier)
            ctx.broadcast(CivitSolicit(session=session, view=view))
        pool.extend((yield from ctx.sleep(1)))

        # Round 2: answer the view's certifier with our own input share.
        solicited = any(
            e.sender == certifier
            for e in _take_view(pool, CivitSolicit, session, view)
        )
        if solicited:
            partial = suite.partial_for_certificate(
                ctx.pid, label, quorum, input_statement(initial_value)
            )
            ctx.send(
                certifier,
                CivitInputShare(
                    session=session,
                    view=view,
                    value=initial_value,
                    partial=partial,
                ),
            )
        pool.extend((yield from ctx.sleep(1)))

        # Round 3: the certifier combines any t+1 matching shares.
        if is_certifier and certified is None:
            collectors: dict[object, CertificateCollector] = {}
            for envelope in _take_view(pool, CivitInputShare, session, view):
                share = envelope.payload
                try:
                    collector = collectors.get(share.value)
                    if collector is None:
                        collector = CertificateCollector(
                            suite, label, quorum, input_statement(share.value)
                        )
                        collectors[share.value] = collector
                    collector.add(share.partial)
                except Exception:
                    continue
            for share_value, collector in collectors.items():
                if collector.complete:
                    ctx.broadcast(
                        CivitInputCert(
                            session=session,
                            view=view,
                            value=share_value,
                            certificate=collector.certificate(),
                        )
                    )
                    break
        pool.extend((yield from ctx.sleep(1)))

        if certified is None:
            certified = adopt(view)

    if certified is None:
        certified = adopt(num_views)  # a last-tick broadcast still counts
    return certified


def civit_ba_protocol(
    ctx: ProcessContext,
    initial_value: object,
    *,
    session: str = "civit",
    binary: bool,
    num_views: int | None = None,
    num_phases: int | None = None,
    commit_quorum: int | None = None,
    echo_fallback_certificate: bool = True,
) -> Generator[None, None, object]:
    """The shared core: certification views, then the adaptive weak BA
    over certified values, then resolution.

    ``binary=True`` is the strong BA (inputs restricted to ``{0, 1}``,
    ``⊥`` resolved to :data:`RESOLUTION_VALUE`); ``binary=False`` is the
    multivalued adaptive variant, where ``⊥`` remains a permitted
    outcome exactly as in Definition 2.

    ``commit_quorum`` and ``echo_fallback_certificate`` pass through to
    the weak-BA core — they exist for the mutation harness
    (``repro.mc.mutants``), not for production use.
    """
    if binary and initial_value not in BINARY_VALUES:
        raise ConfigurationError(
            f"civit strong BA is binary; got initial value {initial_value!r}"
        )
    with ctx.scope("civit_ba"):
        config = ctx.config
        views = num_views if num_views is not None else config.t + 1
        phases = num_phases if num_phases is not None else config.n
        pool = MessagePool()

        certified = yield from certification_views(
            ctx,
            initial_value,
            session=session,
            num_views=views,
            pool=pool,
        )

        validity = CertifiedValidity(ctx.suite, config, session)
        ba_decision = yield from weak_ba_protocol(
            ctx,
            certified,
            validity,
            session=f"{session}/wba",
            num_phases=phases,
            commit_quorum=commit_quorum,
            pool=pool,
            echo_fallback_certificate=echo_fallback_certificate,
        )

        if isinstance(ba_decision, CertifiedValue):
            decision: object = ba_decision.value
        elif binary:
            decision = RESOLUTION_VALUE
        else:
            decision = BOTTOM
        ctx.emit("decided", value=repr(decision), session=session)
        return decision


def civit_strong_ba_protocol(
    ctx: ProcessContext,
    initial_value: int,
    *,
    session: str = "civit",
    num_views: int | None = None,
    num_phases: int | None = None,
    commit_quorum: int | None = None,
    echo_fallback_certificate: bool = True,
) -> Generator[None, None, object]:
    """Binary strong BA: never ``⊥``, strong validity in every run."""
    return (
        yield from civit_ba_protocol(
            ctx,
            initial_value,
            session=session,
            binary=True,
            num_views=num_views,
            num_phases=num_phases,
            commit_quorum=commit_quorum,
            echo_fallback_certificate=echo_fallback_certificate,
        )
    )


def civit_adaptive_strong_ba_protocol(
    ctx: ProcessContext,
    initial_value: object,
    *,
    session: str = "civit-asba",
    num_views: int | None = None,
    num_phases: int | None = None,
) -> Generator[None, None, object]:
    """Multivalued variant: strong unanimity, ``⊥`` permitted
    (Definition 2 semantics, comparable to the Section-3 extension)."""
    return (
        yield from civit_ba_protocol(
            ctx,
            initial_value,
            session=session,
            binary=False,
            num_views=num_views,
            num_phases=num_phases,
        )
    )


# ----------------------------------------------------------------------
# Standalone simulator drivers (standard repo signature)
# ----------------------------------------------------------------------


def _run(
    config: SystemConfig,
    inputs: dict[ProcessId, Any],
    *,
    seed: int,
    byzantine: dict[ProcessId, Any] | None,
    params: RunParameters | None,
    protocol_name: str,
    factory,
):
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(
            protocol=protocol_name, num_phases=params.num_phases
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            if params.recovery is not None:
                params.recovery.describe_process(pid, input=value)
            simulation.add_process(pid, factory(value, params))
    return simulation.run()


def run_civit_strong_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, int],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver for the binary strong BA."""
    for pid, value in inputs.items():
        if value not in BINARY_VALUES:
            raise ConfigurationError(
                f"civit strong BA is binary; p{pid} proposes {value!r}"
            )
    return _run(
        config,
        inputs,
        seed=seed,
        byzantine=byzantine,
        params=params,
        protocol_name="civit_strong_ba",
        factory=lambda value, p: (
            lambda ctx, v=value: civit_strong_ba_protocol(
                ctx, v, num_phases=p.num_phases
            )
        ),
    )


def run_civit_adaptive_strong_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, Any],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver for the multivalued adaptive variant."""
    return _run(
        config,
        inputs,
        seed=seed,
        byzantine=byzantine,
        params=params,
        protocol_name="civit_adaptive_strong_ba",
        factory=lambda value, p: (
            lambda ctx, v=value: civit_adaptive_strong_ba_protocol(
                ctx, v, num_phases=p.num_phases
            )
        ),
    )
