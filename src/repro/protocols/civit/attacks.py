"""Byzantine attacks against the civit backend.

The civit stack's inner agreement core is the shared Algorithm-3 weak
BA, so the heavy lifting reuses the session-parametric attacks from
:mod:`repro.adversary.protocol_attacks` — what these classes add is the
*certification prelude*: a Byzantine view-1 certifier harvests the
input shares honest processes send it and tops incomplete certificates
up with the coalition's own shares, exactly the "adds ``t`` signatures
of its own" move of Section 6.  With the harvested certificates in hand
it re-targets the classic weak-BA attack at the inner session
(``<session>/wba``), offset past the certification views.

:class:`CivitEquivocatingCertifier` needs certificates for *both*
binary values: in a mixed run, each value has at least one correct
share, and ``t`` coalition shares complete the ``t+1`` quorum — a
Byzantine certifier can certify two conflicting values even though no
correct certifier could certify either.  This is why certification
alone does not provide agreement and the quorum-intersection argument
of the inner core still carries it (the ``civit-quorum-off-by-one``
mutant ablates exactly that argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversary.protocol_attacks import (
    WeakBaEquivocatingLeader,
    WeakBaSplitFinalizeLeader,
)
from repro.config import ProcessId
from repro.crypto.certificates import CertificateCollector
from repro.protocols.civit.core import (
    VIEW_ROUNDS,
    CertifiedValue,
    CivitInputShare,
    CivitSolicit,
    input_label,
    input_statement,
)
from repro.runtime.byzantine import ByzantineApi


def _harvest_certificates(
    api: ByzantineApi, session: str, view: int
) -> dict[object, CertifiedValue]:
    """Build a certificate for every value whose honest shares plus the
    coalition's own shares reach the ``t+1`` input quorum."""
    config = api.config
    quorum = config.small_quorum
    label = input_label(session)
    collectors: dict[object, CertificateCollector] = {}
    for envelope in api.inbox:
        payload = envelope.payload
        if not isinstance(payload, CivitInputShare):
            continue
        if payload.session != session or payload.view != view:
            continue
        try:
            collector = collectors.get(payload.value)
            if collector is None:
                collector = CertificateCollector(
                    api.suite, label, quorum, input_statement(payload.value)
                )
                collectors[payload.value] = collector
            collector.add(payload.partial)
        except Exception:
            continue
    certified: dict[object, CertifiedValue] = {}
    for value, collector in collectors.items():
        for accomplice in api.corrupted:
            if collector.complete:
                break
            try:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice, label, quorum, input_statement(value)
                    )
                )
            except Exception:
                continue
        if collector.complete:
            certified[value] = CertifiedValue(value).with_certificate(
                collector.certificate()
            )
    return certified


@dataclass
class CivitEquivocatingCertifier:
    """View-1 certifier that certifies *both* binary values, then runs
    the quorum-ablation equivocation inside the inner weak BA.

    ``quorum`` is the inner commit quorum the scenario runs with: under
    the paper's ``⌈(n+t+1)/2⌉`` the equivocation fizzles (one finalize
    certificate at most), under the ablated ``t+1`` agreement breaks —
    the civit twin of ``WeakBaEquivocatingLeader``'s measurement.
    """

    quorum: int
    session: str = "civit"
    num_views: int = 2
    _inner: WeakBaEquivocatingLeader | None = field(default=None, init=False)

    def step(self, api: ByzantineApi) -> None:
        if api.now == 0:
            api.broadcast(CivitSolicit(session=self.session, view=1))
        elif api.now == 2:
            certified = _harvest_certificates(api, self.session, view=1)
            if all(value in certified for value in (0, 1)):
                self._inner = WeakBaEquivocatingLeader(
                    value_a=certified[0],
                    value_b=certified[1],
                    quorum=self.quorum,
                    session=f"{self.session}/wba",
                    start_tick=VIEW_ROUNDS * self.num_views,
                )
                api.emit("civit_certifier_equivocated")
        elif self._inner is not None:
            self._inner.step(api)


@dataclass
class CivitSplitCertifier:
    """View-1 certifier that certifies the most popular harvestable
    value *privately*, then split-finalizes it to ``recipients`` inside
    the inner weak BA — the cert-dealer scenario's split leader, civit
    edition.  Because the certificate is never broadcast (and no value
    reaches ``t+1`` correct shares on its own), honest certifiers stay
    empty-handed and the victims reach the help round undecided."""

    recipients: frozenset[ProcessId]
    session: str = "civit"
    num_views: int = 4
    _inner: WeakBaSplitFinalizeLeader | None = field(default=None, init=False)

    def step(self, api: ByzantineApi) -> None:
        if api.now == 0:
            api.broadcast(CivitSolicit(session=self.session, view=1))
        elif api.now == 2:
            certified = _harvest_certificates(api, self.session, view=1)
            if certified:
                value = min(certified, key=repr)  # deterministic pick
                self._inner = WeakBaSplitFinalizeLeader(
                    value=certified[value],
                    recipients=self.recipients,
                    session=f"{self.session}/wba",
                    start_tick=VIEW_ROUNDS * self.num_views,
                )
        elif self._inner is not None:
            self._inner.step(api)
