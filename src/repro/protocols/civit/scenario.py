"""The civit backend's model-checking scenario family.

Mirrors :func:`repro.mc.scenario._weak_ba_scenario` one level up the
stack: the explored protocol is the full binary strong BA
(certification views + the shared weak-BA core + ⊥-resolution), so the
same mutation knobs (``quorum_delta``, ``echo_fallback``,
``chatty_leaders``) ablate the *inner* core while the adversaries
attack through the certification layer.  Registered under
``"civit-strong-ba"`` via the backend's ``mc_scenarios`` mapping, which
``repro.mc.scenario.make_scenario`` merges in lazily — replay artifacts
recorded against this scenario re-execute through the ordinary
``(name, params)`` path.
"""

from __future__ import annotations

from typing import Any

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import FallbackCertDealer
from repro.config import SystemConfig
from repro.errors import ModelCheckError
from repro.mc.choices import ChoiceSource, ChoiceSpace
from repro.mc.scenario import Scenario, _chatty_leaders
from repro.protocols.civit.attacks import (
    CivitEquivocatingCertifier,
    CivitSplitCertifier,
)
from repro.protocols.civit.core import (
    BINARY_VALUES,
    civit_strong_ba_protocol,
)
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation
from repro.verify.checker import Report, adaptive_word_budget, verify_run

_ADVERSARIES = (
    "none",
    "choose-silent",
    "equivocating-certifier",
    "cert-dealer",
)


def civit_strong_ba_scenario(
    *,
    n: int = 4,
    t: int | None = None,
    num_views: int | None = None,
    num_phases: int = 1,
    adversary: str = "choose-silent",
    corrupt_ticks: list[int] | tuple[int, ...] = (0,),
    input_mode: str = "binary",
    max_ticks: int = 24,
    reorder: bool = True,
    perm_cap: int = 6,
    quorum_delta: int = 0,
    echo_fallback: bool = True,
    chatty_leaders: bool = False,
    word_constant: float = 45.0,
) -> Scenario:
    """Civit binary strong BA under a bounded schedule space.

    ``adversary`` picks the corruption pattern:

    ``"none"`` / ``"choose-silent"``
        As in the weak-BA scenario (silenced identity and tick are
        choice points).
    ``"equivocating-certifier"``
        p1 — view-1 certifier *and* inner phase-1 leader — certifies
        both binary values with coalition top-up shares, then drives
        them through its weak-BA phase with the scenario's commit
        quorum (:class:`CivitEquivocatingCertifier`); ``quorum_delta``
        ablates attacker and defender symmetrically.
    ``"cert-dealer"``
        The Section-6 fallback-certificate attack retargeted at the
        inner session, ``n=7, t=3``: a split-certifier keeps the only
        completable certificate private and split-finalizes it, a
        dealer hands the fallback certificate to a chosen victim, and
        one process stays silent.

    ``input_mode="binary"`` gives correct process ``i`` input ``i % 2``
    (a genuinely mixed run); ``"unanimous"`` gives everyone ``1``.
    """
    if adversary not in _ADVERSARIES:
        raise ModelCheckError(
            f"unknown adversary {adversary!r}; known: {_ADVERSARIES}"
        )
    if adversary == "cert-dealer" and n != 7:
        raise ModelCheckError("the cert-dealer scenario is specific to n=7, t=3")
    if input_mode not in ("binary", "unanimous"):
        raise ModelCheckError(f"unknown input_mode {input_mode!r}")

    params = dict(
        n=n,
        t=t,
        num_views=num_views,
        num_phases=num_phases,
        adversary=adversary,
        corrupt_ticks=list(corrupt_ticks),
        input_mode=input_mode,
        max_ticks=max_ticks,
        reorder=reorder,
        perm_cap=perm_cap,
        quorum_delta=quorum_delta,
        echo_fallback=echo_fallback,
        chatty_leaders=chatty_leaders,
        word_constant=word_constant,
    )
    space = ChoiceSpace(reorder=reorder, perm_cap=perm_cap)
    config = SystemConfig(n=n, t=t if t is not None else (n - 1) // 2)
    views = num_views if num_views is not None else config.t + 1
    quorum = config.commit_quorum + quorum_delta

    def build(choices: ChoiceSource) -> Simulation:
        simulation = Simulation(
            config,
            seed=0,
            max_ticks=max_ticks,
            choices=choices,
            stop_on_horizon=True,
        )
        byzantine: dict[int, Any] = {}
        scheduled: list[tuple[int, int, Any]] = []
        if adversary == "choose-silent":
            pick = choices.choose("corrupt", (), n + 1)
            if pick:
                victim = pick - 1
                tick = corrupt_ticks[
                    choices.choose("corrupt-tick", (victim,), len(corrupt_ticks))
                ]
                if tick == 0:
                    byzantine[victim] = SilentBehavior()
                else:
                    scheduled.append((tick, victim, SilentBehavior()))
        elif adversary == "equivocating-certifier":
            byzantine[1] = CivitEquivocatingCertifier(
                quorum=quorum, num_views=views
            )
        elif adversary == "cert-dealer":
            victims = (0, 3)  # the processes the split leaves undecided
            victim = victims[choices.choose("deal-target", (), len(victims))]
            byzantine[1] = CivitSplitCertifier(
                recipients=frozenset({2, 4}), num_views=views
            )
            byzantine[5] = FallbackCertDealer(target=victim, session="civit/wba")
            byzantine[6] = SilentBehavior()

        for pid in config.processes:
            if pid in byzantine:
                simulation.add_byzantine(pid, byzantine[pid])
            else:
                value = pid % 2 if input_mode == "binary" else 1
                simulation.add_process(
                    pid,
                    lambda ctx, v=value: civit_strong_ba_protocol(
                        ctx,
                        v,
                        num_views=views,
                        num_phases=num_phases,
                        commit_quorum=quorum,
                        echo_fallback_certificate=echo_fallback,
                    ),
                )
        for tick, pid, behavior in scheduled:
            simulation.schedule_corruption(tick, pid, behavior)
        return simulation

    def evaluate(result: RunResult) -> Report:
        report = verify_run(
            result,
            # Binary strong BA: never ⊥, decisions stay in the domain.
            validity=lambda v: v in BINARY_VALUES,
            allow_bottom=False,
            word_budget=adaptive_word_budget(word_constant),
            check_adaptive_silence=True,
            check_fallback_sync=not result.truncated,
        )
        if result.truncated:
            report.violations = [
                v for v in report.violations if v.kind != "termination"
            ]
        return report

    return Scenario(
        name="civit-strong-ba",
        params=params,
        space=space,
        max_ticks=max_ticks,
        build=build,
        evaluate=evaluate,
        mutation=_chatty_leaders if chatty_leaders else None,
        description=(
            f"civit strong BA n={n} t={config.t} views={views} "
            f"phases={num_phases} adversary={adversary} horizon={max_ticks}"
        ),
    )
