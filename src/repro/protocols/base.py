"""The shared ``Protocol`` interface: backends as first-class objects.

A :class:`Backend` bundles one paper's protocol stack — weak BA,
strong BA, the adaptive strong-BA extension — behind a uniform surface
so every consumer in the repo (the tick simulator drivers, the asyncio
and TCP runtimes, the recovery replay registry, the model-checker
scenarios, the soak fleet, benchmarks, and the differential conformance
suite) dispatches **by backend name** instead of importing protocol
modules directly.

Two kinds of members live on a backend:

* **Drivers and factories** — ``run_*`` entry points with the repo's
  standard signature ``(config, inputs, *, seed, byzantine, params)``
  and ``*_protocol`` generator factories for runtimes that manage their
  own event loop (asyncio, TCP, MC scenario builds).
* **Envelopes and capabilities** — the facts the shared, backend-
  parametrized tests assert: word-complexity budgets, failure-free tick
  bounds, and behavioral flags where the papers genuinely differ (does
  one silent process force the quadratic fallback?).  Keeping these on
  the backend is what lets one test body serve every stack with zero
  copy-paste.

Registration is explicit: each backend module builds its ``Backend``
and calls :func:`register_backend`; ``repro.protocols`` imports the
known backend modules so ``get_backend`` works after a single
``import repro.protocols``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.config import SystemConfig
from repro.errors import ConfigurationError

ProtocolBuilder = Callable[[dict], Callable]
"""``builder(meta) -> factory``; ``factory(ctx)`` is the generator —
the shape :mod:`repro.recovery.replay` consumes."""

ScenarioFactory = Callable[..., Any]
"""A :class:`repro.mc.scenario.Scenario` factory (JSON-serializable
keyword params only)."""


@dataclass(frozen=True)
class Backend:
    """One protocol stack behind the shared Protocol API."""

    name: str
    """Registry key (``"cohen"``, ``"civit"``)."""
    title: str
    paper: str
    """Citation of the source paper this stack reproduces."""

    # -- drivers: standard ``(config, inputs, *, ...)`` entry points ----
    run_weak_ba: Callable
    run_strong_ba: Callable
    run_adaptive_strong_ba: Callable

    # -- generator factories for runtimes that own the event loop ------
    weak_ba_protocol: Callable
    strong_ba_protocol: Callable
    adaptive_strong_ba_protocol: Callable

    # -- recovery: WAL-replay builders keyed by the protocol name the
    #    run driver stamps into WAL metadata ---------------------------
    replay_builders: Mapping[str, ProtocolBuilder] = field(default_factory=dict)

    # -- model checking: scenario factories this backend contributes ---
    mc_scenarios: Mapping[str, ScenarioFactory] = field(default_factory=dict)
    mc_strong_scenario: str | None = None
    """Registry name of this backend's strong-BA mutant scenario."""

    # -- capabilities / envelopes consumed by the shared test bodies ---
    strong_ba_multivalued: bool = False
    """Whether ``run_strong_ba`` accepts non-binary inputs."""
    strong_ba_never_bottom: bool = False
    """Whether strong BA guarantees a non-``⊥`` decision in every run."""
    silent_leader_forces_fallback: bool = True
    """Does silencing one coordinator push the strong BA into its
    quadratic fallback?  True for Algorithm 5's fixed leader; False for
    a stack with rotating coordinators and an adaptive core."""
    strong_ba_degrades_quadratically: bool = True
    """Does a single silent process blow the strong-BA word bill up to
    the quadratic regime?  The headline differential between the two
    stacks — see ``benchmarks/bench_backend_adaptivity.py``."""
    weak_ba_shares_core_with: str | None = None
    """Name of the backend whose adaptive weak-BA core this stack
    reuses verbatim (``None`` = its own implementation)."""
    asba_non_silent_event: str = "asba_phase_non_silent"
    """Trace event the certification layer emits for a non-silent
    certification phase/view (distinct from the inner core's
    ``phase_non_silent`` so the adaptive-silence checker stays scoped)."""
    asba_certified_event: str = "asba_certified"
    """Trace event a process emits on adopting an input certificate."""

    strong_ba_tick_bound: Callable[[SystemConfig], int] | None = None
    """Upper bound on failure-free strong-BA ticks for ``config``."""
    strong_ba_word_budget: Callable[[SystemConfig, int], float] | None = None
    """``budget(config, f)`` — the stack's word-complexity envelope for
    a strong-BA run with ``f`` silent faults (conformance sweeps assert
    ``correct_words <= budget``)."""

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ConfigurationError(
                f"backend name must be a Python identifier, got {self.name!r}"
            )

    def describe(self) -> str:
        return f"{self.name}: {self.title} ({self.paper})"


_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register a backend under its name; re-registration must be
    idempotent (same object) — two different stacks under one name is a
    wiring bug, not a feature."""
    existing = _BACKENDS.get(backend.name)
    if existing is not None and existing is not backend:
        raise ConfigurationError(
            f"backend {backend.name!r} is already registered"
        )
    _BACKENDS[backend.name] = backend
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend names, deterministically sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name: str) -> Backend:
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown backend {name!r} (known: {list(backend_names())})"
        )
    return backend


def all_backends() -> tuple[Backend, ...]:
    return tuple(_BACKENDS[name] for name in backend_names())
