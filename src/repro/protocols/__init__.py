"""Backend registry: every protocol stack behind one Protocol API.

``import repro.protocols`` is the single switch-on point — it imports
the known backend modules (each registers itself via
:func:`~repro.protocols.base.register_backend`) and pushes their
WAL-replay builders into :mod:`repro.recovery.replay`'s protocol
registry.  Consumers that must stay importable without the backends
(``repro.recovery.replay``, ``repro.mc.scenario``) instead import this
package *lazily* on a registry miss, which breaks the would-be cycle
``protocols -> mc.scenario -> protocols``.
"""

from __future__ import annotations

from repro.protocols.base import (
    Backend,
    all_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.protocols.civit import CIVIT
from repro.protocols.cohen import COHEN

__all__ = [
    "Backend",
    "CIVIT",
    "COHEN",
    "all_backends",
    "backend_names",
    "get_backend",
    "register_backend",
]


def _wire_replay_builders() -> None:
    from repro.recovery.replay import _PROTOCOLS, register_protocol

    for backend in all_backends():
        for protocol, builder in backend.replay_builders.items():
            if _PROTOCOLS.get(protocol) is not builder:
                register_protocol(protocol, builder)


def mc_scenarios() -> dict[str, object]:
    """Every backend-contributed scenario factory, keyed by registry
    name — what :func:`repro.mc.scenario.make_scenario` merges in on a
    lookup miss."""
    merged: dict[str, object] = {}
    for backend in all_backends():
        merged.update(backend.mc_scenarios)
    return merged


_wire_replay_builders()
