"""The per-run recovery manager: one WAL per process, shared policy.

A :class:`RecoveryManager` is handed to a runtime (the tick scheduler
via :class:`~repro.config.RunParameters`, the asyncio runner directly)
and owns the durable side of every correct process in the run:

* it lazily opens one :class:`~repro.recovery.wal.ProcessWal` per pid
  under ``wal_dir`` (``p<pid>.wal`` / ``p<pid>.snap``);
* the runtimes call the ``on_*`` hooks — deliveries are logged *before*
  the protocol consumes them, send highwater marks and state-transition
  events after;
* :meth:`end_tick` flushes every dirty WAL once per round (that is the
  fsync batch) and takes periodic snapshots when ``snapshot_every`` is
  set;
* :meth:`load` / :meth:`recover` rebuild a crashed process — see
  :mod:`repro.recovery.replay` for the replay semantics.

A manager instance is bound to one run: reusing it across runs would
interleave two histories in one log.  Point a second run at the same
``wal_dir`` only through a fresh manager after the first closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.config import ProcessId
from repro.recovery.wal import FSYNC_POLICIES, ProcessHistory, ProcessWal
from repro.errors import RecoveryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.replay import ReplayReport


@dataclass
class RecoveryStats:
    """What the recovery layer did during one run (observer fodder)."""

    crashes: int = 0
    restarts: int = 0
    replayed_ticks: int = 0
    replay_seconds: float = 0.0
    snapshots: int = 0
    reports: list["ReplayReport"] = field(default_factory=list)


class RecoveryManager:
    """Durability policy + per-process WALs for one run."""

    def __init__(
        self,
        wal_dir: str | Path,
        *,
        fsync: str = "batch",
        snapshot_every: int | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise RecoveryError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise RecoveryError(
                f"snapshot_every must be >= 1 ticks, got {snapshot_every}"
            )
        self.wal_dir = Path(wal_dir)
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.stats = RecoveryStats()
        self._wals: dict[ProcessId, ProcessWal] = {}
        self._meta: dict[ProcessId, dict[str, Any]] = {}
        self._shared_meta: dict[str, Any] = {}
        self._dirty: set[ProcessId] = set()
        self._last_snapshot: dict[ProcessId, int] = {}

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    def describe(self, **meta: Any) -> None:
        """Record run-wide metadata (protocol name, inputs, seed ...)
        into every process's WAL.  Call before the run starts; offline
        replay (`repro recover replay`) needs at least ``protocol`` and
        the deployment parameters to rebuild the factory."""
        self._shared_meta.update(meta)

    def describe_process(self, pid: ProcessId, **meta: Any) -> None:
        """Per-process metadata (e.g. this replica's input value)."""
        self._meta.setdefault(pid, {}).update(meta)

    def wal_for(self, pid: ProcessId) -> ProcessWal:
        wal = self._wals.get(pid)
        if wal is None:
            wal = ProcessWal(self.wal_dir / f"p{pid}", fsync=self.fsync)
            self._wals[pid] = wal
            wal.log_meta(self._full_meta(pid))
            self._dirty.add(pid)
        return wal

    def _full_meta(self, pid: ProcessId) -> dict[str, Any]:
        meta = {"pid": pid}
        meta.update(self._shared_meta)
        meta.update(self._meta.get(pid, {}))
        return meta

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------

    def on_inbox(self, pid: ProcessId, tick: int, envelopes: list) -> None:
        if envelopes:
            self.wal_for(pid).log_inbox(tick, envelopes)
            self._dirty.add(pid)

    def on_send(self, pid: ProcessId, tick: int) -> None:
        # Highwater marks accumulate per (pid, tick); batching them into
        # one record per tick happens in the WAL (absorb() re-sums).
        self.wal_for(pid).log_sends(tick, 1)
        self._dirty.add(pid)

    def on_event(
        self, pid: ProcessId, tick: int, scope: str, name: str, data: tuple
    ) -> None:
        self.wal_for(pid).log_event(tick, scope, name, data)
        self._dirty.add(pid)

    def on_crash(self, pid: ProcessId, tick: int) -> None:
        """A process went down; its buffered-but-unflushed records are
        lost with it (exactly what write-ahead semantics promise: only
        the unflushed tail can vanish)."""
        self.stats.crashes += 1
        wal = self._wals.get(pid)
        if wal is not None:
            wal.drop_unflushed()

    def on_restart(self, pid: ProcessId, tick: int, down_since: int) -> None:
        self.stats.restarts += 1
        self.wal_for(pid).log_restart(tick, down_since)
        self.flush(pid)

    def note_replay(self, report: "ReplayReport") -> None:
        self.stats.replayed_ticks += report.ticks_replayed
        self.stats.replay_seconds += report.duration_seconds
        self.stats.reports.append(report)

    # ------------------------------------------------------------------
    # Flush / snapshot cadence
    # ------------------------------------------------------------------

    def flush(self, pid: ProcessId) -> None:
        wal = self._wals.get(pid)
        if wal is not None:
            wal.flush()
        self._dirty.discard(pid)

    def end_tick(self, tick: int) -> None:
        """Flush every dirty WAL (one fsync batch per round) and take
        periodic snapshots when configured."""
        for pid in sorted(self._dirty):
            self._wals[pid].flush()
        self._dirty.clear()
        if self.snapshot_every is None:
            return
        for pid, wal in sorted(self._wals.items()):
            last = self._last_snapshot.get(pid, 0)
            if tick - last >= self.snapshot_every:
                wal.snapshot(self._full_meta(pid))
                self._last_snapshot[pid] = tick
                self.stats.snapshots += 1

    def close(self) -> None:
        for pid in sorted(self._wals):
            self._wals[pid].close()
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Recovery-side reads
    # ------------------------------------------------------------------

    def load(self, pid: ProcessId, *, strict: bool = False) -> ProcessHistory:
        """Read ``pid``'s durable history back **from disk** — recovery
        must trust only what survived, not in-memory mirrors."""
        self.flush(pid)
        return self.wal_for(pid).load(strict=strict)

    def wal_bytes(self) -> int:
        """Total durable bytes across every process (snapshot + WAL)."""
        return sum(wal.wal_size() for wal in self._wals.values())

    def pids(self) -> list[ProcessId]:
        return sorted(self._wals)
