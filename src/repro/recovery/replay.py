"""Deterministic replay: rebuild a crashed process from its WAL.

The state machine of a correct process is a Python generator, so its
locals cannot be persisted directly.  What *can* be persisted — and what
the WAL holds — is everything the generator ever observed: the seeded
environment (``n``, ``t``, seed, pid fix the
:class:`~repro.crypto.certificates.CryptoSuite` and the per-process
``ctx.rng``) plus the per-tick inboxes.  Replay therefore re-executes
the generator over the logged inboxes with the context in *replay mode*
(:meth:`~repro.runtime.context.ProcessContext.begin_replay`): sends and
trace events are suppressed — the network already saw them — but sends
are still counted, and each tick's count is checked against the logged
sent-message highwater mark.  A mismatch means the replayed machine is
not the one that crashed (non-determinism crept in, or the WAL belongs
to a different deployment), and recovery refuses it with a
:class:`~repro.errors.RecoveryError` instead of rejoining with silently
divergent state.

Down windows replay as empty inboxes: while the process was down the
network discarded its deliveries, so an empty round is *exactly* what a
live-but-isolated process would have observed.  This keeps the
generator tick-aligned with the cluster — the property agreement hangs
on — and its send counts during those ticks are suppressed and exempt
from highwater checks (the process never sent while down).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.errors import RecoveryError
from repro.recovery.wal import ProcessHistory, load_history

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import ProcessContext


class ReplayCursor:
    """Mutable position of an in-progress replay.

    The context consults :attr:`tick` for ``ctx.now`` (protocol timers
    like "wait until ``now + 2``" must see replay time, not live time)
    and reports suppressed sends/events back through :meth:`note_send` /
    :meth:`note_event`.
    """

    def __init__(self) -> None:
        self.tick = 0
        self.sends_this_tick = 0
        self.total_sends = 0
        self.total_events = 0

    def begin_tick(self, tick: int) -> None:
        self.tick = tick
        self.sends_this_tick = 0

    def note_send(self) -> None:
        self.sends_this_tick += 1
        self.total_sends += 1

    def note_event(self) -> None:
        self.total_events += 1


@dataclass
class ReplayReport:
    """What one replay did and found."""

    pid: int
    ticks_replayed: int = 0
    sends_replayed: int = 0
    phantom_sends: int = 0
    """Sends the replayed machine attempted during down-window ticks.
    The live cluster never saw these (the process was dead), so they are
    excluded when comparing a replay against the run's word ledger."""
    events_replayed: int = 0
    decided: bool = False
    decision: Any = None
    duration_seconds: float = 0.0
    resumed_at_tick: int = 0
    down_windows: list[tuple[int, int]] = field(default_factory=list)

    def summary(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "ticks_replayed": self.ticks_replayed,
            "sends_replayed": self.sends_replayed,
            "phantom_sends": self.phantom_sends,
            "events_replayed": self.events_replayed,
            "decided": self.decided,
            "resumed_at_tick": self.resumed_at_tick,
            "duration_seconds": self.duration_seconds,
        }


def replay_generator(
    factory: Callable[["ProcessContext"], Generator[None, None, Any]],
    ctx: "ProcessContext",
    history: ProcessHistory,
    *,
    until_tick: int,
    run_on_ticks: int = 0,
) -> tuple[Generator[None, None, Any] | None, ReplayReport]:
    """Re-drive ``factory(ctx)`` through ticks ``[0, until_tick)``.

    Returns ``(generator, report)``.  The generator is positioned to be
    resumed live at ``until_tick`` (its next ``next()`` executes that
    tick), or ``None`` if the protocol returned during replay — the
    report then carries the decision.

    ``run_on_ticks`` extends the replay past ``until_tick`` with empty
    inboxes while the generator is still alive (offline replay: the
    WAL only records non-empty ticks, so a silent protocol tail — and
    the decision at its end — lies beyond ``through_tick``).  Ticks a
    process spent silent were never logged, so the highwater check
    still applies there with an expected count of zero.

    Raises :class:`~repro.errors.RecoveryError` when a tick's replayed
    send count diverges from the logged highwater mark (outside down
    windows, where no marks exist).
    """
    report = ReplayReport(pid=ctx.pid, resumed_at_tick=until_tick)
    report.down_windows = list(history.down_windows)
    cursor = ReplayCursor()
    gen = factory(ctx)
    started = time.perf_counter()
    ctx.begin_replay(cursor)
    try:
        for tick in range(until_tick + run_on_ticks):
            cursor.begin_tick(tick)
            ctx.inbox = list(history.inboxes.get(tick, []))
            try:
                next(gen)
            except StopIteration as stop:
                report.decided = True
                report.decision = stop.value
                report.ticks_replayed = tick + 1
                gen = None
                break
            if history.was_down(tick):
                report.phantom_sends += cursor.sends_this_tick
            else:
                expected = history.sends.get(tick, 0)
                if cursor.sends_this_tick != expected:
                    raise RecoveryError(
                        f"replay diverged for process {ctx.pid} at tick "
                        f"{tick}: replayed {cursor.sends_this_tick} send(s) "
                        f"but the WAL highwater mark says {expected}; "
                        f"refusing to rejoin with divergent state"
                    )
            report.ticks_replayed = tick + 1
    finally:
        ctx.end_replay()
        report.sends_replayed = cursor.total_sends
        report.events_replayed = cursor.total_events
        report.duration_seconds = time.perf_counter() - started
    return gen, report


# ----------------------------------------------------------------------
# Offline replay (``repro recover replay``): factory from WAL metadata
# ----------------------------------------------------------------------

ProtocolBuilder = Callable[[dict], Callable]
"""``builder(meta) -> factory``; ``factory(ctx)`` is the generator."""

_PROTOCOLS: dict[str, ProtocolBuilder] = {}


def register_protocol(name: str, builder: ProtocolBuilder) -> None:
    """Register a builder that reconstructs a protocol factory from the
    deployment metadata a run driver stamped into the WAL."""
    _PROTOCOLS[name] = builder


def _build_weak_ba(meta: dict) -> Callable:
    from repro.core.validity import ExternalValidity
    from repro.core.weak_ba import weak_ba_protocol

    # The live run's validity predicate is code and cannot live in the
    # WAL; offline replay substitutes accept-everything.  If the live
    # predicate ever rejected a value, the replayed send counts diverge
    # from the highwater marks and replay refuses — a loud failure, not
    # silently wrong state.
    def factory(ctx):
        return weak_ba_protocol(
            ctx,
            meta.get("input"),
            ExternalValidity(lambda value: True),
            session=meta.get("session", "wba"),
            num_phases=meta.get("num_phases"),
        )

    return factory


def _build_bb(meta: dict) -> Callable:
    from repro.core.byzantine_broadcast import byzantine_broadcast_protocol

    def factory(ctx):
        return byzantine_broadcast_protocol(
            ctx,
            meta["sender"],
            meta.get("input"),
            session=meta.get("session", "bb"),
            num_phases=meta.get("num_phases"),
        )

    return factory


def _build_strong_ba(meta: dict) -> Callable:
    from repro.core.strong_ba import strong_ba_protocol

    def factory(ctx):
        return strong_ba_protocol(
            ctx,
            meta.get("input"),
            session=meta.get("session", "sba"),
            leader=meta.get("leader", 0),
        )

    return factory


def _build_adaptive_strong_ba(meta: dict) -> Callable:
    from repro.core.adaptive_strong_ba import adaptive_strong_ba_protocol

    def factory(ctx):
        return adaptive_strong_ba_protocol(
            ctx,
            meta.get("input"),
            session=meta.get("session", "asba"),
            num_phases=meta.get("num_phases"),
        )

    return factory


register_protocol("weak_ba", _build_weak_ba)
register_protocol("bb", _build_bb)
register_protocol("strong_ba", _build_strong_ba)
register_protocol("adaptive_strong_ba", _build_adaptive_strong_ba)


def factory_from_meta(meta: dict) -> Callable:
    """Rebuild the protocol factory a WAL's ``meta`` record describes."""
    name = meta.get("protocol")
    if not name:
        raise RecoveryError(
            "WAL metadata names no protocol; cannot rebuild its state "
            "machine (was the run driver given a RecoveryManager?)"
        )
    builder = _PROTOCOLS.get(name)
    if builder is None:
        # Backend packages register their builders when repro.protocols
        # is imported; a WAL from a backend-dispatched run must replay
        # without requiring the caller to pre-import anything.  The
        # import is lazy here to keep replay importable from backend
        # modules without a cycle.
        import repro.protocols  # noqa: F401

        builder = _PROTOCOLS.get(name)
    if builder is None:
        raise RecoveryError(
            f"no replay builder registered for protocol {name!r} "
            f"(known: {sorted(_PROTOCOLS)})"
        )
    return builder(meta)


def replay_wal(
    stem: str | Path,
    *,
    factory: Callable | None = None,
    strict: bool = False,
) -> ReplayReport:
    """Offline replay of one process's durable state.

    Loads ``<stem>.snap`` + ``<stem>.wal``, rebuilds the deployment from
    the ``meta`` record (``n``, ``t``, seed fix the crypto suite and
    rngs), and re-drives the protocol through every recorded tick.  The
    returned report carries tick/send/event counts, the wall-clock
    replay duration, and the decision if the protocol completed within
    the recorded history.
    """
    history = load_history(stem, strict=strict)
    return replay_history(history, factory=factory)


RUN_ON_TICKS = 1024
"""How far offline replay drives a still-running generator past the
recorded history.  A synchronous protocol whose tail was silent (empty
inboxes are never logged) terminates within its fixed round structure;
a generator still alive after this many empty ticks genuinely never
decided within its durable state, and the report says so."""


def replay_history(
    history: ProcessHistory,
    *,
    factory: Callable | None = None,
) -> ReplayReport:
    """Replay an already-loaded :class:`ProcessHistory` offline."""
    from repro.config import SystemConfig
    from repro.runtime.context import ProcessContext
    from repro.runtime.scheduler import Simulation

    meta = history.meta
    for key in ("n", "t", "seed", "pid"):
        if key not in meta:
            raise RecoveryError(
                f"WAL metadata lacks {key!r}; cannot rebuild the deployment "
                f"(present keys: {sorted(meta)})"
            )
    config = SystemConfig(n=meta["n"], t=meta["t"])
    simulation = Simulation(config, seed=meta["seed"])
    ctx = ProcessContext(simulation, meta["pid"])
    if factory is None:
        factory = factory_from_meta(meta)
    _, report = replay_generator(
        factory,
        ctx,
        history,
        until_tick=history.through_tick + 1,
        run_on_ticks=RUN_ON_TICKS,
    )
    return report
