"""Crash recovery: write-ahead logs, snapshots, deterministic replay.

The durable layer that lets a restarting-but-honest replica rejoin a
run instead of being charged against the Byzantine budget ``t``.  See
``docs/recovery.md`` for the WAL format, the rejoin semantics, and what
the paper's model does and does not cover.
"""

from repro.recovery.manager import RecoveryManager, RecoveryStats
from repro.recovery.replay import (
    ReplayCursor,
    ReplayReport,
    factory_from_meta,
    register_protocol,
    replay_generator,
    replay_history,
    replay_wal,
)
from repro.recovery.wal import (
    FSYNC_POLICIES,
    MAX_RECORD_BYTES,
    WAL_FORMAT_VERSION,
    ProcessHistory,
    ProcessWal,
    WalDamage,
    WalScan,
    load_history,
    load_snapshot,
    load_wal,
    scan_wal,
    write_snapshot,
)

__all__ = [
    "FSYNC_POLICIES",
    "MAX_RECORD_BYTES",
    "WAL_FORMAT_VERSION",
    "ProcessHistory",
    "ProcessWal",
    "RecoveryManager",
    "RecoveryStats",
    "ReplayCursor",
    "ReplayReport",
    "WalDamage",
    "WalScan",
    "factory_from_meta",
    "load_history",
    "load_snapshot",
    "load_wal",
    "register_protocol",
    "replay_generator",
    "replay_history",
    "replay_wal",
    "scan_wal",
    "write_snapshot",
]
