"""The write-ahead log: CRC-framed, fsync-batched, snapshot-compacted.

One :class:`ProcessWal` persists everything needed to reconstruct a
protocol instance's state machine after a crash:

* a ``meta`` record — deployment parameters (``n``, ``t``, seed, pid)
  plus whatever the run driver knows about the protocol (name, input
  value, phase count), so an offline tool can rebuild the factory;
* per-tick ``inbox`` records — the envelopes delivered to the process,
  written *before* the protocol generator consumes them (that is the
  "write-ahead": a crash mid-round loses at most the round the process
  never acted on);
* per-tick ``sends`` records — the sent-message highwater marks.
  Replay re-executes the generator with sends suppressed and checks its
  send counts against these marks; a mismatch means the replayed state
  machine is **not** the one that crashed, and recovery refuses it;
* ``event`` records — protocol-state transitions (phase entries,
  acquired values and certificates, decisions) mirrored from
  :meth:`~repro.runtime.context.ProcessContext.emit`;
* ``restart`` records — rejoin markers bounding each down window, so a
  later replay knows which ticks the process never executed live.

Frame format
------------

Every record is one frame: an 8-byte header ``>II`` (body length,
CRC32 of the body) followed by the pickled body.  Pickle is safe here
for the same reason it is in the TCP transport: every endpoint is this
same trusted process; a production deployment would swap the codec.

Damage policy (the part tests/test_wal.py hammers):

* a **torn tail** — EOF in the middle of the final frame — is the
  expected signature of a crash during an append.  Scans stop at the
  last complete record and report the damage; loading tolerates it by
  default (``strict=False``).
* a **CRC mismatch** or an impossible length on a *complete* frame is
  silent corruption (bit rot, a torn write that landed mid-file).  That
  is never safe to read past — the scan stops at the last valid record
  and :func:`load_wal` raises :class:`~repro.errors.RecoveryError`
  rather than load corrupt state.

Snapshots
---------

``snapshot()`` compacts the full replay history so far into one
zlib-compressed sidecar record (``<stem>.snap``) and restarts the WAL
with a fresh ``meta`` frame.  Replay cost stays proportional to the
ticks replayed (the state machine is a generator; its inputs, not its
locals, are what can be persisted) — what snapshots bound is WAL *size*
and recovery *I/O*: the live log never grows past one snapshot interval.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import RecoveryError

_HEADER = struct.Struct(">II")

WAL_FORMAT_VERSION = 1

MAX_RECORD_BYTES = 64 * 1024 * 1024
"""Upper bound on one frame's body; a length beyond it is corruption,
not data (the largest legitimate record is one tick's inbox)."""

FSYNC_POLICIES = ("always", "batch", "never")
"""``always`` — fsync every append (durability per record, slowest);
``batch`` — fsync once per :meth:`ProcessWal.flush` (the runtimes flush
at tick boundaries, so one fsync per round; the default);
``never`` — OS-buffered writes only (fastest; a host crash may lose the
tail, a *process* crash does not)."""


def _frame(body: bytes) -> bytes:
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _encode(record: tuple) -> bytes:
    return _frame(pickle.dumps(record))


@dataclass(frozen=True)
class WalDamage:
    """Where and how a WAL stopped being readable."""

    kind: str
    """``torn-tail`` (EOF mid-frame: the crash signature, tolerated) or
    ``crc-mismatch`` / ``bad-length`` (silent corruption, never read past)."""
    offset: int
    """Byte offset of the first unreadable frame."""
    detail: str

    @property
    def tolerable(self) -> bool:
        return self.kind == "torn-tail"


@dataclass
class WalScan:
    """Every record a WAL yields before its first damage (if any)."""

    records: list[tuple] = field(default_factory=list)
    damage: WalDamage | None = None
    bytes_read: int = 0


def scan_wal(path: str | Path) -> WalScan:
    """Read records up to the first damaged frame; never raises.

    The low-level surface behind ``repro recover inspect`` — callers
    that must not load corrupt state use :func:`load_wal` instead.
    """
    scan = WalScan()
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        scan.damage = WalDamage("bad-length", 0, f"unreadable file: {exc}")
        return scan
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _HEADER.size > total:
            scan.damage = WalDamage(
                "torn-tail", offset,
                f"EOF inside a frame header at byte {offset}",
            )
            return scan
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            scan.damage = WalDamage(
                "bad-length", offset,
                f"frame at byte {offset} claims {length} bytes "
                f"(> {MAX_RECORD_BYTES}): corrupt header",
            )
            return scan
        body_start = offset + _HEADER.size
        if body_start + length > total:
            scan.damage = WalDamage(
                "torn-tail", offset,
                f"EOF inside the frame at byte {offset} "
                f"({total - body_start} of {length} body bytes present)",
            )
            return scan
        body = data[body_start : body_start + length]
        if zlib.crc32(body) != crc:
            scan.damage = WalDamage(
                "crc-mismatch", offset,
                f"frame at byte {offset} fails its CRC32 check",
            )
            return scan
        try:
            record = pickle.loads(body)
        except Exception as exc:
            scan.damage = WalDamage(
                "crc-mismatch", offset,
                f"frame at byte {offset} passes CRC but does not decode: {exc}",
            )
            return scan
        scan.records.append(record)
        offset = body_start + length
        scan.bytes_read = offset
    return scan


def load_wal(path: str | Path, *, strict: bool = False) -> WalScan:
    """Scan a WAL, refusing to pass over silent corruption.

    A torn tail (the normal crash signature) is tolerated unless
    ``strict``; every other damage kind raises
    :class:`~repro.errors.RecoveryError` naming the offset and how many
    records were recovered before it — replay stops at the last valid
    record instead of loading corrupt state.
    """
    scan = scan_wal(path)
    damage = scan.damage
    if damage is not None and (strict or not damage.tolerable):
        raise RecoveryError(
            f"{path}: {damage.kind} at byte {damage.offset} "
            f"({damage.detail}); {len(scan.records)} valid record(s) "
            f"precede the damage — refusing to load past it"
        )
    return scan


# ----------------------------------------------------------------------
# Snapshots (compacted history sidecars)
# ----------------------------------------------------------------------


def write_snapshot(path: str | Path, payload: object) -> int:
    """Atomically persist one zlib-compressed, CRC-framed snapshot.

    Written to ``<path>.tmp`` then renamed, so a crash mid-snapshot
    leaves the previous snapshot (or none) intact, never a torn one.
    Returns the snapshot's size in bytes.
    """
    body = zlib.compress(pickle.dumps(payload), level=6)
    framed = _frame(body)
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(framed)
        fh.flush()
        try:
            import os

            os.fsync(fh.fileno())
        except OSError:  # pragma: no cover - fsync-less filesystems
            pass
    tmp.replace(target)
    return len(framed)


def load_snapshot(path: str | Path) -> object:
    """Load a snapshot written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.RecoveryError` on any damage — a
    snapshot is a single frame; there is no tolerable torn tail (the
    atomic rename guarantees all-or-nothing).
    """
    data = Path(path).read_bytes()
    if len(data) < _HEADER.size:
        raise RecoveryError(f"{path}: snapshot too short to hold a frame")
    length, crc = _HEADER.unpack_from(data, 0)
    body = data[_HEADER.size : _HEADER.size + length]
    if len(body) != length:
        raise RecoveryError(f"{path}: snapshot frame truncated")
    if zlib.crc32(body) != crc:
        raise RecoveryError(f"{path}: snapshot fails its CRC32 check")
    try:
        return pickle.loads(zlib.decompress(body))
    except Exception as exc:
        raise RecoveryError(f"{path}: snapshot does not decode: {exc}") from exc


# ----------------------------------------------------------------------
# History: the merged, replayable view of snapshot + live WAL
# ----------------------------------------------------------------------


@dataclass
class ProcessHistory:
    """Everything one process's durable state says about its past."""

    meta: dict[str, Any] = field(default_factory=dict)
    inboxes: dict[int, list] = field(default_factory=dict)
    """Tick -> envelopes delivered that tick.  Missing tick = empty inbox."""
    sends: dict[int, int] = field(default_factory=dict)
    """Tick -> sent-message highwater mark (sends made during that tick)."""
    events: list[tuple] = field(default_factory=list)
    """``(tick, scope, name, data)`` protocol-state transitions."""
    down_windows: list[tuple[int, int]] = field(default_factory=list)
    """``[crash_tick, restart_tick)`` intervals the process never ran."""
    through_tick: int = -1
    """Highest tick any record covers; replay targets ``through_tick + 1``."""
    damage: WalDamage | None = None
    wal_bytes: int = 0
    snapshot_bytes: int = 0

    def total_sends(self) -> int:
        return sum(self.sends.values())

    def was_down(self, tick: int) -> bool:
        return any(lo <= tick < hi for lo, hi in self.down_windows)

    def absorb(self, records: Iterable[tuple]) -> None:
        """Fold WAL records (in append order) into this history."""
        for record in records:
            kind = record[0]
            if kind == "meta":
                self.meta.update(record[1])
            elif kind == "inbox":
                _, tick, envelopes = record
                self.inboxes[tick] = list(envelopes)
                self.through_tick = max(self.through_tick, tick)
            elif kind == "sends":
                _, tick, count = record
                self.sends[tick] = self.sends.get(tick, 0) + count
                self.through_tick = max(self.through_tick, tick)
            elif kind == "event":
                _, tick, scope, name, data = record
                self.events.append((tick, scope, name, data))
                self.through_tick = max(self.through_tick, tick)
            elif kind == "restart":
                _, restart_tick, down_since = record
                self.down_windows.append((down_since, restart_tick))
            # Unknown kinds are skipped, not fatal: a newer writer may
            # add record types an older reader can ignore.


# ----------------------------------------------------------------------
# The per-process writer
# ----------------------------------------------------------------------


class ProcessWal:
    """Durable state of one process: ``<stem>.wal`` plus ``<stem>.snap``.

    Appends buffer in memory and land on disk at :meth:`flush` (the
    runtimes flush once per tick); the ``fsync`` policy decides how hard
    each flush pushes toward the platters.
    """

    def __init__(self, stem: str | Path, *, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise RecoveryError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.stem = Path(stem)
        self.wal_path = self.stem.with_suffix(".wal")
        self.snap_path = self.stem.with_suffix(".snap")
        self.fsync = fsync
        self.bytes_written = 0
        self.records_written = 0
        self._buffer = io.BytesIO()
        self._fh = None

    # -- appending ------------------------------------------------------

    def _append(self, record: tuple) -> None:
        framed = _encode(record)
        self._buffer.write(framed)
        self.records_written += 1
        if self.fsync == "always":
            self.flush()

    def log_meta(self, meta: dict[str, Any]) -> None:
        self._append(("meta", dict(meta, wal_format=WAL_FORMAT_VERSION)))

    def log_inbox(self, tick: int, envelopes: list) -> None:
        if envelopes:
            self._append(("inbox", tick, list(envelopes)))

    def log_sends(self, tick: int, count: int) -> None:
        if count:
            self._append(("sends", tick, count))

    def log_event(self, tick: int, scope: str, name: str, data: tuple) -> None:
        self._append(("event", tick, scope, name, data))

    def log_restart(self, restart_tick: int, down_since: int) -> None:
        self._append(("restart", restart_tick, down_since))

    def flush(self) -> None:
        """Push buffered frames to the file (fsync per policy)."""
        payload = self._buffer.getvalue()
        if not payload:
            return
        if self._fh is None:
            self.wal_path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.wal_path, "ab")
        self._fh.write(payload)
        self._fh.flush()
        if self.fsync != "never":
            try:
                import os

                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - fsync-less filesystems
                pass
        self.bytes_written += len(payload)
        self._buffer = io.BytesIO()

    def drop_unflushed(self) -> int:
        """Discard buffered frames that never reached disk.

        Models the crash itself: whatever was appended since the last
        :meth:`flush` dies with the process.  Returns the byte count
        dropped so callers can report how much the crash cost."""
        lost = self._buffer.getbuffer().nbytes
        self._buffer = io.BytesIO()
        return lost

    def close(self) -> None:
        self.flush()
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- snapshots ------------------------------------------------------

    def snapshot(self, meta: dict[str, Any]) -> int:
        """Compact everything durable so far into ``<stem>.snap`` and
        restart the WAL.  Returns the snapshot size in bytes."""
        self.flush()
        history = self.load(strict=False)
        payload = {
            "meta": dict(meta, wal_format=WAL_FORMAT_VERSION),
            "inboxes": history.inboxes,
            "sends": history.sends,
            "events": history.events,
            "down_windows": history.down_windows,
            "through_tick": history.through_tick,
        }
        size = write_snapshot(self.snap_path, payload)
        # Truncate the live log: the snapshot now carries its content.
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.wal_path, "wb")
        self._buffer = io.BytesIO()
        self.bytes_written = 0
        self._append(("meta", dict(meta, snapshot_through=history.through_tick)))
        self.flush()
        return size

    # -- loading --------------------------------------------------------

    def load(self, *, strict: bool = False) -> ProcessHistory:
        """Merge snapshot (if any) and live WAL into one history."""
        return load_history(self.stem, strict=strict)

    def wal_size(self) -> int:
        """Durable bytes currently on disk (snapshot + live WAL)."""
        total = 0
        for path in (self.wal_path, self.snap_path):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total


def load_history(stem: str | Path, *, strict: bool = False) -> ProcessHistory:
    """Rebuild a :class:`ProcessHistory` from ``<stem>.snap`` + ``<stem>.wal``."""
    stem = Path(stem)
    history = ProcessHistory()
    snap_path = stem.with_suffix(".snap")
    if snap_path.exists():
        payload = load_snapshot(snap_path)
        if not isinstance(payload, dict):
            raise RecoveryError(f"{snap_path}: snapshot payload is not a mapping")
        history.meta = dict(payload.get("meta", {}))
        history.inboxes = dict(payload.get("inboxes", {}))
        history.sends = dict(payload.get("sends", {}))
        history.events = list(payload.get("events", []))
        history.down_windows = list(payload.get("down_windows", []))
        history.through_tick = int(payload.get("through_tick", -1))
        history.snapshot_bytes = snap_path.stat().st_size
    wal_path = stem.with_suffix(".wal")
    if wal_path.exists():
        scan = load_wal(wal_path, strict=strict)
        history.absorb(scan.records)
        history.damage = scan.damage
        history.wal_bytes = scan.bytes_read
    elif not snap_path.exists():
        raise RecoveryError(f"no WAL or snapshot found at {stem}.[wal|snap]")
    return history
