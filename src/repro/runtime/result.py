"""The outcome of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import ProcessId, SystemConfig
from repro.errors import AgreementViolation
from repro.metrics.words import WordLedger
from repro.runtime.trace import Trace


@dataclass
class RunResult:
    """Decisions, complexity accounting, and the full trace of a run."""

    config: SystemConfig
    decisions: dict[ProcessId, Any]
    """Return value of each *correct* process's protocol generator."""

    corrupted: frozenset[ProcessId]
    """Processes that were Byzantine at any point of the run."""

    ledger: WordLedger
    trace: Trace
    ticks: int
    halted_at: dict[ProcessId, int] = field(default_factory=dict)
    envelopes: tuple = ()
    """Raw sent envelopes (populated when the simulation was created
    with ``record_envelopes=True``)."""

    truncated: bool = False
    """The run was stopped at the ``max_ticks`` horizon instead of
    terminating (``stop_on_horizon=True``, bounded model checking).
    Safety properties are meaningful on a truncated result; termination
    is not."""

    observer: Any = None
    """The :class:`~repro.obs.observer.Observer` that watched the run
    (``None`` when the simulation ran uninstrumented).  Telemetry only —
    nothing in a result's semantics depends on it."""

    recovered: frozenset[ProcessId] = frozenset()
    """Processes that crashed, replayed their WAL, and rejoined the run.
    Disjoint from ``corrupted``: a recovered process stayed honest the
    whole time, so agreement and validity still bind it — but it does
    count toward a fault plan's ``faulty`` set for word budgets."""

    # ------------------------------------------------------------------
    # Convenience accessors used throughout tests and benchmarks
    # ------------------------------------------------------------------

    @property
    def f(self) -> int:
        """Actual number of corrupted processes in the run."""
        return len(self.corrupted)

    @property
    def correct_pids(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.corrupted]

    @property
    def correct_words(self) -> int:
        """The paper's communication-complexity measure for this run."""
        return self.ledger.correct_words

    def unanimous_decision(self) -> Any:
        """The single value all correct processes decided.

        Raises
        ------
        AgreementViolation
            If correct processes decided differently (or some did not
            decide) — callers use this as the agreement check.
        """
        values = [self.decisions.get(p, _MISSING) for p in self.correct_pids]
        if any(v is _MISSING for v in values):
            missing = [
                p for p in self.correct_pids if self.decisions.get(p, _MISSING) is _MISSING
            ]
            raise AgreementViolation(f"processes {missing} did not decide")
        first = values[0]
        for pid, value in zip(self.correct_pids, values):
            if value != first:
                raise AgreementViolation(
                    f"process {self.correct_pids[0]} decided {first!r} but "
                    f"process {pid} decided {value!r}"
                )
        return first

    def fallback_was_used(self) -> bool:
        """Whether any correct process entered a fallback execution."""
        return self.trace.any("fallback_started")


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
