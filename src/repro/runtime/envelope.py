"""Envelopes: messages in flight.

Links are *authenticated*: the receiver learns the true sender id (the
simulator stamps it; a Byzantine process cannot spoof another process's
id on the wire, matching the paper's reliable-link assumption).  Payload
authenticity beyond the channel — "this value originated at the sender"
— is the job of signatures, which Byzantine processes cannot forge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessId


@dataclass(frozen=True)
class Envelope:
    """One delivered message."""

    sender: ProcessId
    receiver: ProcessId
    payload: object
    sent_at: int
    delivered_at: int

    def __repr__(self) -> str:  # compact traces
        return (
            f"Envelope({self.sender}->{self.receiver} @{self.delivered_at}: "
            f"{type(self.payload).__name__})"
        )
