"""Envelopes: messages in flight.

Links are *authenticated*: the receiver learns the true sender id (the
simulator stamps it; a Byzantine process cannot spoof another process's
id on the wire, matching the paper's reliable-link assumption).  Payload
authenticity beyond the channel — "this value originated at the sender"
— is the job of signatures, which Byzantine processes cannot forge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessId


@dataclass(frozen=True)
class Envelope:
    """One delivered message."""

    sender: ProcessId
    receiver: ProcessId
    payload: object
    sent_at: int
    delivered_at: int

    def __repr__(self) -> str:  # compact traces
        return (
            f"Envelope({self.sender}->{self.receiver} @{self.delivered_at}: "
            f"{type(self.payload).__name__})"
        )

    def mc_key(self) -> tuple:
        """Equality-faithful key for model-checker state fingerprints.

        ``repr(payload)`` is deterministic for this repo's payloads
        (frozen dataclasses of plain values) but not cheap; an envelope
        is fingerprinted once per tick it sits in flight, so the key is
        computed once and memoized on the (frozen) instance.
        """
        key = self.__dict__.get("_mc_key")
        if key is None:
            key = (self.sender, self.receiver, self.sent_at, repr(self.payload))
            object.__setattr__(self, "_mc_key", key)
        return key
