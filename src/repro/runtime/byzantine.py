"""The interface the scheduler offers to Byzantine processes.

A Byzantine process is driven by a *behavior* object (see
:mod:`repro.adversary`) that the scheduler steps once per tick, **after**
all correct processes — together with :attr:`ByzantineApi.rushed`, this
models a rushing adversary that sees the tick's honest traffic addressed
to it before choosing its own messages.

A behavior may send arbitrary payloads to arbitrary subsets (including
nothing at all: crash/silence), sign with the corrupted process's key,
and coordinate with other corrupted processes through shared strategy
state.  It cannot forge other processes' signatures or spoof sender ids
— those guarantees live in the crypto substrate and the envelope
stamping.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Protocol

from repro.config import ProcessId, SystemConfig
from repro.crypto.certificates import CryptoSuite
from repro.crypto.keys import Signer
from repro.runtime.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.scheduler import Simulation


class ByzantineApi:
    """Per-tick view and capabilities of one corrupted process."""

    def __init__(
        self,
        simulation: "Simulation",
        pid: ProcessId,
        inbox: list[Envelope],
        rushed: list[Envelope],
    ) -> None:
        self._simulation = simulation
        self._pid = pid
        self.inbox = inbox
        """Envelopes delivered to this process this tick."""
        self.rushed = rushed
        """Envelopes honest processes sent to this process *this* tick
        (not yet formally delivered) — rushing-adversary visibility."""

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._simulation.config

    @property
    def suite(self) -> CryptoSuite:
        return self._simulation.suite

    @property
    def signer(self) -> Signer:
        """The corrupted process's own signing key (never anyone else's)."""
        return self._simulation.suite.signer(self._pid)

    @property
    def now(self) -> int:
        return self._simulation.tick

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        """The full corrupted set — Byzantine processes coordinate freely."""
        return frozenset(self._simulation.corrupted_now)

    def send(self, to: ProcessId, payload: object) -> None:
        """Send to one process (delivered next tick, like everyone else)."""
        self._simulation.enqueue_byzantine_send(self._pid, to, payload)

    def broadcast(self, payload: object) -> None:
        for to in self.config.processes:
            if to != self._pid:
                self.send(to, payload)

    def emit(self, name: str, **data: Any) -> None:
        """Trace hook for adversary diagnostics."""
        self._simulation.trace.emit(
            tick=self.now, pid=self._pid, scope="byzantine", name=name, **data
        )


class ByzantineBehavior(Protocol):
    """What the scheduler requires of a behavior object."""

    def step(self, api: ByzantineApi) -> None:
        """Act for one tick."""
        ...  # pragma: no cover
