"""Per-process execution context for correct processes.

A correct process is a generator function ``protocol(ctx)`` that:

* sends with :meth:`ProcessContext.send` / :meth:`broadcast`;
* advances one tick (= one ``delta``) with a bare ``yield``, after which
  :attr:`ProcessContext.inbox` holds the envelopes delivered this tick;
* composes sub-protocols with ``yield from`` (same context flows down);
* returns its decision.

Scopes
------
:meth:`scope` pushes a protocol-layer label (``"bb"``, ``"weak_ba"``,
``"fallback"``) onto the context; every send and event is attributed to
the current scope path, which is how the Figure 1 composition benchmark
knows which layer paid for which word.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Generator, Iterator

from repro.config import ProcessId, SystemConfig
from repro.crypto.certificates import CryptoSuite
from repro.crypto.keys import Signer
from repro.runtime.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.recovery.replay import ReplayCursor
    from repro.runtime.scheduler import Simulation


class ProcessContext:
    """Everything a correct process can see and do."""

    def __init__(self, simulation: "Simulation", pid: ProcessId) -> None:
        self._simulation = simulation
        self._pid = pid
        self._signer: Signer = simulation.suite.signer(pid)
        self._scope_stack: list[str] = []
        self._replay: "ReplayCursor | None" = None
        self.inbox: list[Envelope] = []
        self.rng = random.Random(
            (simulation.seed * 1_000_003 + pid) & 0xFFFFFFFF
        )

    # ------------------------------------------------------------------
    # Identity / environment
    # ------------------------------------------------------------------

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._simulation.config

    @property
    def suite(self) -> CryptoSuite:
        return self._simulation.suite

    @property
    def signer(self) -> Signer:
        return self._signer

    @property
    def now(self) -> int:
        """Current round (the paper's ``now``): the global tick under
        lockstep ``delta=1`` (one tick = one ``delta``), the process's
        own round index under a paced synchrony model — protocol timers
        ("wait until ``now + 2``") count rounds either way.

        During WAL replay this is the *replay cursor's* tick, so timers
        re-fire exactly as they did live."""
        if self._replay is not None:
            return self._replay.tick
        return self._simulation.process_now(self._pid)

    @property
    def scope_path(self) -> str:
        return "/".join(self._scope_stack) or "top"

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------

    def send(self, to: ProcessId, payload: object) -> None:
        """Send ``payload`` to ``to``; it is delivered next tick.

        In replay mode the send is counted against the WAL's highwater
        mark but never reaches the network — the cluster already
        received it the first time."""
        if self._replay is not None:
            if to != self._pid:  # self-delivery is free, never billed
                self._replay.note_send()
            return
        self._simulation.enqueue_send(self._pid, to, payload, self.scope_path)

    def broadcast(self, payload: object, include_self: bool = True) -> None:
        """Send ``payload`` to every process (self-delivery is free).

        The paper's "broadcast to all" includes the sender acting on its
        own message; set ``include_self=False`` where the pseudocode
        clearly excludes it.
        """
        for to in self.config.processes:
            if to == self._pid and not include_self:
                continue
            self.send(to, payload)

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------

    def emit(self, name: str, **data: Any) -> None:
        """Record a structured trace event.

        Replay suppresses emission (the live run already traced the
        event; re-emitting would double ``decided`` markers and break
        the decide-once checker) but counts it for the replay report.
        Live emits are mirrored into the process's WAL when the run has
        a recovery manager — these are the logged protocol-state
        transitions (phase entries, acquired values, certificates)."""
        if self._replay is not None:
            self._replay.note_event()
            return
        self._simulation.trace.emit(
            tick=self.now, pid=self._pid, scope=self.scope_path, name=name, **data
        )
        recovery = self._simulation.recovery
        if recovery is not None:
            recovery.on_event(
                self._pid, self.now, self.scope_path, name,
                tuple(sorted(data.items())),
            )

    # ------------------------------------------------------------------
    # Crash recovery (driven by the scheduler's restart path)
    # ------------------------------------------------------------------

    def begin_replay(self, cursor: "ReplayCursor") -> None:
        """Enter replay mode: ``now`` follows the cursor; sends and
        emits are suppressed (sends still counted for highwater
        verification)."""
        self._replay = cursor

    def end_replay(self) -> None:
        self._replay = None

    @property
    def replaying(self) -> bool:
        return self._replay is not None

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        """Attribute sends/events inside the block to protocol layer ``name``."""
        self._scope_stack.append(name)
        try:
            yield
        finally:
            self._scope_stack.pop()

    def swap_scope_stack(self, stack: list[str]) -> list[str]:
        """Swap in another scope stack, returning the previous one.

        Used by :func:`repro.runtime.concurrency.join` to keep the scope
        attribution of interleaved sub-protocols from contaminating each
        other: each branch's stack is saved when it yields and restored
        before it is resumed.
        """
        previous = self._scope_stack
        self._scope_stack = stack
        return previous

    # ------------------------------------------------------------------
    # Waiting helpers (sub-generators; use with ``yield from``)
    # ------------------------------------------------------------------

    def sleep(self, ticks: int) -> Generator[None, None, list[Envelope]]:
        """Wait ``ticks`` ticks; return all envelopes delivered meanwhile."""
        collected: list[Envelope] = []
        for _ in range(ticks):
            yield
            collected.extend(self.inbox)
        return collected

    def next_round(self) -> Generator[None, None, list[Envelope]]:
        """Advance one synchronous round (= one tick = one ``delta``)."""
        return (yield from self.sleep(1))
