"""Round-level concurrency: run several sub-protocols in lockstep.

:func:`join` interleaves protocol generators over one context: every
tick, each still-running branch is advanced by one ``yield``.  All
branches observe the same ``ctx.inbox``; because the protocols consume
messages through session-tagged :class:`~repro.runtime.pool.MessagePool`
filters, each branch simply ignores the others' traffic.  Requirements:

* branches must use **distinct sessions** (message tags must not
  collide — certificates are already session-bound, so cross-branch
  forgery is impossible either way);
* branches must be pool-based in the standard style (every protocol in
  this library is);
* branches advance exactly one round per ``join`` round, so a branch's
  internal round schedule is preserved relative to the shared clock.

Scope attribution stays correct: each branch's scope stack is swapped
in before it is resumed and parked when it yields, so interleaved
``with ctx.scope(...)`` blocks do not contaminate each other.

The flagship use is slot pipelining in the SMR app
(:mod:`repro.apps.pipelined`): ``k`` Byzantine-Broadcast slots in
flight at once divide the log's per-slot latency by ``k`` without
touching the protocol code.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.runtime.context import ProcessContext

_PENDING = object()


def join(
    ctx: ProcessContext,
    branches: Sequence[Generator[None, None, Any]],
) -> Generator[None, None, list[Any]]:
    """Run ``branches`` concurrently; return their results in order.

    Each round, every unfinished branch is advanced once; the joint
    generator then yields once.  Finished branches keep their return
    values; the join returns when the last branch finishes.
    """
    results: list[Any] = [_PENDING] * len(branches)
    stacks: list[list[str]] = [list() for _ in branches]
    base_stack = ctx.swap_scope_stack(list())
    ctx.swap_scope_stack(base_stack)

    while any(r is _PENDING for r in results):
        for index, branch in enumerate(branches):
            if results[index] is not _PENDING:
                continue
            previous = ctx.swap_scope_stack(
                list(base_stack) + stacks[index]
            )
            try:
                next(branch)
                # Park this branch's scope additions for its next turn.
                full = ctx.swap_scope_stack(previous)
                stacks[index] = full[len(base_stack):]
            except StopIteration as stop:
                ctx.swap_scope_stack(previous)
                results[index] = stop.value
        if any(r is _PENDING for r in results):
            yield
    return list(results)
