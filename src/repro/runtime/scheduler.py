"""The tick-based scheduler.

Execution model per tick ``T`` (the historical lockstep ``delta=1``
model, :data:`~repro.runtime.synchrony.LOCKSTEP`):

1. scheduled mid-run corruptions for ``T`` are applied (the adaptive
   adversary of Section 2);
2. envelopes sent at ``T - 1`` are delivered;
3. correct processes are resumed (in pid order) with their deliveries;
   sends they make are stamped ``sent_at = T`` and due at ``T + 1``;
4. Byzantine behaviors are stepped, seeing both their deliveries and the
   honest messages addressed to them that were sent *this* tick
   (rushing);
5. the tick counter advances.

Under any other :class:`~repro.runtime.synchrony.SynchronyModel` the
scheduler runs **paced**: delivery ticks come from the model (``delta``
bounds, or GST partial synchrony with adversarial pre-GST delays), and
correct processes are resumed not every tick but when the shared
:class:`_RoundClock` ends the round — by **certificate** (a quorum of
distinct senders reached some correct process) or by **timeout**
(exponential back-off on late traffic), whichever first; each process
resumes at the advance tick plus its bounded clock drift.  ``ctx.now``
then counts *rounds*, not ticks, so protocol timers written in round
units ("wait until ``now + 2``") keep their meaning.  Byzantine
behaviors still step every tick — the adversary is never slowed by
honest clocks.

The run ends when every correct process's generator has returned; the
generators' return values are the decisions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.config import ProcessId, SystemConfig, derive_rng
from repro.crypto.certificates import CryptoSuite
from repro.errors import SchedulerError, TerminationViolation
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.words import WordLedger
from repro.obs.observer import Observer, active_or_none
from repro.runtime.byzantine import ByzantineApi, ByzantineBehavior
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.result import RunResult
from repro.runtime.synchrony import LOCKSTEP, SynchronyModel
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via repro.mc
    from repro.mc.choices import ChoiceSource
    from repro.recovery.manager import RecoveryManager

ProtocolFactory = Callable[[ProcessContext], Generator[None, None, Any]]
"""A correct process: ``factory(ctx)`` returns the protocol generator."""

TickHook = Callable[["Simulation", dict[ProcessId, list[Envelope]]], None]
"""Model-checker instrumentation: called once per tick, after inboxes
are assembled and before any process is resumed, with the simulation
and this tick's inbox map.  Raising aborts the run (the explorer's
state-fingerprint pruning does exactly that)."""


class _RoundClock:
    """The shared round clock of a paced run (one per simulation).

    Correct processes advance rounds *together*: a round ends when any
    correct process assembles a quorum certificate (``n - t`` distinct
    senders — the network-layer idealization of the certificate gossip
    real view synchronizers broadcast, see docs/partial_synchrony.md) or
    when the shared per-round timeout fires.  The timeout escalates
    (``backoff``, capped) on rounds that saw traffic but no certificate
    — the network is slower than the current estimate — and resets to
    base on certificate progress; silent rounds (no traffic at all) are
    protocol sleep and keep the estimate.  Sharing the clock is what
    makes honest clocks bounded-drift in the DLS sense: traffic-local
    timeout state would amount to unbounded clock drift and desyncs the
    paper's round-indexed phase schedules even *after* GST.
    """

    __slots__ = ("round", "started_at", "timeout", "retries", "launched")

    def __init__(self, timeout: int) -> None:
        self.round = 0
        self.started_at = 0
        self.timeout = timeout
        self.retries = 0
        self.launched = False

    def fingerprint(self) -> tuple:
        return (
            self.round,
            self.started_at,
            self.timeout,
            self.retries,
            self.launched,
        )


class _ProcessPacer:
    """Per-process paced-run state.

    ``buffer`` accumulates ``(delivered_tick, sub_delta_delay,
    envelope)`` entries between resumes; on resume it becomes the
    round's inbox.  ``resume_at`` is the tick this process actually
    resumes the clock's current round (the shared advance tick plus its
    bounded clock drift); ``None`` once resumed.  ``round`` is the last
    round the process resumed — what :attr:`ProcessContext.now`
    reports, so protocols keep counting in round units.
    """

    __slots__ = ("round", "resume_at", "buffer")

    def __init__(self) -> None:
        self.round = 0
        self.resume_at: int | None = 0
        self.buffer: list[tuple[int, float, Envelope]] = []

    def fingerprint(self) -> tuple:
        return (
            self.round,
            self.resume_at,
            tuple(sorted(
                (tick, delay, envelope.mc_key())
                for tick, delay, envelope in self.buffer
            )),
        )


class Simulation:
    """One configured run of a protocol over the synchronous network."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        seed: int = 0,
        suite: CryptoSuite | None = None,
        max_ticks: int = 100_000,
        record_envelopes: bool = False,
        inbox_order: str = "sender",
        fault_plan: FaultPlan | None = None,
        choices: "ChoiceSource | None" = None,
        stop_on_horizon: bool = False,
        observer: Observer | None = None,
        recovery: "RecoveryManager | None" = None,
        synchrony: SynchronyModel | None = None,
    ) -> None:
        """``inbox_order``: ``"sender"`` (default) delivers each tick's
        inbox sorted by sender id; ``"random"`` applies a seeded shuffle
        instead — the synchronous model allows any within-``delta``
        ordering, so protocols must not depend on it (stress knob for
        tests).

        ``fault_plan``: a seeded :class:`~repro.faults.plan.FaultPlan`
        applied to every send (drops, duplicates, sub-``delta`` delays,
        inbox reordering).  It generalizes ``inbox_order`` and takes
        precedence over it when given; sub-``delta`` delays manifest as
        inbox position, the only observable a bounded delay has in the
        tick world.

        ``choices``: a :class:`~repro.mc.choices.ChoiceSource` drawing
        every open decision — per-message fault verdicts and correct
        processes' inbox orders — from an explicit decision stream
        (model checking).  Mutually exclusive with ``fault_plan`` and
        ``inbox_order="random"``: a checked run's nondeterminism must
        have exactly one owner.

        ``stop_on_horizon``: instead of raising
        :class:`~repro.errors.TerminationViolation` when the run
        exceeds ``max_ticks``, stop and return a
        :class:`~repro.runtime.result.RunResult` with
        ``truncated=True`` — bounded model checking verifies safety on
        such runs and claims termination only for complete ones.

        ``observer``: an :class:`~repro.obs.observer.Observer` fed with
        per-tick, per-send, and per-fault telemetry.  Observers record;
        they never steer — the run's outcome, trace, and model-checking
        fingerprints are identical with or without one.  A disabled
        (:class:`~repro.obs.observer.NullObserver`) observer collapses
        to the uninstrumented fast path here.

        ``recovery``: a :class:`~repro.recovery.manager.RecoveryManager`
        giving every correct process a write-ahead log (per-tick
        inboxes written before consumption, send highwater marks,
        mirrored trace events).  Required when ``fault_plan`` schedules
        crash/restart faults: a crashed process's generator is
        discarded, deliveries inside its down window are lost, and at
        the restart tick the process is rebuilt by replaying its WAL
        (:func:`~repro.recovery.replay.replay_generator`) and rejoins
        tick-aligned.

        ``synchrony``: the :class:`~repro.runtime.synchrony.SynchronyModel`
        governing delivery ticks and round advancement.  ``None`` (and
        ``Lockstep(delta=1)``) is the historical lockstep scheduler,
        byte-identical; any other model runs the paced execution model
        (module docstring).  Mutually exclusive with ``recovery``: WAL
        replay is tick-aligned and paced rounds are not."""
        if type(seed) is not int:
            raise SchedulerError(
                f"seed must be an int, got {type(seed).__name__} {seed!r}"
            )
        if max_ticks < 1:
            raise SchedulerError(f"max_ticks must be >= 1, got {max_ticks}")
        self.config = config
        self.seed = seed
        self.suite = suite if suite is not None else CryptoSuite(config, seed=seed)
        self.max_ticks = max_ticks
        self.ledger = WordLedger()
        self.trace = Trace()
        self.record_envelopes = record_envelopes
        self.envelopes: list[Envelope] = []
        """Every sent envelope, when ``record_envelopes`` is on — the raw
        material for message-flow analysis (:mod:`repro.analysis.flows`)."""
        if inbox_order not in ("sender", "random"):
            raise SchedulerError(
                f"inbox_order must be 'sender' or 'random', got {inbox_order!r}"
            )
        self.inbox_order = inbox_order
        self._inbox_rng = derive_rng(seed, 0x1B0C)
        if choices is not None and (fault_plan is not None or inbox_order == "random"):
            raise SchedulerError(
                "choices is mutually exclusive with fault_plan / "
                "inbox_order='random': one owner per run's nondeterminism"
            )
        self.fault_plan = fault_plan
        self.choices = choices
        if choices is not None:
            self._injector = FaultInjector(None, choices=choices)
        elif fault_plan is not None:
            self._injector = FaultInjector(fault_plan)
        else:
            self._injector = None
        self.stop_on_horizon = stop_on_horizon
        self.synchrony = synchrony if synchrony is not None else LOCKSTEP
        if not isinstance(self.synchrony, SynchronyModel):
            raise SchedulerError(
                f"synchrony must be a SynchronyModel, got "
                f"{type(self.synchrony).__name__}"
            )
        self._paced = not self.synchrony.trivial
        self._clock: _RoundClock | None = (
            _RoundClock(self.synchrony.timeout_base()) if self._paced else None
        )
        self._pacers: dict[ProcessId, _ProcessPacer] = {}
        self._sent_now: dict[ProcessId, list[Envelope]] = {}
        """Paced-mode rushing view: this tick's on-the-wire sends by
        receiver (the wheel slot ``tick + 1`` no longer holds them)."""
        self._sync_seq: dict[tuple[ProcessId, ProcessId], int] = {}
        """Per-tick, per-edge send counter for the synchrony model's
        seeded/choice-point delivery draws (cleared every tick, so the
        draw coordinates ``(sender, receiver, tick, seq)`` stay pure)."""
        if self._paced and recovery is not None:
            raise SchedulerError(
                "crash recovery requires the lockstep delta=1 model: WAL "
                "replay is tick-aligned, paced rounds are not (run "
                "recovery scenarios under the default synchrony)"
            )
        self.recovery = recovery
        if fault_plan is not None and fault_plan.crashes and recovery is None:
            raise SchedulerError(
                "the fault plan schedules crash/restart faults but the "
                "simulation has no RecoveryManager: a crashed process can "
                "only rejoin by replaying durable state (pass recovery=...)"
            )
        if choices is not None and recovery is not None:
            raise SchedulerError(
                "recovery is not supported under a ChoiceSource: model-"
                "checked runs must stay free of filesystem effects"
            )
        self.observer = active_or_none(observer)
        self.tick_hook: TickHook | None = None
        self.tick = 0
        self._factories: dict[ProcessId, ProtocolFactory] = {}
        self._behaviors: dict[ProcessId, ByzantineBehavior] = {}
        self._scheduled_corruptions: dict[int, list[tuple[ProcessId, ByzantineBehavior]]] = {}
        self._due: dict[int, dict[ProcessId, list[tuple[float, Envelope]]]] = {}
        """Slotted delivery wheel: tick -> receiver -> ``(sub-delta
        delay, envelope)`` pairs.  The delay (a fraction of ``delta``)
        only influences inbox position, never the delivery tick.
        Receivers appear in first-send order and each bucket preserves
        send order, so the wheel reproduces byte-for-byte the inboxes
        the old flat per-tick scan produced (the seeded equivalence
        property in ``test_scheduler_properties.py`` pins this)."""
        self._seq = 0
        self._started = False
        self.corrupted_now: set[ProcessId] = set()
        self._decisions: dict[ProcessId, Any] = {}
        self._halted_at: dict[ProcessId, int] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add_process(self, pid: ProcessId, factory: ProtocolFactory) -> None:
        """Register a correct process running ``factory(ctx)``."""
        self._check_unregistered(pid)
        self._factories[pid] = factory

    def add_byzantine(self, pid: ProcessId, behavior: ByzantineBehavior) -> None:
        """Register a process corrupted from the start."""
        self._check_unregistered(pid)
        self._behaviors[pid] = behavior
        self.corrupted_now.add(pid)

    def schedule_corruption(
        self, tick: int, pid: ProcessId, behavior: ByzantineBehavior
    ) -> None:
        """Adaptive adversary: corrupt ``pid`` at the start of ``tick``.

        ``pid`` must have been registered as a correct process; from
        ``tick`` on, its generator is discarded and ``behavior`` acts.
        """
        if tick < 0:
            raise SchedulerError(f"corruption tick must be >= 0, got {tick}")
        self._scheduled_corruptions.setdefault(tick, []).append((pid, behavior))

    def _check_unregistered(self, pid: ProcessId) -> None:
        if pid in self._factories or pid in self._behaviors:
            raise SchedulerError(f"process {pid} registered twice")
        if pid not in self.config.processes:
            raise SchedulerError(
                f"process {pid} outside configured range 0..{self.config.n - 1}"
            )

    # ------------------------------------------------------------------
    # Sending (called by contexts / byzantine api)
    # ------------------------------------------------------------------

    def enqueue_send(
        self, sender: ProcessId, to: ProcessId, payload: object, scope: str
    ) -> None:
        self._enqueue(sender, to, payload, scope=scope, sender_correct=True)

    def enqueue_byzantine_send(
        self, sender: ProcessId, to: ProcessId, payload: object
    ) -> None:
        self._enqueue(sender, to, payload, scope="byzantine", sender_correct=False)

    def _enqueue(
        self,
        sender: ProcessId,
        to: ProcessId,
        payload: object,
        *,
        scope: str,
        sender_correct: bool,
    ) -> None:
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        if not self._paced:
            # Historical fast path: lockstep delta=1 delivers next tick.
            delivered_at = self.tick + 1
        else:
            edge = (sender, to)
            seq = self._sync_seq.get(edge, 0)
            self._sync_seq[edge] = seq + 1
            delivered_at = self.synchrony.delivery_tick(
                sender, to, self.tick, seq, chooser=self.choices
            )
            if delivered_at <= self.tick:
                raise SchedulerError(
                    f"synchrony model {self.synchrony.describe()} scheduled "
                    f"delivery at {delivered_at} <= send tick {self.tick}"
                )
        envelope = Envelope(
            sender=sender,
            receiver=to,
            payload=payload,
            sent_at=self.tick,
            delivered_at=delivered_at,
        )
        record = self.ledger.record(
            tick=self.tick,
            sender=sender,
            receiver=to,
            payload=payload,
            scope=scope,
            sender_correct=sender_correct,
        )
        obs = self.observer
        if obs is not None and record is not None:
            obs.on_send(record)
        if sender_correct and record is not None and self.recovery is not None:
            # Highwater marks count billed (network) sends only: free
            # self-deliveries would desync replay from the word ledger.
            self.recovery.on_send(sender, self.tick)
        if self._injector is None:
            copies = [0.0]
        else:  # the ledger bills the *send*; faults act on the wire
            copies = self._injector.copies(sender, to, self.tick, payload=payload)
            if obs is not None:
                if not copies:
                    obs.on_fault("dropped")
                else:
                    if len(copies) > 1:
                        obs.on_fault("duplicated", len(copies) - 1)
                    if any(delay > 0 for delay in copies):
                        obs.on_fault("delayed")
        if copies:
            self._slot_copies(envelope, copies)
        if self.record_envelopes:
            self.envelopes.append(envelope)
        self._seq += 1

    # The three wheel accessors below are override points: the scheduler
    # equivalence tests subclass Simulation with the historical flat
    # per-tick list to prove the slotted wheel is observationally
    # identical.

    def _slot_copies(self, envelope: Envelope, copies: list[float]) -> None:
        """File an envelope's wire copies into the delivery wheel.

        The slot is the envelope's synchrony-resolved ``delivered_at``
        (``tick + 1`` under the default model — the historical scheduler
        hardcoded that constant here).  All copies of one send share its
        delivery tick; a :class:`~repro.faults.plan.FaultDecision`'s
        ``delay`` stays what it always was, a sub-``delta`` fraction
        observable only as inbox position within the delivery round.
        """
        slot = self._due.get(envelope.delivered_at)
        if slot is None:
            slot = self._due[envelope.delivered_at] = {}
        bucket = slot.get(envelope.receiver)
        if bucket is None:
            bucket = slot[envelope.receiver] = []
        for delay in copies:
            bucket.append((delay, envelope))
        if self._paced and envelope.sender != envelope.receiver:
            self._sent_now.setdefault(envelope.receiver, []).append(envelope)

    def _pending_at(
        self, tick: int, down: dict[ProcessId, int]
    ) -> dict[ProcessId, list[tuple[float, Envelope]]]:
        """Pop tick ``tick``'s deliveries, grouped by receiver.

        A down process's deliveries are lost, not queued.
        """
        pending = self._due.pop(tick, {})
        if down:
            for pid in down:
                pending.pop(pid, None)
        return pending

    def _rushed_to(self, pid: ProcessId) -> list[Envelope]:
        """Messages sent *this* tick to ``pid`` (Byzantine rushing)."""
        if self._paced:
            # Sends scatter across future wheel slots under a paced
            # model; the per-tick side record is the rushing view.
            return list(self._sent_now.get(pid, ()))
        slot = self._due.get(self.tick + 1)
        if not slot:
            return []
        bucket = slot.get(pid)
        if not bucket:
            return []
        return [e for _, e in bucket]

    # ------------------------------------------------------------------
    # Paced rounds (non-trivial synchrony models)
    # ------------------------------------------------------------------

    def process_now(self, pid: ProcessId) -> int:
        """What ``ctx.now`` reports for ``pid``: the global tick under
        lockstep ``delta=1``, the process's *round index* under a paced
        model — so protocol timers written in round units ("wait until
        ``now + 2``") keep their meaning when rounds span many ticks."""
        if not self._paced:
            return self.tick
        pacer = self._pacers.get(pid)
        return pacer.round if pacer is not None else self.tick

    def pacer_fingerprint(self) -> tuple:
        """Paced-round state for model-checking state digests: ``()``
        under the trivial model (where the digest's existing components
        already capture everything)."""
        if not self._paced:
            return ()
        assert self._clock is not None
        return (
            self._clock.fingerprint(),
            tuple(sorted(
                (pid, pacer.fingerprint()) for pid, pacer in self._pacers.items()
            )),
        )

    def _clock_advance_reason(self) -> str | None:
        """Why the shared round ends this tick, or ``None`` to keep
        waiting: ``"start"`` (tick 0), ``"certificate"`` (some live
        correct process holds a quorum of distinct senders in its
        current-round buffer), ``"timeout"`` (the shared per-round
        timeout expired).  The clock never advances while a drifted
        process still owes a resume of the current round — a
        certificate presupposes current-round participation."""
        clock = self._clock
        assert clock is not None
        if not clock.launched:
            return "start"
        if any(p.resume_at is not None for p in self._pacers.values()):
            return None
        if self.synchrony.early_advance:
            quorum = self.config.n - self.config.t
            for pacer in self._pacers.values():
                senders = {envelope.sender for _, _, envelope in pacer.buffer}
                if len(senders) >= quorum:
                    return "certificate"
        if self.tick >= clock.started_at + clock.timeout:
            return "timeout"
        return None

    def _clock_advance(self, reason: str) -> None:
        """End the shared round for ``reason``: bump the clock, adjust
        the timeout estimate, and schedule every live correct process's
        resume at ``tick + drift`` (bounded clock skew)."""
        clock = self._clock
        assert clock is not None
        obs = self.observer
        if reason == "start":
            clock.launched = True
        else:
            prev_started_at = clock.started_at
            clock.round += 1
            if reason == "certificate":
                # PBFT-style: progress proves the timeout estimate is
                # adequate again, so the back-off resets.
                clock.timeout = self.synchrony.timeout_base()
                if obs is not None:
                    obs.count("sync.cert_advance")
            else:
                # Escalate only on evidence the network outpaces the
                # round length: a buffered envelope sent before the
                # *previous* round began took more than a full round to
                # arrive.  (Sent-last-round arrivals are the normal
                # cross-boundary case; silent rounds are protocol
                # sleep.)  Lockstep's next_timeout is the identity, so
                # delta>1 lockstep pacing never drifts from delta.
                late = any(
                    envelope.sent_at < prev_started_at
                    for pacer in self._pacers.values()
                    for _, _, envelope in pacer.buffer
                )
                if late:
                    clock.retries += 1
                    clock.timeout = self.synchrony.next_timeout(clock.timeout)
                    if obs is not None:
                        obs.count("sync.round_retries")
                if obs is not None:
                    obs.count("sync.timeout_fired")
            if obs is not None:
                obs.event(
                    "round_advanced", tick=self.tick, round=clock.round,
                    reason=reason, timeout=clock.timeout,
                )
        clock.started_at = self.tick
        for pid, pacer in self._pacers.items():
            pacer.resume_at = self.tick + self.synchrony.drift_for(
                pid, clock.round
            )

    def _paced_inbox(self, pid: ProcessId) -> list[Envelope]:
        """Drain ``pid``'s buffer into the new round's inbox
        (deterministically ordered, then fault-plan / choice-source
        reordered exactly like a lockstep inbox)."""
        pacer = self._pacers[pid]
        assert self._clock is not None
        pacer.round = self._clock.round
        pacer.resume_at = None
        entries = pacer.buffer
        pacer.buffer = []
        entries.sort(key=lambda e: (e[0], e[1], e[2].sender))
        inbox = [envelope for _, _, envelope in entries]
        if self.choices is not None:
            return self.choices.order_inbox(pid, self.tick, inbox)
        if self._injector is not None:
            return self._injector.plan.maybe_shuffle(pid, self.tick, inbox)
        if self.inbox_order == "random":
            self._inbox_rng.shuffle(inbox)
        return inbox

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the run to completion and return its result."""
        if self._started:
            raise SchedulerError("a Simulation can only be run once")
        self._started = True
        self._validate_population()

        contexts: dict[ProcessId, ProcessContext] = {}
        generators: dict[ProcessId, Generator[None, None, Any]] = {}
        for pid, factory in self._factories.items():
            ctx = ProcessContext(self, pid)
            contexts[pid] = ctx
            generators[pid] = factory(ctx)
            if self._paced:
                self._pacers[pid] = _ProcessPacer()

        decisions: dict[ProcessId, Any] = {}
        halted_at: dict[ProcessId, int] = {}
        # Shared with tick hooks: fingerprinting needs the decided-so-far
        # view, which otherwise lives only in these locals.
        self._decisions = decisions
        self._halted_at = halted_at
        ever_corrupted: set[ProcessId] = set(self.corrupted_now)
        ever_recovered: set[ProcessId] = set()
        down: dict[ProcessId, int] = {}
        """Crashed-but-honest pids -> tick their down window opened."""
        truncated = False

        if self.recovery is not None:
            self.recovery.describe(
                n=self.config.n, t=self.config.t, seed=self.seed
            )

        while generators or down:
            if self.observer is not None:
                self.observer.on_tick(self.tick)
            if self.tick > self.max_ticks:
                if self.stop_on_horizon:
                    truncated = True
                    break
                raise TerminationViolation(
                    f"run exceeded max_ticks={self.max_ticks}; "
                    f"{sorted(generators)} never decided"
                )

            if self._paced:
                self._sent_now.clear()
                self._sync_seq.clear()

            for pid, behavior in self._scheduled_corruptions.pop(self.tick, []):
                if pid in generators:
                    generators.pop(pid)
                    contexts.pop(pid)
                    self._pacers.pop(pid, None)
                if pid not in self._behaviors:
                    self._behaviors[pid] = behavior
                    self.corrupted_now.add(pid)
                    ever_corrupted.add(pid)
                    self.trace.emit(
                        tick=self.tick,
                        pid=pid,
                        scope="adversary",
                        name="corrupted",
                    )
                    if self.observer is not None:
                        self.observer.event("corrupted", pid=pid, tick=self.tick)

            # Restarts fire before crashes so a window closing exactly
            # where the next one opens rejoins (then re-crashes) cleanly.
            if self.fault_plan is not None and self.fault_plan.crashes:
                for crash in self.fault_plan.restart_at(self.tick):
                    if crash.pid not in down:
                        continue
                    gen, ctx, report = self._restart_process(
                        crash.pid, down.pop(crash.pid)
                    )
                    ever_recovered.add(crash.pid)
                    if report.decided:
                        decisions[crash.pid] = report.decision
                        halted_at[crash.pid] = self.tick
                        if self.observer is not None:
                            self.observer.event(
                                "decided", pid=crash.pid, tick=self.tick
                            )
                    else:
                        generators[crash.pid] = gen
                        contexts[crash.pid] = ctx
                for crash in self.fault_plan.crash_at(self.tick):
                    if crash.pid not in generators:
                        continue  # already decided, corrupted, or down
                    generators.pop(crash.pid)
                    contexts.pop(crash.pid)
                    down[crash.pid] = self.tick
                    self.recovery.on_crash(crash.pid, self.tick)
                    self.trace.emit(
                        tick=self.tick, pid=crash.pid, scope="faults",
                        name="crashed",
                    )
                    if self.observer is not None:
                        self.observer.event(
                            "crashed", pid=crash.pid, tick=self.tick
                        )
                        self.observer.on_recovery("crash")

            pending = self._pending_at(self.tick, down)
            inboxes: dict[ProcessId, list[Envelope]] = {}
            resuming: list[ProcessId] | None = None
            if self._paced:
                # Deliveries land in per-process buffers; the shared
                # round clock ends rounds by certificate or timeout, not
                # at the tick boundary, and each process resumes at the
                # advance tick plus its bounded clock drift.  Byzantine
                # inboxes stay per-tick: the adversary's view is never
                # paced by honest clocks.
                for pid, entries in pending.items():
                    pacer = self._pacers.get(pid)
                    if pacer is not None:
                        pacer.buffer.extend(
                            (self.tick, delay, envelope)
                            for delay, envelope in entries
                        )
                    elif pid in self._behaviors:
                        entries.sort(key=lambda de: (de[0], de[1].sender))
                        inboxes[pid] = [e for _, e in entries]
                if generators:
                    reason = self._clock_advance_reason()
                    if reason is not None:
                        self._clock_advance(reason)
                resuming = []
                for pid in sorted(generators):
                    pacer = self._pacers[pid]
                    if pacer.resume_at is not None and self.tick >= pacer.resume_at:
                        inboxes[pid] = self._paced_inbox(pid)
                        resuming.append(pid)
            else:
                for pid, entries in pending.items():
                    if self.choices is not None:
                        # Canonicalize (delay, then sender), then let the
                        # decision stream pick among the offered orderings.
                        # Byzantine inboxes stay canonical: the adversary
                        # sees everything anyway, so its perceived order is
                        # not part of the correctness space.
                        entries.sort(key=lambda de: (de[0], de[1].sender))
                        inbox = [e for _, e in entries]
                        if pid not in self._behaviors:
                            inbox = self.choices.order_inbox(pid, self.tick, inbox)
                        inboxes[pid] = inbox
                    elif self._injector is not None:
                        # Delayed copies land later in the inbox; the plan's
                        # seeded reorder may then scramble the whole round.
                        entries.sort(key=lambda de: (de[0], de[1].sender))
                        inboxes[pid] = self._injector.plan.maybe_shuffle(
                            pid, self.tick, [e for _, e in entries]
                        )
                    elif self.inbox_order == "random":
                        inbox = [e for _, e in entries]
                        self._inbox_rng.shuffle(inbox)
                        inboxes[pid] = inbox
                    else:
                        inboxes[pid] = [
                            e for _, e in sorted(entries, key=lambda de: de[1].sender)
                        ]

            if self.tick_hook is not None:
                self.tick_hook(self, inboxes)

            for pid in (resuming if resuming is not None else sorted(generators)):
                ctx = contexts[pid]
                ctx.inbox = inboxes.get(pid, [])
                if self.recovery is not None:
                    # Write-ahead: the inbox is durable before the
                    # protocol acts on it.
                    self.recovery.on_inbox(pid, self.tick, ctx.inbox)
                try:
                    next(generators[pid])
                except StopIteration as stop:
                    decisions[pid] = stop.value
                    halted_at[pid] = self.tick
                    del generators[pid]
                    del contexts[pid]
                    self._pacers.pop(pid, None)
                    if self.observer is not None:
                        self.observer.event("decided", pid=pid, tick=self.tick)

            if generators:  # adversary acts only while the run is live
                for pid in sorted(self._behaviors):
                    api = ByzantineApi(
                        simulation=self,
                        pid=pid,
                        inbox=inboxes.get(pid, []),
                        rushed=[
                            e
                            for e in self._rushed_to(pid)
                            if e.sender not in self.corrupted_now
                        ],
                    )
                    self._behaviors[pid].step(api)

            if self.recovery is not None:
                self.recovery.end_tick(self.tick)
            self.tick += 1

        if self.recovery is not None:
            self.recovery.close()
            if self.observer is not None:
                self.observer.gauge(
                    "recovery.wal_bytes", self.recovery.wal_bytes()
                )
        if self.observer is not None:
            self.observer.gauge("sim.final_tick", self.tick)
            if truncated:
                self.observer.event("truncated", tick=self.tick)
        return RunResult(
            config=self.config,
            decisions=decisions,
            corrupted=frozenset(ever_corrupted),
            ledger=self.ledger,
            trace=self.trace,
            ticks=self.tick,
            halted_at=halted_at,
            envelopes=tuple(self.envelopes),
            truncated=truncated,
            observer=self.observer,
            recovered=frozenset(ever_recovered),
        )

    def _restart_process(self, pid: ProcessId, down_since: int):
        """Rebuild a crashed process from its WAL and rejoin it.

        Replays the durable history through every tick before ``now``
        (down-window ticks replay as empty inboxes, keeping the
        generator tick-aligned with the cluster) and returns
        ``(generator, context, report)``; the generator's next resume
        executes the current tick live.
        """
        from repro.recovery.replay import replay_generator

        assert self.recovery is not None
        self.recovery.on_restart(pid, self.tick, down_since)
        history = self.recovery.load(pid)
        ctx = ProcessContext(self, pid)
        gen, report = replay_generator(
            self._factories[pid], ctx, history, until_tick=self.tick
        )
        self.recovery.note_replay(report)
        self.trace.emit(
            tick=self.tick, pid=pid, scope="faults", name="recovered",
            replayed_ticks=report.ticks_replayed,
            replayed_sends=report.sends_replayed,
        )
        if self.observer is not None:
            self.observer.event(
                "recovered", pid=pid, tick=self.tick,
                replayed_ticks=report.ticks_replayed,
            )
            self.observer.on_recovery("restart")
            self.observer.on_recovery(
                "replayed_ticks", report.ticks_replayed
            )
        return gen, ctx, report

    def _validate_population(self) -> None:
        scheduled = {
            pid
            for entries in self._scheduled_corruptions.values()
            for pid, _ in entries
        }
        for pid in self.config.processes:
            if pid not in self._factories and pid not in self._behaviors:
                raise SchedulerError(
                    f"process {pid} has neither a protocol nor a behavior"
                )
        for pid in scheduled:
            if pid in self._behaviors:
                raise SchedulerError(
                    f"process {pid} is already Byzantine; cannot re-corrupt"
                )
        if self.fault_plan is not None:
            for crash in self.fault_plan.crashes:
                if crash.pid not in self._factories:
                    raise SchedulerError(
                        f"crash fault targets process {crash.pid}, which is "
                        f"not a correct process (only correct processes "
                        f"crash and recover; Byzantine ones are adversarial)"
                    )
