"""Deterministic synchronous message-passing runtime.

The paper's model (Section 2): a synchronous network of ``n`` processes
connected by reliable authenticated links, message delay bounded by a
known ``delta``.  This runtime realizes that model as a tick-based
simulator:

* time advances in integer **ticks**; ``delta`` is one tick — a message
  sent by a correct process at tick ``T`` is delivered at tick ``T + 1``;
* correct processes are **generator coroutines**: each ``yield``
  advances one tick and resumes with the envelopes delivered at the new
  tick; sub-protocols compose with ``yield from``;
* Byzantine processes are driven by adversary behaviors that act *after*
  the correct processes in each tick and may peek at in-flight traffic
  addressed to them (a rushing adversary);
* every send is recorded in a :class:`~repro.metrics.words.WordLedger`
  and the event :class:`~repro.runtime.trace.Trace`.
"""

from repro.runtime.envelope import Envelope
from repro.runtime.context import ProcessContext
from repro.runtime.pool import MessagePool
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation
from repro.runtime.trace import Trace, TraceEvent

__all__ = [
    "Envelope",
    "ProcessContext",
    "MessagePool",
    "RunResult",
    "Simulation",
    "Trace",
    "TraceEvent",
]
