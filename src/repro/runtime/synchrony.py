"""Synchrony models: when the network must deliver, and when rounds end.

The paper's analysis is lockstep-synchronous — every message sent at
tick ``T`` is delivered at ``T + 1`` and every process advances one
round per tick.  That assumption was baked into the runtimes as a
literal ``+ 1``; this module makes it a first-class, swappable model:

:class:`Lockstep`
    The paper's model, generalized to an arbitrary bound ``delta``:
    messages sent in round ``k`` (tick ``k * delta``) are delivered by
    the next round boundary and processes advance every ``delta``
    ticks.  ``delta=1`` is the historical scheduler, bit-for-bit.

:class:`PartialSynchrony`
    The DLS/GST model the successor papers (Civit et al.,
    arXiv:2308.03524) work in.  Before a **global stabilization time**
    ``gst`` the adversary controls delivery arbitrarily (any tick in
    ``[sent + 1, gst + delta]``); from ``gst`` on every link respects
    the bound ``delta``.  Round advancement becomes
    **certificate-∨-timeout**: a process leaves its round as soon as a
    quorum of distinct senders has reached it (certificate) or when a
    per-round timeout with exponential back-off fires.  Safety must
    never depend on which; liveness returns once timeouts outgrow the
    real post-GST delay.

Determinism contract
--------------------

Every open decision a model makes is either

* a **pure seeded function** of ``(seed, sender, receiver, sent_at,
  seq)`` — the :class:`~repro.faults.plan.FaultPlan` idiom, so
  :meth:`SynchronyModel.reseeded` re-derives *every* sub-schedule
  (pre-GST delays, post-GST link latencies, per-process drift)
  consistently; or
* an explicit :class:`~repro.mc.choices.ChoiceSource` **choice point**
  (``kind="net-delay"``), so the model checker can exhaustively
  explore adversarial pre-GST schedules and prove no safety property
  is timing-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.config import ProcessId
from repro.errors import ConfigurationError
from repro.faults.plan import _mix

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via repro.mc
    from repro.mc.choices import ChoiceSource

# Decision-stream tags (the FaultPlan ``seed ^ tag`` idiom); distinct
# from the fault tags so a shared seed never aliases streams.
_DELAY_TAG = 0x65D7
_LINK_TAG = 0x11A7
_DRIFT_TAG = 0xD21F


@dataclass(frozen=True)
class SynchronyModel:
    """Base class: the timing laws one run executes under.

    ``delta`` is the message-delay bound in ticks (the paper's ``δ``).
    Subclasses define delivery and round-advancement policy; the
    scheduler asks only through this interface.
    """

    delta: int = 1

    def __post_init__(self) -> None:
        if self.delta < 1:
            raise ConfigurationError(f"delta must be >= 1, got {self.delta}")

    # -- structure ------------------------------------------------------

    @property
    def trivial(self) -> bool:
        """True iff the model is the historical ``delta=1`` lockstep —
        the scheduler then takes its original fast path, byte-identical
        to every pre-synchrony run."""
        return False

    @property
    def early_advance(self) -> bool:
        """Whether a quorum certificate ends a round before its timeout."""
        return False

    # -- delivery -------------------------------------------------------

    def delivery_tick(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: int,
        seq: int,
        chooser: "ChoiceSource | None" = None,
    ) -> int:
        """The tick at which a message sent at ``sent_at`` is delivered.

        ``seq`` numbers the sends on one edge within one tick (the
        injector's convention), so seeded draws are pure per-message.
        ``chooser`` (model checking) turns the adversary's freedom into
        an explicit choice point instead of a seeded draw.
        """
        raise NotImplementedError

    # -- round pacing ---------------------------------------------------

    def timeout_base(self) -> int:
        """Initial per-round timeout, in ticks."""
        return self.delta

    def next_timeout(self, current: int) -> int:
        """Timeout after one more round expired without a certificate."""
        return current

    def drift_for(self, pid: ProcessId, round_index: int) -> int:
        """Bounded clock drift: extra ticks ``pid`` waits in
        ``round_index`` on top of its nominal timeout (``0`` = perfect
        clocks)."""
        return 0

    # -- derivation -----------------------------------------------------

    def reseeded(self, seed: int) -> "SynchronyModel":
        """The same timing laws under a different seed (a no-op for
        models without seeded sub-schedules)."""
        return self

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Lockstep(SynchronyModel):
    """The paper's synchronous model with bound ``delta``.

    Messages are delivered exactly ``delta`` ticks after sending
    (self-deliveries after one tick — local, not a network hop) and
    every round lasts exactly ``delta`` ticks with no early advance, so
    a ``delta=2`` run executes the *same* protocol trajectory as
    ``delta=1`` stretched 2× in ticks — identical sends, identical word
    bill (the satellite regression in ``tests/test_synchrony.py`` pins
    this).
    """

    @property
    def trivial(self) -> bool:
        return self.delta == 1

    def delivery_tick(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: int,
        seq: int,
        chooser: "ChoiceSource | None" = None,
    ) -> int:
        if sender == receiver:
            return sent_at + 1
        return sent_at + self.delta

    def describe(self) -> str:
        return f"lockstep(delta={self.delta})"


#: The historical scheduler's model; ``Simulation(synchrony=None)``
#: resolves to this.
LOCKSTEP = Lockstep()


@dataclass(frozen=True)
class PartialSynchrony(SynchronyModel):
    """GST partial synchrony with seeded per-link latencies and drift.

    Delivery law: a message sent at ``T`` on a non-self link is
    delivered at

    * some adversary-chosen tick in ``[T + 1, gst + delta]`` when
      ``T < gst`` (a choice point under the model checker, a seeded
      per-link draw capped at ``pre_gst_cap`` otherwise);
    * ``T + latency(link)`` with ``1 <= latency <= delta`` when
      ``T >= gst`` — the link's seeded base latency, fixed for the run,
      so "fast" and "slow" links persist post-GST the way real
      deployments' do.

    Round law (the scheduler's shared round clock): a round ends at a
    **certificate** (a quorum of distinct senders reached some correct
    process — the network-layer idealization of certificate gossip;
    timeout resets to the ``timeout`` base) or at a **timeout**
    (current estimate expired), whichever first.  The estimate
    escalates by ``backoff`` (capped at ``timeout_cap``) only when the
    expired round received traffic that was more than a full round
    old — evidence the network outpaces the round length.  ``drift``
    staggers each process's resume of a new round by a seeded
    per-(process, round) offset in ``[0, drift]`` — bounded clock skew.
    """

    gst: int = 0
    seed: int = 0
    pre_gst_cap: int = 8
    """Largest seeded pre-GST delay, in ticks (the choice-point path is
    bounded by ``gst + delta`` instead — the model checker must be able
    to hold a message until stabilization)."""
    pre_gst_levels: int = 3
    """Choice-point arity for a pre-GST delivery: evenly spaced ticks
    spanning ``[sent + 1, gst + delta]``, always including both ends."""
    timeout: int | None = None
    """Base per-round timeout in ticks (``None`` = ``delta``)."""
    backoff: float = 2.0
    timeout_cap: int | None = None
    """Largest timeout the back-off may reach (``None`` = ``8 * delta``)."""
    drift: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {self.gst}")
        if self.pre_gst_cap < 0:
            raise ConfigurationError(
                f"pre_gst_cap must be >= 0, got {self.pre_gst_cap}"
            )
        if self.pre_gst_levels < 2:
            raise ConfigurationError(
                f"pre_gst_levels must be >= 2 (earliest and hold-until-GST "
                f"must both be representable), got {self.pre_gst_levels}"
            )
        if self.timeout is not None and self.timeout < 1:
            raise ConfigurationError(
                f"timeout must be >= 1, got {self.timeout}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(
                f"backoff must be >= 1, got {self.backoff}"
            )
        if self.timeout_cap is not None and self.timeout_cap < self.timeout_base():
            raise ConfigurationError(
                f"timeout_cap {self.timeout_cap} below the base timeout "
                f"{self.timeout_base()}"
            )
        if self.drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {self.drift}")

    @property
    def early_advance(self) -> bool:
        return True

    def timeout_base(self) -> int:
        return self.timeout if self.timeout is not None else self.delta

    def next_timeout(self, current: int) -> int:
        cap = self.timeout_cap if self.timeout_cap is not None else 8 * self.delta
        grown = max(current + 1, int(current * self.backoff))
        return min(grown, max(cap, self.timeout_base()))

    def drift_for(self, pid: ProcessId, round_index: int) -> int:
        if self.drift == 0:
            return 0
        return _mix(self.seed, _DRIFT_TAG, pid, round_index) % (self.drift + 1)

    def _link_latency(self, sender: ProcessId, receiver: ProcessId) -> int:
        """Post-GST latency of one link: seeded, fixed for the run,
        uniform over ``1..delta``."""
        if self.delta == 1:
            return 1
        return 1 + _mix(self.seed, _LINK_TAG, sender, receiver) % self.delta

    def delivery_tick(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        sent_at: int,
        seq: int,
        chooser: "ChoiceSource | None" = None,
    ) -> int:
        if sender == receiver:  # local, never on the wire
            return sent_at + 1
        if sent_at >= self.gst:
            return sent_at + self._link_latency(sender, receiver)
        earliest = sent_at + 1
        latest = self.gst + self.delta
        if chooser is not None:
            options = self._delay_options(earliest, latest)
            pick = chooser.choose(
                "net-delay", (sender, receiver, sent_at, seq), len(options)
            )
            return options[pick]
        draw = _mix(self.seed, _DELAY_TAG, sender, receiver, sent_at, seq)
        return min(earliest + draw % (self.pre_gst_cap + 1), latest)

    def _delay_options(self, earliest: int, latest: int) -> list[int]:
        """Evenly spaced delivery ticks spanning ``[earliest, latest]``,
        at most ``pre_gst_levels`` of them, both endpoints always in —
        the checker must be able to deliver immediately *and* hold a
        message hostage until stabilization."""
        if latest <= earliest:
            return [earliest]
        levels = min(self.pre_gst_levels, latest - earliest + 1)
        span = latest - earliest
        ticks = sorted({
            earliest + round(span * i / (levels - 1)) for i in range(levels)
        })
        return ticks

    def reseeded(self, seed: int) -> "PartialSynchrony":
        """The same GST/timeout laws under a different seed: pre-GST
        delays, link latencies, and drift offsets all re-derive."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = [f"gst={self.gst}", f"delta={self.delta}"]
        if self.timeout is not None:
            parts.append(f"timeout={self.timeout}")
        parts.append(f"backoff={self.backoff:g}")
        if self.drift:
            parts.append(f"drift={self.drift}")
        parts.append(f"seed={self.seed}")
        return f"gst({', '.join(parts)})"


def parse_synchrony(spec: str) -> SynchronyModel:
    """Parse a CLI synchrony spec.

    ``lockstep`` or ``lockstep:<delta>`` → :class:`Lockstep`;
    ``gst:<tick>`` or ``gst:<tick>:<delta>`` → :class:`PartialSynchrony`
    (e.g. ``repro sweep --synchrony gst:4``).
    """
    parts = spec.split(":")
    kind = parts[0]
    try:
        if kind == "lockstep" and len(parts) <= 2:
            delta = int(parts[1]) if len(parts) == 2 else 1
            return Lockstep(delta=delta)
        if kind == "gst" and 2 <= len(parts) <= 3:
            gst = int(parts[1])
            delta = int(parts[2]) if len(parts) == 3 else 1
            return PartialSynchrony(gst=gst, delta=delta)
    except ValueError as exc:
        raise ConfigurationError(f"bad synchrony spec {spec!r}: {exc}") from exc
    raise ConfigurationError(
        f"bad synchrony spec {spec!r}; expected 'lockstep[:delta]' or "
        f"'gst:<tick>[:delta]'"
    )
