"""Structured event trace of a simulation run.

Protocols emit events (``phase_non_silent``, ``fallback_started``,
``decided`` ...) through :meth:`ProcessContext.emit`; benchmarks and
tests read them back to verify the paper's structural claims (silent
phase counts, Lemma 6 / Lemma 8 fallback activation, Figure 1's
composition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.config import ProcessId


@dataclass(frozen=True)
class TraceEvent:
    """One emitted event."""

    tick: int
    pid: ProcessId
    scope: str
    name: str
    data: tuple[tuple[str, Any], ...]

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.data:
            if k == key:
                return v
        return default


@dataclass
class Trace:
    """Append-only event log with simple query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    _fp: int = field(default=0, repr=False, compare=False)
    _fp_index: int = field(default=0, repr=False, compare=False)

    def fingerprint(self) -> int:
        """Running hash-chain over the event log.

        Lazily folds in only the events appended since the last call, so
        per-tick fingerprinting (the model checker calls this every
        tick) is amortized O(new events) instead of O(all events) — the
        old per-tick re-hash of the whole log was quadratic in run
        length.  Runs that never fingerprint pay nothing.
        """
        fp = self._fp
        events = self.events
        for i in range(self._fp_index, len(events)):
            fp = hash((fp, repr(events[i])))
        self._fp = fp
        self._fp_index = len(events)
        return fp

    def emit(
        self, *, tick: int, pid: ProcessId, scope: str, name: str, **data: Any
    ) -> None:
        self.events.append(
            TraceEvent(
                tick=tick,
                pid=pid,
                scope=scope,
                name=name,
                data=tuple(sorted(data.items())),
            )
        )

    def canonical(self) -> tuple[TraceEvent, ...]:
        """The events in a runtime-independent order.

        Within one tick the model imposes no order on different
        processes' events; the simulator happens to run pids in order,
        while the asyncio/TCP drivers interleave them arbitrarily.
        Comparing ``canonical()`` views asks exactly what determinism
        promises: the *same events at the same ticks*, nothing about
        scheduler interleaving.
        """
        return tuple(
            sorted(
                self.events,
                key=lambda e: (e.tick, e.pid, e.scope, e.name, repr(e.data)),
            )
        )

    def named(self, name: str) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.name == name)

    def count(self, name: str) -> int:
        return sum(1 for e in self.events if e.name == name)

    def any(self, name: str) -> bool:
        return any(e.name == name for e in self.events)

    def by_pid(self, pid: ProcessId) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.pid == pid)

    def scopes(self) -> set[str]:
        return {e.scope for e in self.events}
