"""A message pool for round-skew-tolerant protocols.

Lemma 18 of the paper runs the fallback with round length ``2 * delta``
because correct processes may enter it up to ``delta`` apart; a round-
``r`` message can therefore arrive while the receiver is still in round
``r - 1``.  Protocols written against :class:`MessagePool` simply feed
every delivered envelope into the pool and *take* messages matching the
round they are logically in — earlier-than-expected messages wait in the
pool instead of being dropped, realizing Lemma 18's acceptance window.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.runtime.envelope import Envelope


def default_jobs() -> int:
    """Worker count honoring the CPU affinity mask (cgroup-limited
    containers often expose fewer usable cores than ``os.cpu_count``)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[Any], Any], items: Sequence[Any], jobs: int
) -> list[Any]:
    """Map ``fn`` over ``items`` with up to ``jobs`` worker processes.

    The seed/scenario-level fan-out primitive used by the model checker
    shards and the analysis sweeps.  ``fn`` and every item must be
    picklable (a module-level function, not a closure).  ``jobs <= 1``
    or a single item runs serially in-process — no worker startup cost
    and identical semantics, so callers need no special-casing and the
    serial path stays the deterministic reference.

    Results come back in input order regardless of completion order.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    import multiprocessing

    workers = min(jobs, len(items))
    with multiprocessing.Pool(processes=workers) as pool:
        return pool.map(fn, items)


class MessagePool:
    """Holds delivered envelopes until the protocol consumes them."""

    def __init__(self) -> None:
        self._envelopes: list[Envelope] = []

    def __len__(self) -> int:
        return len(self._envelopes)

    def __iter__(self) -> Iterator[Envelope]:
        return iter(self._envelopes)

    def extend(self, envelopes: Iterable[Envelope]) -> None:
        self._envelopes.extend(envelopes)

    def take(self, predicate: Callable[[Envelope], bool]) -> list[Envelope]:
        """Remove and return every pooled envelope matching ``predicate``."""
        matched: list[Envelope] = []
        remaining: list[Envelope] = []
        for envelope in self._envelopes:
            if predicate(envelope):
                matched.append(envelope)
            else:
                remaining.append(envelope)
        self._envelopes = remaining
        return matched

    def take_payloads(
        self, payload_type: type, predicate: Callable[[Envelope], bool] | None = None
    ) -> list[Envelope]:
        """Remove and return envelopes whose payload is ``payload_type``."""

        def matches(envelope: Envelope) -> bool:
            if not isinstance(envelope.payload, payload_type):
                return False
            return predicate is None or predicate(envelope)

        return self.take(matches)

    def peek(self, predicate: Callable[[Envelope], bool]) -> list[Envelope]:
        """Return matching envelopes without removing them."""
        return [e for e in self._envelopes if predicate(e)]
