"""``Afallback`` — quadratic synchronous strong BA for ``n = 2t + 1``.

The paper invokes Momose–Ren [14] as a black box: a synchronous strong
BA with optimal resilience and ``O(n^2)`` words.  This module provides
that black box with the same recursive structure (DESIGN.md Section 3):

``recursive_ba(S)`` for a committee ``S`` of size ``m``:

1. run :func:`~repro.fallback.graded_consensus.graded_consensus` among
   ``S`` — ``O(m^2)`` words;
2. the first half ``A`` of ``S`` runs ``recursive_ba(A)`` and every
   member of ``A`` reports the outcome to all of ``S`` — ``O(m^2 / 2)``;
   members with grade ``< 2`` adopt the value reported by a strict
   majority of ``A``;
3. repeat steps 1–2 with the second half ``B``.

Word complexity: ``C(m) = 2 C(m/2) + O(m^2) = O(m^2)`` — quadratic, the
Momose–Ren bound.  Rounds: ``R(m) = 2 R(m/2) + O(1) = O(m)``.

Correctness (strong BA among the honest members of ``S``, *provided
``S`` has an honest strict majority* — guaranteed at the top level by
``n = 2t + 1``):

* **Strong unanimity** — if all honest members input ``v``, graded
  consensus validity gives everyone ``(v, 2)``; grade-2 members ignore
  committee reports, so ``v`` survives both halves.
* **Agreement** — at least one half has an honest strict majority (if
  both halves had honest minorities, ``S`` itself would); induction
  makes that half's recursive BA correct.  For that half's phase:
  if some honest member graded 2 on ``u``, graded agreement puts every
  honest member's value at ``u``, the half's BA decides ``u`` (validity)
  and both keepers and adopters end with ``u``.  If no honest member
  graded 2, *every* honest member adopts, and the half's honest members
  report one common value (its BA's agreement), which forms the unique
  strict majority among the reports.  Either way all honest members of
  ``S`` leave that phase unanimous, and unanimity persists through the
  other half's phase by graded-consensus validity.
* **Termination** — the round schedule is a fixed function of ``|S|``
  (:func:`ba_rounds`); non-members of a recursing half sleep exactly
  that many rounds.

Rushing, skew, and Lemma 18: invoked as the paper's fallback, members
may start up to ``delta`` apart; ``round_ticks=2`` (the paper's
``delta' = 2 * delta``) plus the shared :class:`MessagePool` implements
Lemma 18's acceptance window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool
from repro.fallback.graded_consensus import GC_ROUNDS, graded_consensus

FALLBACK_ROUND_TICKS = 2
"""The paper's ``delta' = 2 * delta`` (Section 6, Lemma 18)."""


@dataclass(frozen=True)
class CommitteeReport:
    """A committee member's signed report of its recursive decision."""

    session: str
    value: object

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the member's signature on the report


@dataclass(frozen=True)
class PairProposal:
    """Size-2 base case: the lower-id member's signed value."""

    session: str
    value: object

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the proposer's signature


def ba_rounds(m: int) -> int:
    """Synchronous rounds ``recursive_ba`` occupies for a committee of ``m``.

    Every process — member or not — must know this schedule so that
    non-members sleep exactly through a half's recursion.
    """
    if m <= 1:
        return 0
    if m == 2:
        return 1
    half_a = math.ceil(m / 2)
    half_b = m - half_a
    return (
        GC_ROUNDS
        + ba_rounds(half_a)
        + 1  # A's report round
        + GC_ROUNDS
        + ba_rounds(half_b)
        + 1  # B's report round
    )


def _sleep_rounds(
    ctx: ProcessContext, rounds: int, round_ticks: int, pool: MessagePool
) -> Generator[None, None, None]:
    for _ in range(rounds):
        pool.extend((yield from ctx.sleep(round_ticks)))


def _take_session(
    pool: MessagePool,
    payload_type: type,
    session: str,
    senders: frozenset[ProcessId],
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session
        and e.sender in senders,
    )


def _committee_phase(
    ctx: ProcessContext,
    members: tuple[ProcessId, ...],
    half: tuple[ProcessId, ...],
    value: object,
    session: str,
    round_ticks: int,
    pool: MessagePool,
) -> Generator[None, None, object]:
    """One graded-consensus + one half-committee recursion + adoption."""
    value, grade = yield from graded_consensus(
        ctx, members, value, f"{session}/gc", round_ticks, pool
    )

    if ctx.pid in half:
        decision = yield from recursive_ba(
            ctx, half, value, f"{session}/rec", round_ticks, pool
        )
        for member in members:
            ctx.send(
                member,
                CommitteeReport(session=f"{session}/rep", value=decision),
            )
    else:
        yield from _sleep_rounds(ctx, ba_rounds(len(half)), round_ticks, pool)

    pool.extend((yield from ctx.sleep(round_ticks)))  # report round

    if grade == 2:
        return value

    counts: dict[object, set[ProcessId]] = {}
    for envelope in _take_session(
        pool, CommitteeReport, f"{session}/rep", frozenset(half)
    ):
        try:
            counts.setdefault(envelope.payload.value, set()).add(envelope.sender)
        except TypeError:
            continue  # unhashable adversarial value
    majority = len(half) // 2 + 1
    for reported_value, reporters in counts.items():
        if len(reporters) >= majority:
            return reported_value
    return value


def recursive_ba(
    ctx: ProcessContext,
    members: tuple[ProcessId, ...],
    value: object,
    session: str,
    round_ticks: int,
    pool: MessagePool,
) -> Generator[None, None, object]:
    """Strong BA among ``members`` (honest-majority committees).

    ``ctx.pid`` must be a member; non-members sleep via
    :func:`ba_rounds` in the caller.
    """
    m = len(members)
    if m == 1:
        return value

    if m == 2:
        leader = members[0]
        if ctx.pid == leader:
            ctx.send(members[1], PairProposal(session=session, value=value))
        pool.extend((yield from ctx.sleep(round_ticks)))
        if ctx.pid == leader:
            return value
        proposals = _take_session(pool, PairProposal, session, frozenset([leader]))
        if proposals:
            return proposals[0].payload.value
        return value

    half_a = members[: math.ceil(m / 2)]
    half_b = members[math.ceil(m / 2) :]
    value = yield from _committee_phase(
        ctx, members, half_a, value, f"{session}/A", round_ticks, pool
    )
    value = yield from _committee_phase(
        ctx, members, half_b, value, f"{session}/B", round_ticks, pool
    )
    return value


def fallback_ba(
    ctx: ProcessContext,
    initial_value: object,
    *,
    session: str = "fallback",
    round_ticks: int = FALLBACK_ROUND_TICKS,
    pool: MessagePool | None = None,
) -> Generator[None, None, object]:
    """``Afallback``: strong BA over all ``n`` processes, ``O(n^2)`` words.

    Invoked by the paper's weak BA (Alg. 3 line 24) and fast strong BA
    (Alg. 5 line 28) with ``round_ticks=2``; safe for any ``f <= t``
    because ``n = 2t + 1`` guarantees the top-level committee an honest
    strict majority.
    """
    with ctx.scope("fallback"):
        ctx.emit("fallback_started", value=repr(initial_value))
        members = tuple(ctx.config.processes)
        if pool is None:
            pool = MessagePool()
        decision = yield from recursive_ba(
            ctx, members, initial_value, session, round_ticks, pool
        )
        ctx.emit("fallback_decided", value=repr(decision))
        return decision


def run_fallback_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, Any],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    round_ticks: int = 1,
    params: RunParameters | None = None,
):
    """Standalone driver: run ``Afallback`` alone over the simulator.

    ``inputs`` maps every correct pid to its initial value; ``byzantine``
    maps corrupted pids to behavior objects.  Returns the
    :class:`~repro.runtime.result.RunResult`.
    """
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(protocol="recursive_ba")
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            simulation.add_process(
                pid,
                lambda ctx, v=value: fallback_ba(
                    ctx, v, round_ticks=round_ticks
                ),
            )
    return simulation.run()
