"""Phase-King Byzantine Agreement — the *unauthenticated* baseline.

A classical strong binary BA that uses **no cryptography at all** (the
Attiya–Welch formulation of the Berman–Garay–Perry king paradigm):
resilience ``n >= 4t + 1`` (strictly worse than the paper's ``2t+1``),
``t + 1`` phases of one all-to-all exchange plus a king broadcast —
``O(n^2)`` words per phase, hence ``O(n^2 t) = O(n^3)`` total at
``t = Θ(n)``.

Why it is in this repository: the paper's landscape has three corners —
classical authenticated (Dolev–Strong: optimal messages, cubic words,
any ``t < n``), classical unauthenticated (Phase King: no PKI, weak
resilience, cubic words), and the paper's protocols (PKI + threshold
signatures: optimal resilience, adaptive words).  The benchmark
``bench_baseline_phase_king.py`` measures all three side by side.

Protocol, per phase ``k = 1..t+1`` (binary preferences):

1. everyone broadcasts its preference; let ``maj`` be the majority
   value seen and ``mult`` its multiplicity;
2. the phase king ``p_{k mod n}`` broadcasts its ``maj``; a process
   keeps its own ``maj`` if ``mult > n/2 + t`` (it is *sure*), else
   adopts the king's.

Correctness (``n >= 4t + 1``): (persistence) if all correct processes
prefer ``v``, every correct process counts ``>= n - t > n/2 + t`` for
``v`` and stays; (king phase) if the king is correct and some correct
process stays with ``v``, then ``v`` had ``> n/2`` support at *every*
correct process — including the king — so adopters get ``v`` too.  One
of the ``t + 1`` kings is correct, and agreement persists afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, SystemConfig
from repro.errors import ConfigurationError
from repro.runtime.context import ProcessContext

BINARY = (0, 1)


@dataclass(frozen=True)
class PkPreference:
    """Exchange 1: a process's current preference (channel-auth only)."""

    session: str
    phase: int
    value: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 0  # the whole point: no signatures anywhere


@dataclass(frozen=True)
class PkKingValue:
    """Exchange 2: the phase king's tie-break value."""

    session: str
    phase: int
    value: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 0


def check_phase_king_resilience(config: SystemConfig) -> None:
    """This classical protocol needs ``n >= 4t + 1``."""
    if config.n < 4 * config.t + 1:
        raise ConfigurationError(
            f"phase king requires n >= 4t + 1; got n={config.n}, t={config.t}"
        )


def phase_king_protocol(
    ctx: ProcessContext,
    initial_value: int,
    *,
    session: str = "pk",
) -> Generator[None, None, int]:
    """Run Phase-King binary BA; returns the decision (0 or 1)."""
    check_phase_king_resilience(ctx.config)
    if initial_value not in BINARY:
        raise ConfigurationError(
            f"phase king is binary; got initial value {initial_value!r}"
        )
    with ctx.scope("phase_king"):
        config = ctx.config
        n, t = config.n, config.t
        preference = initial_value

        for phase in range(1, t + 2):
            king = phase % n

            ctx.broadcast(
                PkPreference(session=session, phase=phase, value=preference)
            )
            yield
            counts = {0: 0, 1: 0}
            seen: set[ProcessId] = set()
            for envelope in ctx.inbox:
                payload = envelope.payload
                if (
                    isinstance(payload, PkPreference)
                    and payload.session == session
                    and payload.phase == phase
                    and payload.value in BINARY
                    and envelope.sender not in seen
                ):
                    seen.add(envelope.sender)
                    counts[payload.value] += 1
            majority = 1 if counts[1] >= counts[0] else 0
            multiplicity = counts[majority]

            if ctx.pid == king:
                ctx.broadcast(
                    PkKingValue(session=session, phase=phase, value=majority)
                )
            yield
            if multiplicity > n / 2 + t:
                preference = majority  # sure: keep regardless of the king
            else:
                preference = majority
                for envelope in ctx.inbox:
                    payload = envelope.payload
                    if (
                        isinstance(payload, PkKingValue)
                        and payload.session == session
                        and payload.phase == phase
                        and payload.value in BINARY
                        and envelope.sender == king
                    ):
                        preference = payload.value
                        break

        ctx.emit("decided", value=preference, session=session)
        return preference


def run_phase_king(
    config: SystemConfig,
    inputs: dict[ProcessId, int],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
):
    """Standalone driver for the Phase-King baseline."""
    from repro.runtime.scheduler import Simulation

    check_phase_king_resilience(config)
    byzantine = byzantine or {}
    simulation = Simulation(config, seed=seed)
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            simulation.add_process(
                pid, lambda ctx, v=value: phase_king_protocol(ctx, v)
            )
    return simulation.run()
