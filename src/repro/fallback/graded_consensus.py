"""Graded consensus for ``n = 2t + 1`` committees — the fallback's core.

Run among a committee ``S`` with an honest strict majority, every member
starting with an input value.  Each member outputs ``(value, grade)``
with ``grade`` in ``{0, 1, 2}`` satisfying:

* **Validity** — if every honest member inputs the same ``v``, every
  honest member outputs ``(v, 2)``.
* **Graded agreement** — if an honest member outputs ``(v, 2)``, every
  honest member outputs ``(v, g)`` with ``g >= 1``.

Protocol (4 rounds, each round all-to-committee, ``O(|S|^2)`` words,
quorum ``q = |S|//2 + 1`` — a strict majority, so any quorum contains an
honest member whenever the committee has an honest majority):

1. **claim** — broadcast your input together with your threshold share
   on the statement ``val(v)``.
2. **support** — for every value whose ``val`` statement gathered ``q``
   valid shares, combine ``QC_val(v)``; broadcast the certificates you
   formed (at most two — two suffice as conflict evidence).
3. **lock-share** — if you observed ``QC_val`` for *exactly one* value
   ``v``, broadcast your share on ``lock(v)`` **attached to**
   ``QC_val(v)``.  The attachment is the linchpin of graded agreement:
   any honest contribution toward a lock travels with the evidence that
   its value had support, so a *conflicting* lock can never stay hidden
   from a member that ends up with grade 2.
4. **lock-cert** — combine ``QC_lock(v)`` from ``q`` lock shares and
   broadcast it.

Grading: a member holding ``QC_lock(v)`` for exactly one value outputs
grade 2 if it never observed a certificate (``val`` or ``lock``) for any
other value, grade 1 otherwise; everyone else outputs its own input with
grade 0.

Correctness sketch (committee honest-majority assumed):

* *Validity*: all-honest-``v`` means only ``v`` can gather ``q`` shares
  (the adversary holds a minority of shares), every honest member forms
  and locks ``v``, and no conflicting certificate can exist.
* *Graded agreement*: suppose honest ``i`` outputs ``(v, 2)``.  A
  ``QC_lock(w)``, ``w != v``, needs a quorum of lock shares, hence an
  honest share on ``lock(w)``; that share was broadcast with
  ``QC_val(w)`` attached in round 3, so ``i`` would have observed the
  conflict by round 4 and graded 1 — contradiction.  So no
  ``QC_lock(w)`` exists anywhere; meanwhile ``i`` broadcast
  ``QC_lock(v)`` in round 4, so every honest member holds it as its
  unique lock and grades ``v`` at least 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.config import ProcessId
from repro.crypto.certificates import (
    CertificateCollector,
    CryptoSuite,
    QuorumCertificate,
)
from repro.crypto.threshold import PartialSignature
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

GC_ROUNDS = 4
"""Synchronous rounds one graded-consensus instance occupies."""


# ----------------------------------------------------------------------
# Wire payloads (each a constant number of signatures/values -> 1 word)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GcClaim:
    """Round 1: input value + threshold share on ``val(value)``."""

    session: str
    value: object
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class GcSupport:
    """Round 2: a formed ``QC_val`` (a member sends at most two)."""

    session: str
    certificate: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.certificate.signatures()


@dataclass(frozen=True)
class GcLockShare:
    """Round 3: share on ``lock(value)`` + the supporting ``QC_val``."""

    session: str
    value: object
    partial: PartialSignature
    support: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1 + self.support.signatures()


@dataclass(frozen=True)
class GcLockCert:
    """Round 4: a combined ``QC_lock``."""

    session: str
    certificate: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.certificate.signatures()


def _val_label(session: str) -> str:
    return f"gcv:{session}"


def _lock_label(session: str) -> str:
    return f"gcl:{session}"


def _safe_verify_certificate(
    suite: CryptoSuite,
    certificate: object,
    label: str,
    k: int,
    members: frozenset[ProcessId],
) -> bool:
    """Strict verification that never raises on adversarial garbage."""
    try:
        return suite.verify_certificate(certificate, label, k, members)  # type: ignore[arg-type]
    except Exception:
        return False


def graded_consensus(
    ctx: ProcessContext,
    members: tuple[ProcessId, ...],
    value: object,
    session: str,
    round_ticks: int,
    pool: MessagePool,
) -> Generator[None, None, tuple[object, int]]:
    """Run one graded-consensus instance among ``members``.

    ``ctx.pid`` must be a member.  ``round_ticks`` is the synchronous
    round length in ticks (2 when running as the paper's fallback with
    ``delta' = 2 * delta``, Lemma 18); ``pool`` is the caller's shared
    message pool, which absorbs up-to-one-round skew between members.

    Returns ``(value, grade)``.
    """
    suite = ctx.suite
    member_set = frozenset(members)
    quorum = len(members) // 2 + 1
    val_label = _val_label(session)
    lock_label = _lock_label(session)

    def broadcast_members(payload: object) -> None:
        for member in members:
            ctx.send(member, payload)

    def take_session(payload_type: type) -> list[Envelope]:
        return pool.take_payloads(
            payload_type,
            lambda e: getattr(e.payload, "session", None) == session
            and e.sender in member_set,
        )

    # Conflict tracking: every value for which this process has observed
    # a *valid* certificate (val or lock) during the instance.
    certified_values: set[object] = set()

    # Round 1 — claim.
    own_partial = suite.partial_for_certificate(
        ctx.pid, val_label, quorum, value, member_set
    )
    broadcast_members(GcClaim(session=session, value=value, partial=own_partial))
    pool.extend((yield from ctx.sleep(round_ticks)))

    # Round 2 — support: combine QC_val per claimed value.
    collectors: dict[object, CertificateCollector] = {}
    for envelope in take_session(GcClaim):
        claim = envelope.payload
        try:
            collector = collectors.get(claim.value)
            if collector is None:
                collector = CertificateCollector(
                    suite, val_label, quorum, claim.value, member_set
                )
                collectors[claim.value] = collector
            collector.add(claim.partial)
        except Exception:
            continue  # unhashable / unencodable adversarial value
    val_certs: dict[object, QuorumCertificate] = {}
    for claimed_value, collector in collectors.items():
        if collector.complete:
            val_certs[claimed_value] = collector.certificate()
            certified_values.add(claimed_value)
    # Two certificates suffice as conflict evidence.
    for certificate in list(val_certs.values())[:2]:
        broadcast_members(GcSupport(session=session, certificate=certificate))
    pool.extend((yield from ctx.sleep(round_ticks)))

    # Round 3 — lock-share, only if support is unequivocal.
    for envelope in take_session(GcSupport):
        certificate = envelope.payload.certificate
        if _safe_verify_certificate(
            suite, certificate, val_label, quorum, member_set
        ):
            certified_values.add(certificate.payload)
            val_certs.setdefault(certificate.payload, certificate)
    if len(certified_values) == 1:
        (locked_value,) = certified_values
        lock_partial = suite.partial_for_certificate(
            ctx.pid, lock_label, quorum, locked_value, member_set
        )
        broadcast_members(
            GcLockShare(
                session=session,
                value=locked_value,
                partial=lock_partial,
                support=val_certs[locked_value],
            )
        )
    pool.extend((yield from ctx.sleep(round_ticks)))

    # Round 4 — combine and broadcast lock certificates.
    lock_collectors: dict[object, CertificateCollector] = {}
    for envelope in take_session(GcLockShare):
        share = envelope.payload
        if not _safe_verify_certificate(
            suite, share.support, val_label, quorum, member_set
        ):
            continue
        if share.support.payload != share.value:
            continue
        certified_values.add(share.value)  # the linchpin attachment
        try:
            collector = lock_collectors.get(share.value)
            if collector is None:
                collector = CertificateCollector(
                    suite, lock_label, quorum, share.value, member_set
                )
                lock_collectors[share.value] = collector
            collector.add(share.partial)
        except Exception:
            continue
    lock_certs: dict[object, QuorumCertificate] = {}
    for locked_value, collector in lock_collectors.items():
        if collector.complete:
            lock_certs[locked_value] = collector.certificate()
    for certificate in list(lock_certs.values())[:2]:
        broadcast_members(GcLockCert(session=session, certificate=certificate))
    pool.extend((yield from ctx.sleep(round_ticks)))

    # Evaluation — incorporate received lock certificates, then grade.
    for envelope in take_session(GcLockCert):
        certificate = envelope.payload.certificate
        if _safe_verify_certificate(
            suite, certificate, lock_label, quorum, member_set
        ):
            certified_values.add(certificate.payload)
            lock_certs.setdefault(certificate.payload, certificate)

    if len(lock_certs) == 1:
        (locked_value,) = lock_certs
        grade = 2 if certified_values == {locked_value} else 1
        return locked_value, grade
    return value, 0
