"""Dolev–Strong authenticated Byzantine Broadcast — the classical baseline.

Section 4 of the paper discusses why matching Dolev–Reischuk's
*message* lower bound is not the same as being word-efficient: the
classical algorithm's messages carry growing **signature chains**, so
its word complexity is cubic even though its message complexity is
``O(n^2)``.  Dolev–Strong (any ``t < n``, ``t + 1`` rounds) is the
canonical such protocol; the benchmark
``benchmarks/bench_baseline_dolev_strong.py`` uses it to regenerate the
words-vs-messages gap.

Protocol: the sender signs its value and broadcasts.  In round ``r``, a
process that accepts a value carried by a chain of ``r`` distinct
signatures (the sender's first) appends its own signature and relays the
chain to everyone — but only for the first *two* distinct values it ever
accepts (two suffice to prove sender equivocation).  After ``t + 1``
rounds a process decides the unique accepted value, or ``⊥`` if it
accepted zero or several.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.values import BOTTOM
from repro.crypto.keys import KeyRegistry, Signer
from repro.crypto.signatures import Signature
from repro.runtime.context import ProcessContext


def _chain_statement(value: object, previous_signers: tuple[ProcessId, ...]) -> tuple:
    return ("dolev-strong", value, previous_signers)


@dataclass(frozen=True)
class SignatureChain:
    """A value and the chain of signatures vouching for its relay path."""

    value: object
    chain: tuple[Signature, ...]

    @property
    def signers(self) -> tuple[ProcessId, ...]:
        return tuple(sig.signer for sig in self.chain)

    def words(self) -> int:
        """Chains do not compact: one word per carried signature."""
        return max(1, len(self.chain))

    def signatures(self) -> int:
        return len(self.chain)

    def verify(self, registry: KeyRegistry, sender: ProcessId) -> bool:
        """All signatures valid, distinct signers, sender signs first."""
        if not self.chain:
            return False
        signers = self.signers
        if signers[0] != sender or len(set(signers)) != len(signers):
            return False
        for index, signature in enumerate(self.chain):
            statement = _chain_statement(self.value, signers[:index])
            try:
                if not registry.verify(signature, statement):
                    return False
            except Exception:
                return False
        return True

    def extended(self, signer: Signer) -> "SignatureChain":
        signature = signer.sign(_chain_statement(self.value, self.signers))
        return SignatureChain(value=self.value, chain=self.chain + (signature,))


def initial_chain(signer: Signer, value: object) -> SignatureChain:
    """The sender's length-1 chain (exposed for adversarial senders)."""
    return SignatureChain(
        value=value, chain=(signer.sign(_chain_statement(value, ())),)
    )


def dolev_strong_protocol(
    ctx: ProcessContext,
    sender: ProcessId,
    value: object = None,
) -> Generator[None, None, object]:
    """Run Dolev–Strong BB; ``value`` is used only by the sender."""
    with ctx.scope("dolev_strong"):
        config = ctx.config
        extracted: list[object] = []

        if ctx.pid == sender:
            ctx.broadcast(initial_chain(ctx.signer, value))
            extracted.append(value)

        for round_number in range(1, config.t + 2):
            yield
            for envelope in ctx.inbox:
                payload = envelope.payload
                if not isinstance(payload, SignatureChain):
                    continue
                if len(payload.chain) != round_number:
                    continue
                if not payload.verify(ctx.suite.registry, sender):
                    continue
                try:
                    already = payload.value in extracted
                except Exception:
                    continue
                if already or len(extracted) >= 2:
                    continue
                extracted.append(payload.value)
                if ctx.pid not in payload.signers and round_number <= config.t:
                    ctx.broadcast(payload.extended(ctx.signer), include_self=False)

        if len(extracted) == 1:
            decision = extracted[0]
        else:
            decision = BOTTOM
        ctx.emit("decided", value=repr(decision))
        return decision


def run_dolev_strong(
    config: SystemConfig,
    sender: ProcessId,
    value: object,
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver for the baseline; returns the run result."""
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(
            protocol="dolev_strong", sender=sender, input=value
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            simulation.add_process(
                pid,
                lambda ctx: dolev_strong_protocol(ctx, sender, value),
            )
    return simulation.run()
