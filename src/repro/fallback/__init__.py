"""The quadratic fallback substrate (``Afallback``) and classical baselines.

The paper uses Momose–Ren's synchronous strong BA [14] as a black box
with interface: *strong BA, resilience ``n = 2t + 1``, synchronous,
``O(n^2)`` words*.  :func:`repro.fallback.recursive_ba.fallback_ba`
provides exactly that interface with the same recursive structure
(graded consensus + recursive halving committees) — see the module
docstring for the correctness argument and DESIGN.md Section 3 for the
substitution note.

:mod:`repro.fallback.dolev_strong` implements the classical Dolev–Strong
broadcast, the baseline whose *message* complexity matches the
Dolev–Reischuk bound while its *word* complexity does not (Section 4's
motivating discussion).
"""

from repro.fallback.dolev_strong import dolev_strong_protocol, run_dolev_strong
from repro.fallback.graded_consensus import graded_consensus
from repro.fallback.phase_king import phase_king_protocol, run_phase_king
from repro.fallback.recursive_ba import ba_rounds, fallback_ba, run_fallback_ba

__all__ = [
    "graded_consensus",
    "fallback_ba",
    "run_fallback_ba",
    "ba_rounds",
    "dolev_strong_protocol",
    "run_dolev_strong",
    "phase_king_protocol",
    "run_phase_king",
]
