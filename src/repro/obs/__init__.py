"""Run observability: metrics, structured events, timing, summaries.

The package is telemetry-only by contract — no runtime reads observer
state to make a decision, so attaching (or detaching) an observer never
changes a run's outcome, trace, or model-checking fingerprints.
"""

from repro.obs.events import EventLog
from repro.obs.observer import NullObserver, Observer, active_or_none
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.schema import (
    BENCH_RESULT_SCHEMA,
    SCHEMA_VERSION,
    validate_bench_result,
    validate_bench_result_file,
)
from repro.obs.summary import render_summary, summarize_export

__all__ = [
    "Observer",
    "NullObserver",
    "active_or_none",
    "EventLog",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "DURATION_BUCKETS",
    "BENCH_RESULT_SCHEMA",
    "SCHEMA_VERSION",
    "validate_bench_result",
    "validate_bench_result_file",
    "summarize_export",
    "render_summary",
]
