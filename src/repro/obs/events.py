"""Structured JSONL event log.

Each event is one JSON object per line: a monotone sequence number, the
observer's clock reading (ticks in simulated runs, seconds otherwise),
a name, and arbitrary JSON-compatible fields.  Unlike the protocol
:class:`~repro.runtime.trace.Trace` — which is part of a run's semantic
output and gets fingerprinted by the model checker — the event log is
pure telemetry: nothing in the runtimes ever reads it back.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any


def _jsonable(value: Any) -> Any:
    """Coerce one field value to something JSON can carry losslessly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class EventLog:
    """An append-only list of structured events."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def append(self, name: str, at: float, **fields: Any) -> None:
        event = {"seq": len(self.events), "at": at, "name": name}
        for key, value in fields.items():
            event[key] = _jsonable(value)
        self.events.append(event)

    def to_jsonl(self) -> str:
        return "".join(json.dumps(event) + "\n" for event in self.events)

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path
