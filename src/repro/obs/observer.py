"""The observer facade every runtime threads its telemetry through.

Three operating points, chosen by the caller:

* ``observer=None`` (the default everywhere) — the runtimes skip every
  instrumentation branch; this is the uninstrumented baseline.
* :class:`NullObserver` — instrumentation *wired but disabled*.  Its
  ``enabled`` flag is ``False``, and every runtime collapses it to the
  ``None`` fast path at construction time, so a disabled observer costs
  one attribute check per hot-path call site.  The overhead benchmark
  (``benchmarks/bench_obs_overhead.py``) holds this within 5% of the
  baseline.
* :class:`Observer` — full recording: a
  :class:`~repro.obs.registry.MetricsRegistry`, a JSONL
  :class:`~repro.obs.events.EventLog`, and timing spans.

Clocks and determinism
----------------------

``Observer(clock=None)`` (the default) runs on *simulated* time: the
runtimes call :meth:`Observer.set_time` with the current tick, spans
measure tick deltas, and no wall clock is ever read — so attaching an
observer to a simulated or model-checked run changes nothing about the
run and produces byte-identical telemetry across repeats.  Pass
``clock=time.perf_counter`` (or :meth:`Observer.wall`) for real-time
runs (asyncio, TCP, CLI hot-spot profiling), where spans report
seconds.

Observers record; they never steer.  No runtime reads observer state to
make a decision, which is why the model checker's exploration results
are identical with and without one attached (``tests/test_obs.py``
proves it).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.obs.events import EventLog
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.metrics.words import WordRecord


class Observer:
    """Collects metrics, events, and spans for one run."""

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self.registry = MetricsRegistry()
        self.events = EventLog()
        self._clock = clock
        self._now = 0.0  # simulated clock, advanced by the runtimes

    @classmethod
    def wall(cls) -> "Observer":
        """An observer on real time (spans in seconds)."""
        return cls(clock=time.perf_counter)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    def time(self) -> float:
        return self._clock() if self._clock is not None else self._now

    def set_time(self, now: float) -> None:
        """Advance the simulated clock (ignored when a real clock is
        installed — ticks still arrive via :meth:`on_tick` counters)."""
        self._now = float(now)

    # ------------------------------------------------------------------
    # Generic recording surface
    # ------------------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self.registry.histogram(name, buckets).observe(value)

    def event(self, name: str, **fields: Any) -> None:
        self.events.append(name, at=self.time(), **fields)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; durations land in ``span.<name>`` (seconds on a
        real clock, ticks on the simulated one)."""
        buckets = DURATION_BUCKETS if self._clock is not None else DEFAULT_BUCKETS
        start = self.time()
        try:
            yield
        finally:
            self.observe(f"span.{name}", self.time() - start, buckets=buckets)

    # ------------------------------------------------------------------
    # Runtime hooks (called by scheduler / asyncio runner / transports)
    # ------------------------------------------------------------------

    def on_tick(self, tick: int) -> None:
        self._now = float(tick) if self._clock is None else self._now
        self.count("sim.ticks")

    def on_send(self, record: "WordRecord") -> None:
        """Account one billed send (the ledger's view of it)."""
        self.count("words.total", record.words)
        self.count("messages.total")
        if record.signatures:
            self.count("signatures.total", record.signatures)
        origin = "correct" if record.sender_correct else "byzantine"
        self.count(f"words.{origin}", record.words)
        self.count(f"words.scope.{record.scope}", record.words)
        if record.phase is not None:
            self.count(f"words.phase.{record.phase}", record.words)

    def on_fault(self, kind: str, amount: int = 1) -> None:
        """Account one injected fault (``dropped``/``duplicated``/
        ``delayed``/``reset``)."""
        self.count(f"faults.{kind}", amount)

    def on_transport(self, kind: str, amount: int = 1) -> None:
        """Account one transport-level incident (e.g. ``reconnected``)."""
        self.count(f"transport.{kind}", amount)

    def on_recovery(self, kind: str, amount: int = 1) -> None:
        """Account one crash-recovery incident (``crash``/``restart``/
        ``replayed_ticks``/``resumed_sends``...); WAL size lands in the
        ``recovery.wal_bytes`` gauge."""
        self.count(f"recovery.{kind}", amount)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministically ordered, JSON-compatible state dump."""
        return {"metrics": self.registry.snapshot(), "events": len(self.events)}

    def write_events(self, path: "str | Path") -> "Path":
        return self.events.write_jsonl(path)


class NullObserver(Observer):
    """Instrumentation wired but switched off.

    ``enabled=False`` tells every runtime to collapse this to the
    uninstrumented fast path at construction time; the no-op methods
    below cover direct callers (CLI helpers, user code) that invoke the
    recording surface unconditionally.
    """

    enabled = False

    def count(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        yield

    def on_tick(self, tick: int) -> None:
        pass

    def on_send(self, record: "WordRecord") -> None:
        pass

    def on_fault(self, kind: str, amount: int = 1) -> None:
        pass

    def on_transport(self, kind: str, amount: int = 1) -> None:
        pass

    def on_recovery(self, kind: str, amount: int = 1) -> None:
        pass


def active_or_none(observer: Observer | None) -> Observer | None:
    """Collapse disabled observers to ``None`` — the hot-path contract.

    Runtimes call this once at construction; afterwards every call site
    is a plain ``if obs is not None`` check, which is what keeps the
    disabled configuration within noise of the uninstrumented baseline.
    """
    if observer is not None and observer.enabled:
        return observer
    return None
