"""Schema for machine-readable benchmark results.

Every bench writes ``benchmarks/results/<name>.json`` through
:func:`benchmarks._harness.publish`; CI and ``repro obs validate``
check the emitted documents against this schema.  Validation is
hand-rolled (the project carries zero runtime dependencies); it covers
exactly the structure the schema constant declares — required keys,
types, and the per-entry shape of word bills and percentiles.
"""

from __future__ import annotations

import json
from pathlib import Path

SCHEMA_VERSION = 1

BENCH_RESULT_SCHEMA: dict = {
    "schema_version": "int == 1",
    "name": "str (the bench module's results stem)",
    "git_rev": "str | null (HEAD at generation time)",
    "scenario": "object of JSON scalars/lists (the bench's parameters)",
    "word_bills": [
        {
            "label": "str",
            "n": "int",
            "t": "int",
            "f": "int",
            "words": "int",
            "messages": "int",
            "signatures": "int",
            "fallback": "bool",
        }
    ],
    "wall_clock": {
        "unit": "'seconds'",
        "repeats": "int >= 1",
        "percentiles": {"p50": "float", "p90": "float", "p99": "float"},
    },
    "sections": ["str (the human-readable report, one entry per section)"],
}
"""Documentation-as-data: the shape :func:`validate_bench_result`
enforces.  ``wall_clock`` may be ``null`` for benches that only count
words; ``word_bills`` may be empty for throughput-only benches."""

_BILL_FIELDS = {
    "label": str,
    "n": int,
    "t": int,
    "f": int,
    "words": int,
    "messages": int,
    "signatures": int,
    "fallback": bool,
}


def _scenario_errors(value: object, path: str) -> list[str]:
    """Scenario entries must be JSON-representable — including ``null``
    (an empty run's ``silent_ratio`` is legitimately ``None``, and it
    must round-trip rather than fail validation).  Anything a bench
    sneaks in that ``json.dumps`` would choke on is caught *here*, as a
    schema violation, instead of as a crash after the ``.txt`` artifact
    was already written."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return []
    if isinstance(value, list):
        errors: list[str] = []
        for i, item in enumerate(value):
            errors.extend(_scenario_errors(item, f"{path}[{i}]"))
        return errors
    if isinstance(value, dict):
        errors = []
        for key, item in value.items():
            if not isinstance(key, str):
                errors.append(f"{path} key {key!r} must be a string")
            else:
                errors.extend(_scenario_errors(item, f"{path}.{key}"))
        return errors
    return [f"{path} must be a JSON scalar/list/object, got {type(value).__name__}"]


def validate_bench_result(doc: object) -> list[str]:
    """Return every schema violation in ``doc`` (empty = valid)."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be an object, got {type(doc).__name__}"]
    if doc.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}"
        )
    for key, kind in (("name", str), ("scenario", dict), ("sections", list)):
        if not isinstance(doc.get(key), kind):
            errors.append(f"{key} must be a {kind.__name__}")
    if isinstance(doc.get("scenario"), dict):
        errors.extend(_scenario_errors(doc["scenario"], "scenario"))
    git_rev = doc.get("git_rev")
    if git_rev is not None and not isinstance(git_rev, str):
        errors.append("git_rev must be a string or null")
    if isinstance(doc.get("sections"), list):
        for i, section in enumerate(doc["sections"]):
            if not isinstance(section, str):
                errors.append(f"sections[{i}] must be a string")
    bills = doc.get("word_bills")
    if not isinstance(bills, list):
        errors.append("word_bills must be a list")
    else:
        for i, bill in enumerate(bills):
            if not isinstance(bill, dict):
                errors.append(f"word_bills[{i}] must be an object")
                continue
            for field, kind in _BILL_FIELDS.items():
                value = bill.get(field)
                # bool is an int subclass; keep the two distinct.
                ok = (
                    isinstance(value, bool)
                    if kind is bool
                    else isinstance(value, kind) and not isinstance(value, bool)
                )
                if not ok:
                    errors.append(
                        f"word_bills[{i}].{field} must be a {kind.__name__}, "
                        f"got {value!r}"
                    )
    clock = doc.get("wall_clock")
    if clock is not None:
        if not isinstance(clock, dict):
            errors.append("wall_clock must be an object or null")
        else:
            if clock.get("unit") != "seconds":
                errors.append("wall_clock.unit must be 'seconds'")
            repeats = clock.get("repeats")
            if not isinstance(repeats, int) or isinstance(repeats, bool) or repeats < 1:
                errors.append("wall_clock.repeats must be an int >= 1")
            percentiles = clock.get("percentiles")
            if not isinstance(percentiles, dict):
                errors.append("wall_clock.percentiles must be an object")
            else:
                for p in ("p50", "p90", "p99"):
                    if not isinstance(percentiles.get(p), (int, float)) or isinstance(
                        percentiles.get(p), bool
                    ):
                        errors.append(f"wall_clock.percentiles.{p} must be a number")
    return errors


def validate_bench_result_file(path: str | Path) -> list[str]:
    """Validate one ``results/*.json`` file; parse errors count."""
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    return [f"{path}: {error}" for error in validate_bench_result(doc)]
