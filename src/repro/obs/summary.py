"""Digest a recorded run into the paper's observability headlines.

Input is the JSON export written by ``repro run --export`` (see
:mod:`repro.analysis.export`), optionally carrying an ``obs`` snapshot
and a ``meta`` block.  Output is a plain dict — per-phase word counts,
the silent-phase ratio (the paper's adaptivity headline: phases with no
correct-process traffic cost nothing), fallback-entry skew across
processes (Lemma 18 bounds it by one round), and hot spots (observer
span timings when recorded, otherwise the busiest ticks).
"""

from __future__ import annotations

from typing import Any


def _phase_of(record: dict) -> int | None:
    phase = record.get("phase")
    return phase if isinstance(phase, int) else None


def summarize_export(raw: dict) -> dict:
    """Compute the observability summary of one exported run."""
    records = raw.get("records", [])
    events = raw.get("events", [])
    meta = raw.get("meta") or {}
    summary = raw.get("summary", {})

    words_by_phase: dict[int, int] = {}
    words_by_tick: dict[int, int] = {}
    for record in records:
        if not record.get("sender_correct", True):
            continue
        words = record.get("words", 1)
        phase = _phase_of(record)
        if phase is not None:
            words_by_phase[phase] = words_by_phase.get(phase, 0) + words
        tick = record.get("tick", 0)
        words_by_tick[tick] = words_by_tick.get(tick, 0) + words

    planned = meta.get("num_phases")
    if not isinstance(planned, int) or planned < 1:
        planned = max(words_by_phase, default=0)
    non_silent = sum(
        1 for phase in range(1, planned + 1) if words_by_phase.get(phase, 0) > 0
    )
    silent = planned - non_silent

    fallback_entry: dict[int, int] = {}
    for event in events:
        if event.get("name") == "fallback_started":
            pid = event.get("pid")
            if pid is not None and pid not in fallback_entry:
                fallback_entry[pid] = event.get("tick", 0)
    skew = (
        max(fallback_entry.values()) - min(fallback_entry.values())
        if fallback_entry
        else None
    )

    hot_ticks = sorted(
        words_by_tick.items(), key=lambda kv: (-kv[1], kv[0])
    )[:5]

    spans: list[dict] = []
    histograms = (raw.get("obs") or {}).get("metrics", {}).get("histograms", {})
    for name in sorted(histograms):
        if not name.startswith("span."):
            continue
        h = histograms[name]
        spans.append(
            {
                "name": name[len("span."):],
                "count": h.get("count", 0),
                "total": h.get("sum", 0.0),
                "max": h.get("max"),
            }
        )
    spans.sort(key=lambda s: (-s["total"], s["name"]))

    return {
        "totals": {
            "correct_words": summary.get("correct_words"),
            "correct_messages": summary.get("correct_messages"),
            "signatures": summary.get("signatures"),
            "ticks": raw.get("ticks"),
            "f": raw.get("f"),
        },
        "words_by_phase": {
            str(phase): words_by_phase[phase] for phase in sorted(words_by_phase)
        },
        "phases": {
            "planned": planned,
            "non_silent": non_silent,
            "silent": silent,
            "silent_ratio": (silent / planned) if planned else None,
        },
        "fallback": {
            "used": bool(fallback_entry) or bool(summary.get("fallback_used")),
            "entry_ticks": {
                str(pid): fallback_entry[pid] for pid in sorted(fallback_entry)
            },
            "entry_skew": skew,
        },
        "hot_spots": {
            "spans": spans,
            "busiest_ticks": [
                {"tick": tick, "words": words} for tick, words in hot_ticks
            ],
        },
    }


def _fmt(value: Any) -> str:
    return "-" if value is None else str(value)


def render_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_export`'s output."""
    totals = summary["totals"]
    phases = summary["phases"]
    fallback = summary["fallback"]
    lines = [
        f"run: f={_fmt(totals['f'])}, ticks={_fmt(totals['ticks'])}, "
        f"words={_fmt(totals['correct_words'])}, "
        f"messages={_fmt(totals['correct_messages'])}, "
        f"signatures={_fmt(totals['signatures'])}",
        "",
        "words by phase:",
    ]
    if summary["words_by_phase"]:
        for phase, words in summary["words_by_phase"].items():
            lines.append(f"  phase {phase:>3}  {words} words")
    else:
        lines.append("  (no phase-stamped traffic)")
    ratio = phases["silent_ratio"]
    lines += [
        "",
        f"phases: {phases['planned']} planned, {phases['non_silent']} "
        f"non-silent, {phases['silent']} silent"
        + (f" (silent ratio {ratio:.1%})" if ratio is not None else ""),
        "",
    ]
    if fallback["entry_ticks"]:
        lines.append(
            f"fallback: entered by {len(fallback['entry_ticks'])} processes, "
            f"entry skew {fallback['entry_skew']} tick(s)"
        )
        for pid, tick in fallback["entry_ticks"].items():
            lines.append(f"  p{pid} entered at tick {tick}")
    else:
        lines.append(
            "fallback: not entered"
            if not fallback["used"]
            else "fallback: used (no per-process entry events recorded)"
        )
    lines += ["", "hot spots:"]
    if summary["hot_spots"]["spans"]:
        for span in summary["hot_spots"]["spans"]:
            lines.append(
                f"  span {span['name']:<24} total={span['total']:.6g} "
                f"count={span['count']} max={_fmt(span['max'])}"
            )
    for entry in summary["hot_spots"]["busiest_ticks"]:
        lines.append(f"  tick {entry['tick']:>4}  {entry['words']} words")
    return "\n".join(lines)
