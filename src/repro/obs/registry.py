"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny — a protocol run produces at most a
few hundred distinct series — and deliberately deterministic: metric
names are sorted in every snapshot, histogram bucket boundaries are
fixed at creation (never derived from the data), and nothing in here
reads a clock or an RNG.  Two identical runs therefore produce
byte-identical snapshots, which is what lets tests assert on them and
lets the model checker run with instrumentation enabled without
perturbing its fingerprints.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

DEFAULT_BUCKETS: tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)
"""Generic magnitude buckets (word counts, queue depths, tick spans)."""

DURATION_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)
"""Wall-clock span buckets in seconds (micro- to half-minute scale)."""


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-boundary histogram: ``counts[i]`` holds observations
    ``<= buckets[i]``; the final slot is the overflow bucket.

    Boundaries are frozen at construction so the shape of the output
    never depends on the data — a requirement for deterministic,
    diffable snapshots.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ValueError(f"bucket boundaries must be sorted, got {self.buckets}")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric series, one instance per observed run."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(buckets=buckets)
        elif tuple(histogram.buckets) != tuple(buckets):
            raise ValueError(
                f"histogram {name!r} already exists with boundaries "
                f"{histogram.buckets}; refusing to re-bucket"
            )
        return histogram

    def snapshot(self) -> dict:
        """A JSON-compatible, deterministically ordered dump."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }
