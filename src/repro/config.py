"""System-wide configuration and quorum arithmetic.

The paper (Section 2) considers a static set of ``n`` processes with
resilience ``n = 2t + 1`` against an adaptive adversary corrupting up to
``t`` processes, of which ``0 <= f <= t`` are actually corrupted in a run.

This module centralizes every threshold the protocols rely on:

* ``t + 1``                  -- at least one correct process among any
  ``t + 1`` (used for idk-certificates and fallback certificates);
* ``ceil((n + t + 1) / 2)``  -- the paper's key quorum (Section 6): two
  such quorums intersect in at least one *correct* process, and the
  quorum is reachable whenever ``f < (n - t - 1) / 2``;
* ``(n - t - 1) / 2``        -- the fallback threshold: below it the
  adaptive path always succeeds (Lemma 6).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan
    from repro.obs.observer import Observer
    from repro.recovery.manager import RecoveryManager
    from repro.runtime.synchrony import SynchronyModel

ProcessId = int
"""Processes are identified by integers ``0 .. n-1``."""


def derive_rng(seed: int, tag: int) -> random.Random:
    """Derive an independent deterministic RNG stream from one run seed.

    Every randomized subsystem (inbox perturbation, the fault-injection
    layer, adversary placement) draws from its own ``seed ^ tag`` stream
    so that all perturbations of a run are reproducible from the single
    run seed, and adding a consumer never shifts another's stream.

    >>> derive_rng(7, 0x1B0C).random() == derive_rng(7, 0x1B0C).random()
    True
    >>> derive_rng(7, 0x1B0C).random() == derive_rng(8, 0x1B0C).random()
    False
    """
    return random.Random(seed ^ tag)


@dataclass(frozen=True)
class SystemConfig:
    """Static parameters of one protocol deployment.

    Parameters
    ----------
    n:
        Total number of processes.
    t:
        Maximum number of processes the adversary may corrupt.  The
        paper's protocols require optimal resilience ``n = 2t + 1``; we
        additionally accept any ``n >= 2t + 1`` (the reductions in
        Section 5 only need ``n >= 2t + 1``), and reject anything less.

    Example
    -------
    >>> config = SystemConfig.with_optimal_resilience(7)
    >>> config.t, config.small_quorum, config.commit_quorum
    (3, 4, 6)
    >>> config.fallback_failure_threshold   # Lemma 6's bound
    1.5
    >>> config.commit_quorum_reachable(1), config.commit_quorum_reachable(2)
    (True, False)
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.t < 0:
            raise ConfigurationError(f"t must be non-negative, got {self.t}")
        if self.n < 2 * self.t + 1:
            raise ConfigurationError(
                f"resilience requires n >= 2t + 1; got n={self.n}, t={self.t}"
            )

    # ------------------------------------------------------------------
    # Derived thresholds
    # ------------------------------------------------------------------

    @property
    def processes(self) -> range:
        """All process ids, ``0 .. n-1``."""
        return range(self.n)

    @property
    def small_quorum(self) -> int:
        """``t + 1`` — guaranteed to contain at least one correct process."""
        return self.t + 1

    @property
    def commit_quorum(self) -> int:
        """``ceil((n + t + 1) / 2)`` — the paper's intersecting quorum.

        Any two sets of this size drawn from ``n`` processes intersect in
        at least ``n + t + 1 - n = t + 1`` processes, hence in at least
        one correct process (Section 6, "first key observation").
        """
        return math.ceil((self.n + self.t + 1) / 2)

    @property
    def full_quorum(self) -> int:
        """``n`` — used by Algorithm 5's decide certificate."""
        return self.n

    @property
    def fallback_failure_threshold(self) -> float:
        """``(n - t - 1) / 2`` — Lemma 6's bound.

        If the actual failure count satisfies ``f < (n - t - 1) / 2`` the
        weak-BA fallback is never executed.
        """
        return (self.n - self.t - 1) / 2

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def leader_of_phase(self, j: int) -> ProcessId:
        """Rotating-leader rule ``leader <- p_{j mod n}`` (Alg. 2/4 line 14/30)."""
        return j % self.n

    def commit_quorum_reachable(self, f: int) -> bool:
        """Whether ``n - f`` correct processes suffice for the commit quorum."""
        return self.n - f >= self.commit_quorum

    def validate_failures(self, f: int) -> None:
        """Raise unless ``0 <= f <= t``."""
        if not 0 <= f <= self.t:
            raise ConfigurationError(
                f"actual failures must satisfy 0 <= f <= t={self.t}, got {f}"
            )

    @classmethod
    def with_optimal_resilience(cls, n: int) -> "SystemConfig":
        """Build a config with the largest tolerated ``t`` for ``n`` (``n=2t+1``).

        ``n`` must be odd so that ``n = 2t + 1`` holds exactly, matching
        the paper's model.
        """
        if n < 1 or n % 2 == 0:
            raise ConfigurationError(
                f"optimal resilience n = 2t + 1 needs odd n >= 1, got {n}"
            )
        return cls(n=n, t=(n - 1) // 2)


@dataclass(frozen=True)
class RunParameters:
    """Per-run knobs shared by the protocol drivers and benchmarks.

    Attributes
    ----------
    seed:
        Seed for all randomized choices in a simulation (adversary
        placement, message ordering where unspecified).  Two runs with
        identical configuration and seed are bit-identical.
    num_phases:
        Number of rotating-leader phases executed by Algorithm 1/3.  The
        paper's prose (and Lemma 6) use ``n``; the pseudocode of
        Algorithm 3 says ``t + 1`` (see DESIGN.md fidelity note 1).
        ``None`` selects the default, ``n``.
    max_ticks:
        Safety horizon for the simulator; a run exceeding it raises
        :class:`~repro.errors.TerminationViolation`.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injected between
        protocol sends and delivery (drops, duplicates, sub-``delta``
        delays, inbox reordering).  ``None`` runs the pristine network.
    observer:
        Optional :class:`~repro.obs.observer.Observer` threaded into the
        simulation for metrics/events/timing.  Telemetry only — a run's
        outcome is identical with or without one.
    recovery:
        Optional :class:`~repro.recovery.manager.RecoveryManager` giving
        every correct process a write-ahead log.  Required when the
        fault plan schedules crash/restart faults — a crashed process
        can only rejoin by replaying durable state.
    synchrony:
        Optional :class:`~repro.runtime.synchrony.SynchronyModel`
        governing delivery ticks and round advancement (``None`` = the
        paper's lockstep ``delta=1``).  Non-trivial models run the
        paced certificate-∨-timeout scheduler and are mutually
        exclusive with ``recovery``.
    """

    seed: int = 0
    num_phases: int | None = None
    max_ticks: int = 100_000
    fault_plan: "FaultPlan | None" = None
    observer: "Observer | None" = None
    recovery: "RecoveryManager | None" = None
    synchrony: "SynchronyModel | None" = None

    def phases_for(self, config: SystemConfig) -> int:
        """Resolve ``num_phases`` against a concrete configuration."""
        if self.num_phases is None:
            return config.n
        if self.num_phases < 1:
            raise ConfigurationError(
                f"num_phases must be >= 1, got {self.num_phases}"
            )
        return self.num_phases


DEFAULT_RUN_PARAMETERS = RunParameters()
