"""The soak trend artifact: ``benchmarks/results/soak.json``.

Shaped exactly like every other bench result
(:data:`repro.obs.schema.BENCH_RESULT_SCHEMA`), so ``repro obs
validate`` and the CI schema gate cover it with zero new machinery.
Word bills are campaign aggregates expressed in the scenario block (a
soak mixes deployments, so per-``(n, t, f)`` bill rows would be
fiction); wall-clock percentiles are the *per-instance commit
latencies* — p99 instance latency is the headline the ISSUE asks for.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

from repro.obs.schema import SCHEMA_VERSION, validate_bench_result
from repro.soak.fleet import SoakOutcome


def _git_rev() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _percentiles(samples: list[float]) -> dict | None:
    if not samples:
        return None
    ordered = sorted(samples)

    def pct(q: float) -> float:
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    return {
        "unit": "seconds",
        "repeats": len(ordered),
        "percentiles": {"p50": pct(0.50), "p90": pct(0.90), "p99": pct(0.99)},
    }


def render_outcome(outcome: SoakOutcome) -> str:
    """The human-readable campaign summary (also the .json sections)."""
    s = outcome.settings
    lines = [
        f"soak: profile={s.profile} seed={s.master_seed} "
        f"workers={s.workers} tick={s.tick_duration}",
        f"  instances committed: {outcome.instances} "
        f"({outcome.commits_per_sec:.2f}/s over {outcome.elapsed:.1f}s)",
        f"  protocol mix: "
        + ", ".join(
            f"{name} x{count}"
            for name, count in sorted(outcome.by_protocol.items())
        ),
        f"  chaos: {outcome.crashes} crashes, {outcome.rejoins} rejoins, "
        f"{outcome.resets} resets, {outcome.reconnects} reconnects",
        f"  words billed {outcome.words_billed} vs predicted "
        f"{outcome.words_predicted} "
        f"(delta {outcome.words_billed - outcome.words_predicted})",
        f"  tick-escalation retries: {outcome.retries}, "
        f"worker errors: {outcome.errors}",
        f"  violations: {len(outcome.violations)}",
    ]
    if outcome.latencies:
        clock = _percentiles(outcome.latencies)
        p = clock["percentiles"]
        lines.append(
            f"  instance latency: p50 {p['p50']:.3f}s, "
            f"p90 {p['p90']:.3f}s, p99 {p['p99']:.3f}s"
        )
    for violation in outcome.violations[:10]:
        lines.append(
            f"  [i{violation.index}] {violation.kind}: {violation.detail}"
        )
    if len(outcome.violations) > 10:
        lines.append(f"  ... {len(outcome.violations) - 10} more")
    return "\n".join(lines)


def soak_result_doc(outcome: SoakOutcome) -> dict:
    """The schema-shaped trend document for one campaign."""
    s = outcome.settings
    document = {
        "schema_version": SCHEMA_VERSION,
        "name": "soak",
        "git_rev": _git_rev(),
        "scenario": {
            "master_seed": s.master_seed,
            "chaos_profile": s.profile,
            "workers": s.workers,
            "tick_duration": s.tick_duration,
            "target_instances": s.instances,
            "target_duration": s.duration,
            "instances": outcome.instances,
            "elapsed_seconds": outcome.elapsed,
            "commits_per_sec": outcome.commits_per_sec,
            "by_protocol": dict(sorted(outcome.by_protocol.items())),
            "crashes": outcome.crashes,
            "rejoins": outcome.rejoins,
            "resets": outcome.resets,
            "reconnects": outcome.reconnects,
            "words_billed": outcome.words_billed,
            "words_predicted": outcome.words_predicted,
            "messages": outcome.messages,
            "retries": outcome.retries,
            "worker_errors": outcome.errors,
            "violations": len(outcome.violations),
            "violation_kinds": sorted(
                {v.kind for v in outcome.violations}
            ),
        },
        "word_bills": [],
        "wall_clock": _percentiles(outcome.latencies),
        "sections": [render_outcome(outcome)],
    }
    errors = validate_bench_result(document)
    if errors:
        raise ValueError(f"soak produced an invalid result doc: {errors}")
    return document


def write_soak_result(outcome: SoakOutcome, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(soak_result_doc(outcome), indent=1))
    return path
