"""The soak fleet coordinator.

``run_fleet`` drives W worker OS processes (a ``multiprocessing`` pool;
each worker runs whole TCP-cluster instances over real localhost
sockets) through a stream of chaos instances derived from one master
seed.  Submission is windowed — at most ``2 × workers`` instances are
outstanding — so a duration-bounded soak generates work lazily instead
of flooding the pool's task queue.

The **auditor thread** is exactly the ISSUE's always-on invariant
auditor: it consumes finished :class:`InstanceFacts` from a queue while
the coordinator keeps submitting, audits them in instance order
(:class:`SoakAuditor` buffers out-of-order arrivals), and dumps every
flagged instance as a replayable artifact the moment it is caught —
not at shutdown, so a violation found two minutes into a two-hour soak
is on disk two minutes in.

Stop condition: the fleet keeps launching instances until *every*
configured target is met — at least ``instances`` committed *and* at
least ``duration`` seconds elapsed (whichever is set; at least one must
be).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.soak.artifact import write_artifact
from repro.soak.auditor import SoakAuditor, SoakViolation
from repro.soak.plan import (
    DEFAULT_TICK,
    PROFILES,
    ChaosProfile,
    derive_instance,
)
from repro.soak.worker import InstanceFacts, run_instance

PROGRESS_INTERVAL = 2.0
"""Seconds between progress callbacks / observer gauge refreshes."""


@dataclass(frozen=True)
class SoakSettings:
    """One soak campaign's knobs (all derivable facts live in the plan)."""

    master_seed: int = 7
    profile: str = "mixed"
    workers: int = 3
    instances: int | None = 1000
    duration: float | None = None
    tick_duration: float = DEFAULT_TICK
    artifacts_dir: str | Path = "runs/soak-artifacts"
    inject: dict[int, str] = field(default_factory=dict)
    """Instance-index → sabotage tag, for auditor self-tests."""

    def chaos_profile(self) -> ChaosProfile:
        try:
            return PROFILES[self.profile]
        except KeyError:
            raise ValueError(
                f"unknown chaos profile {self.profile!r}; "
                f"choose from {sorted(PROFILES)}"
            ) from None


@dataclass
class SoakOutcome:
    """What one campaign did, aggregated for the report and the CLI."""

    settings: SoakSettings
    instances: int = 0
    elapsed: float = 0.0
    violations: list[SoakViolation] = field(default_factory=list)
    artifacts: list[Path] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    words_billed: int = 0
    words_predicted: int = 0
    messages: int = 0
    crashes: int = 0
    rejoins: int = 0
    resets: int = 0
    reconnects: int = 0
    retries: int = 0
    errors: int = 0
    by_protocol: dict[str, int] = field(default_factory=dict)

    @property
    def commits_per_sec(self) -> float:
        return self.instances / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def absorb(self, facts: InstanceFacts) -> None:
        self.instances += 1
        self.latencies.append(facts.latency)
        self.words_billed += max(facts.words_billed, 0)
        self.words_predicted += max(facts.words_predicted, 0)
        self.messages += facts.messages
        self.crashes += facts.crashes
        self.rejoins += facts.rejoins
        self.resets += facts.resets
        self.reconnects += facts.reconnects
        self.retries += facts.retries
        if facts.error is not None:
            self.errors += 1
        if facts.protocol:
            self.by_protocol[facts.protocol] = (
                self.by_protocol.get(facts.protocol, 0) + 1
            )


def _auditor_loop(
    inbox: "queue.Queue[InstanceFacts | None]",
    auditor: SoakAuditor,
    outcome: SoakOutcome,
    specs: dict[int, object],
    lock: threading.Lock,
    observer,
) -> None:
    """Body of the always-on auditor thread."""
    facts_store: dict[int, InstanceFacts] = {}
    while True:
        facts = inbox.get()
        if facts is None:
            return
        with lock:
            facts_store[facts.index] = facts
            found = auditor.submit(facts)
            outcome.absorb(facts)
            if found:
                flagged: dict[int, list[SoakViolation]] = {}
                for violation in found:
                    flagged.setdefault(violation.index, []).append(violation)
                for index, violations in flagged.items():
                    spec = specs.get(index)
                    if spec is None:
                        continue
                    path = write_artifact(
                        outcome.settings.artifacts_dir,
                        spec,
                        facts_store.get(index, facts),
                        violations,
                    )
                    outcome.artifacts.append(path)
            # Audited facts are done; only the out-of-order backlog
            # (>= next_index) still needs its facts retained.
            for index in [
                i for i in facts_store if i < auditor.next_index
            ]:
                del facts_store[index]
        if observer is not None:
            observer.count("soak.instances")
            if found:
                observer.count("soak.violations", len(found))
                observer.event(
                    "soak_violation",
                    index=facts.index,
                    kinds=",".join(sorted({v.kind for v in found})),
                )


def run_fleet(
    settings: SoakSettings,
    *,
    observer=None,
    progress: Callable[[str], None] | None = None,
) -> SoakOutcome:
    """Run one soak campaign; returns when every target is met and the
    last outstanding instance has been audited."""
    import multiprocessing

    if settings.instances is None and settings.duration is None:
        raise ValueError("set instances, duration, or both")
    if settings.workers < 1:
        raise ValueError(f"workers must be >= 1, got {settings.workers}")
    profile = settings.chaos_profile()

    auditor = SoakAuditor()
    outcome = SoakOutcome(settings=settings)
    inbox: "queue.Queue[InstanceFacts | None]" = queue.Queue()
    specs: dict[int, object] = {}
    lock = threading.Lock()
    thread = threading.Thread(
        target=_auditor_loop,
        args=(inbox, auditor, outcome, specs, lock, observer),
        name="soak-auditor",
        daemon=True,
    )
    thread.start()

    window = max(2, settings.workers * 2)
    started = time.monotonic()
    last_progress = started
    next_index = 0
    pending: dict[int, object] = {}

    def targets_met() -> bool:
        if (
            settings.instances is not None
            and next_index < settings.instances
        ):
            return False
        if (
            settings.duration is not None
            and time.monotonic() - started < settings.duration
        ):
            return False
        return True

    with multiprocessing.Pool(processes=settings.workers) as pool:
        while pending or not targets_met():
            while len(pending) < window and not targets_met():
                spec = derive_instance(
                    settings.master_seed,
                    next_index,
                    profile,
                    tick_duration=settings.tick_duration,
                    inject=settings.inject.get(next_index),
                )
                specs[next_index] = spec
                pending[next_index] = pool.apply_async(run_instance, (spec,))
                next_index += 1
            done = [i for i, a in pending.items() if a.ready()]
            if not done:
                time.sleep(0.005)
            for index in done:
                inbox.put(pending.pop(index).get())
            now = time.monotonic()
            if progress is not None and now - last_progress >= PROGRESS_INTERVAL:
                last_progress = now
                with lock:
                    elapsed = now - started
                    rate = outcome.instances / elapsed if elapsed else 0.0
                    progress(
                        f"[soak] {outcome.instances} instances "
                        f"({rate:.1f}/s), crashes {outcome.crashes}, "
                        f"rejoins {outcome.rejoins}, resets {outcome.resets}, "
                        f"violations {len(auditor.violations)}, "
                        f"elapsed {elapsed:.0f}s"
                    )
                if observer is not None:
                    observer.gauge("soak.rate", rate)
                    observer.gauge("soak.elapsed", elapsed)
    inbox.put(None)
    thread.join()
    outcome.violations = list(auditor.violations)
    outcome.elapsed = time.monotonic() - started
    if observer is not None:
        observer.event(
            "soak_finished",
            instances=outcome.instances,
            violations=len(outcome.violations),
        )
    return outcome
