"""Chaos soak fleet: long-horizon composition testing.

The paper's guarantees are stated per agreement instance; this package
proves them *in composition* — thousands of consecutive instances over
real TCP sockets in real worker OS processes, under continuous seeded
chaos (mid-phase crashes with WAL rejoin, connection resets, message
reordering / duplication / delay), with an always-on auditor checking
cross-instance invariants after every commit and dumping replayable
artifacts on violation.  Entry points:

* :func:`run_fleet` — run a campaign (``repro soak`` wraps this);
* :func:`derive_instance` — the pure master-seed → spec derivation;
* :func:`run_instance` — one instance, oracle + TCP, inside a worker;
* :class:`SoakAuditor` — the invariant auditor;
* :func:`replay_artifact` — re-run a violation artifact to the same
  verdict.
"""

from repro.soak.artifact import (
    load_artifact,
    replay_artifact,
    spec_from_json,
    spec_to_json,
    write_artifact,
)
from repro.soak.auditor import SoakAuditor, SoakViolation
from repro.soak.fleet import SoakOutcome, SoakSettings, run_fleet
from repro.soak.plan import (
    PROFILES,
    ChaosProfile,
    InstanceSpec,
    derive_instance,
    with_inject,
)
from repro.soak.report import (
    render_outcome,
    soak_result_doc,
    write_soak_result,
)
from repro.soak.worker import (
    INJECT_DOUBLE_BILL,
    INJECT_SKIP_REJOIN_DEDUP,
    InstanceFacts,
    run_instance,
)

__all__ = [
    "PROFILES",
    "ChaosProfile",
    "InstanceSpec",
    "InstanceFacts",
    "INJECT_DOUBLE_BILL",
    "INJECT_SKIP_REJOIN_DEDUP",
    "SoakAuditor",
    "SoakOutcome",
    "SoakSettings",
    "SoakViolation",
    "derive_instance",
    "load_artifact",
    "render_outcome",
    "replay_artifact",
    "run_fleet",
    "run_instance",
    "soak_result_doc",
    "spec_from_json",
    "spec_to_json",
    "with_inject",
    "write_artifact",
    "write_soak_result",
]
