"""One soak instance, end to end, inside one fleet worker process.

:func:`run_instance` is the unit the multiprocessing pool maps over.
It runs the spec **twice**:

1. on the tick simulator — the deterministic oracle, producing the
   *predicted* word bill and decision for this seed and fault plan;
2. over real localhost TCP sockets (:func:`repro.asyncnet.tcp
   .run_over_tcp`), with WAL-backed crash recovery when the plan
   crashes a process — producing the *measured* facts.

Both runtimes consume the identical seeded :class:`FaultPlan`, so any
divergence between them is a bug in the stack, not noise — that
equality is exactly what the auditor's no-double-billing and
decision-divergence invariants assert.  The one legitimate source of
divergence is wall-clock scheduling: a heavily loaded host can stall a
process past a round boundary, regrouping deliveries.  The worker
therefore retries a mismatched instance with a doubled (then
quadrupled) tick before letting the facts stand — the same escalation
``tests/test_tcp_transport.py`` uses — and reports the retry count so
the fleet can surface scheduler pressure.

Facts travel back to the coordinator as a picklable
:class:`InstanceFacts`; worker-side exceptions are folded into
``facts.error`` instead of poisoning the pool.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field

from repro.config import RunParameters, SystemConfig
from repro.soak.plan import CIVIT_SBA, SMR, WEAK_BA, InstanceSpec

TICK_ESCALATION = (1.0, 2.0, 4.0)
"""Tick multipliers tried before a billed-vs-predicted mismatch is
allowed to reach the auditor (absorbs host-scheduling stalls, which a
deterministic accounting bug by definition survives)."""

INJECT_DOUBLE_BILL = "double-bill"
"""Sabotage tag: bill one send twice, as a broken retransmission path
would — must trip the auditor's ``double-billing`` invariant."""
INJECT_SKIP_REJOIN_DEDUP = "skip-rejoin-dedup"
"""Sabotage tag: count a rejoined process's resumed frames as fresh
sends, as a skipped ``(sender, epoch)`` dedup window would — must trip
the ``wal-highwater`` invariant."""


@dataclass
class InstanceFacts:
    """Everything the auditor needs to know about one finished instance."""

    index: int
    protocol: str = ""
    n: int = 0
    t: int = 0
    seed: int = 0
    decision: str = ""
    predicted_decision: str = ""
    verify_ok: bool = False
    verify_summary: str = ""
    words_billed: int = 0
    words_predicted: int = 0
    ledger_recount: int = 0
    messages: int = 0
    signatures: int = 0
    ledger_sends: dict[int, int] = field(default_factory=dict)
    wal_sends: dict[int, int] = field(default_factory=dict)
    """Per-pid WAL send-highwater totals (crash instances only)."""
    phantom_sends: int = 0
    crashes: int = 0
    rejoins: int = 0
    resets: int = 0
    reconnects: int = 0
    ticks: int = 0
    latency: float = 0.0
    retries: int = 0
    inject: str | None = None
    error: str | None = None


def _decision_repr(result) -> str:
    return repr(
        [(pid, result.decisions.get(pid)) for pid in sorted(result.decisions)]
    )


def _validity_predicate(value: object) -> bool:
    return isinstance(value, str)


def _binary_input(proposal: str) -> int:
    """Map a derived weak-BA proposal string onto the civit binary
    domain (the spec derivation predates backends; reusing its strings
    keeps the replay contract to ``(master_seed, index, profile)``)."""
    return 0 if proposal == "v-even" else 1


def _run_sim(spec: InstanceSpec, wal_dir: str):
    """The oracle run: tick simulator, same seed and fault plan."""
    from repro.core.validity import ExternalValidity
    from repro.recovery.manager import RecoveryManager

    config = SystemConfig(n=spec.n, t=spec.t)
    recovery = None
    if spec.plan is not None and spec.plan.crashes:
        recovery = RecoveryManager(wal_dir)
    params = RunParameters(
        seed=spec.seed, fault_plan=spec.plan, recovery=recovery
    )
    if spec.protocol == WEAK_BA:
        from repro.core.weak_ba import run_weak_ba

        inputs = {pid: spec.inputs[pid] for pid in config.processes}
        return run_weak_ba(
            config,
            inputs,
            lambda suite, cfg: ExternalValidity(_validity_predicate),
            seed=spec.seed,
            params=params,
        )
    if spec.protocol == CIVIT_SBA:
        from repro.protocols.civit import run_civit_strong_ba

        inputs = {
            pid: _binary_input(spec.inputs[pid]) for pid in config.processes
        }
        return run_civit_strong_ba(
            config, inputs, seed=spec.seed, params=params
        )
    from repro.apps.smr import run_smr

    commands = {pid: spec.commands[pid] for pid in config.processes}
    return run_smr(
        config,
        commands,
        num_slots=spec.num_slots,
        seed=spec.seed,
        params=params,
    )


def _run_tcp(spec: InstanceSpec, tick_duration: float, wal_dir: str):
    """The measured run: real sockets, WAL recovery when crashing."""
    from repro.apps.smr import smr_replica_protocol
    from repro.asyncnet.tcp import run_over_tcp
    from repro.core.validity import ExternalValidity
    from repro.core.weak_ba import weak_ba_protocol
    from repro.recovery.manager import RecoveryManager

    config = SystemConfig(n=spec.n, t=spec.t)
    recovery = None
    if spec.plan is not None and spec.plan.crashes:
        recovery = RecoveryManager(wal_dir)
    if spec.protocol == WEAK_BA:
        validity = ExternalValidity(_validity_predicate)
        factories = {
            pid: (
                lambda ctx, value=spec.inputs[pid]: weak_ba_protocol(
                    ctx, value, validity
                )
            )
            for pid in config.processes
        }
    elif spec.protocol == CIVIT_SBA:
        from repro.protocols.civit import civit_strong_ba_protocol

        factories = {
            pid: (
                lambda ctx, value=_binary_input(
                    spec.inputs[pid]
                ): civit_strong_ba_protocol(ctx, value)
            )
            for pid in config.processes
        }
    else:
        factories = {
            pid: (
                lambda ctx, cmds=spec.commands[pid]: smr_replica_protocol(
                    ctx, cmds, spec.num_slots
                )
            )
            for pid in config.processes
        }
    result = asyncio.run(
        run_over_tcp(
            config,
            factories,
            seed=spec.seed,
            tick_duration=tick_duration,
            fault_plan=spec.plan,
            recovery=recovery,
        )
    )
    return result, recovery


def _collect(
    spec: InstanceSpec, result, recovery, predicted, retries: int
) -> InstanceFacts:
    from repro.recovery.wal import load_history
    from repro.verify.checker import verify_run, verify_under_plan

    ledger = result.ledger
    if spec.plan is not None:
        report = verify_under_plan(result, spec.plan)
    else:
        report = verify_run(result)
    ledger_sends = Counter(
        r.sender for r in ledger.records if r.sender_correct
    )
    wal_sends: dict[int, int] = {}
    phantom = 0
    crashes = rejoins = 0
    if recovery is not None:
        crashes = recovery.stats.crashes
        rejoins = recovery.stats.restarts
        phantom = sum(r.phantom_sends for r in recovery.stats.reports)
        for pid in recovery.pids():
            wal_sends[pid] = load_history(
                recovery.wal_dir / f"p{pid}"
            ).total_sends()
    return InstanceFacts(
        index=spec.index,
        protocol=spec.protocol,
        n=spec.n,
        t=spec.t,
        seed=spec.seed,
        decision=_decision_repr(result),
        predicted_decision=_decision_repr(predicted),
        verify_ok=report.ok,
        verify_summary=report.summary(),
        words_billed=ledger.correct_words,
        words_predicted=predicted.ledger.correct_words,
        ledger_recount=sum(
            r.words for r in ledger.records if r.sender_correct
        ),
        messages=ledger.correct_messages,
        signatures=ledger.signature_count(),
        ledger_sends=dict(ledger_sends),
        wal_sends=wal_sends,
        phantom_sends=phantom,
        crashes=crashes,
        rejoins=rejoins,
        resets=len(spec.plan.resets) if spec.plan is not None else 0,
        reconnects=result.trace.count("reconnected"),
        ticks=getattr(result, "ticks", 0),
        retries=retries,
        inject=spec.inject,
    )


def _sabotage(facts: InstanceFacts) -> InstanceFacts:
    """Apply the spec's injected accounting bug to otherwise-honest
    facts.  The tampering models the real failure mode it is named
    after, so the auditor test asserts the *specific* invariant fires.
    """
    if facts.inject == INJECT_DOUBLE_BILL:
        # One send entered the ledger twice: both the running total and
        # the recount grow, so only the prediction comparison can see it.
        facts.words_billed += 1
        facts.ledger_recount += 1
    elif facts.inject == INJECT_SKIP_REJOIN_DEDUP:
        # The rejoined incarnation's resumed frames were delivered (and
        # billed) again: the ledger runs ahead of the WAL highwater.
        pid = min(facts.wal_sends) if facts.wal_sends else 0
        extra = max(1, facts.rejoins)
        facts.ledger_sends[pid] = facts.ledger_sends.get(pid, 0) + extra
        facts.words_billed += extra
        facts.ledger_recount += extra
    return facts


def run_instance(spec: InstanceSpec) -> InstanceFacts:
    """Run one spec in this worker process and report the facts."""
    start = time.perf_counter()
    try:
        with tempfile.TemporaryDirectory(prefix="soak-") as tmp:
            predicted = _run_sim(spec, f"{tmp}/sim")
            facts = None
            for attempt, multiplier in enumerate(TICK_ESCALATION):
                result, recovery = _run_tcp(
                    spec, spec.tick_duration * multiplier, f"{tmp}/tcp{attempt}"
                )
                facts = _collect(spec, result, recovery, predicted, attempt)
                if (
                    facts.words_billed == facts.words_predicted
                    and facts.decision == facts.predicted_decision
                ):
                    break
        facts = _sabotage(facts)
    except Exception as exc:  # the pool must keep draining
        facts = InstanceFacts(
            index=spec.index,
            protocol=spec.protocol,
            inject=spec.inject,
            error="".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
        )
    facts.latency = time.perf_counter() - start
    return facts
