"""Replayable violation artifacts.

When the auditor flags an instance, the fleet writes one JSON document
that is sufficient to re-run that exact instance anywhere: the master
seed, the instance index, the chaos profile, and (belt and braces) the
fully serialized spec the coordinator actually derived.  Replay
re-derives the spec from ``(master_seed, index, profile)`` — proving
the derivation is still the pure function the artifact assumed — runs
it through the very same worker path, audits the fresh facts with a
fresh auditor, and reports whether the verdict reproduced.

The document is deliberately plain JSON (no pickles): artifacts end up
attached to CI runs and read by humans first.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.faults.plan import ConnectionReset, FaultPlan, ProcessCrash
from repro.soak.auditor import SoakAuditor, SoakViolation
from repro.soak.plan import PROFILES, InstanceSpec, derive_instance
from repro.soak.worker import InstanceFacts, run_instance

ARTIFACT_SCHEMA = "soak-violation/1"


def plan_to_json(plan: FaultPlan | None) -> dict | None:
    if plan is None:
        return None
    doc = asdict(plan)
    doc["lossy"] = sorted(plan.lossy)
    doc["slow"] = sorted(plan.slow)
    doc["resets"] = [asdict(r) for r in plan.resets]
    doc["crashes"] = [asdict(c) for c in plan.crashes]
    return doc


def plan_from_json(doc: dict | None) -> FaultPlan | None:
    if doc is None:
        return None
    doc = dict(doc)
    doc["lossy"] = frozenset(doc.get("lossy") or ())
    doc["slow"] = frozenset(doc.get("slow") or ())
    doc["resets"] = tuple(
        ConnectionReset(**r) for r in doc.get("resets", ())
    )
    doc["crashes"] = tuple(
        ProcessCrash(**c) for c in doc.get("crashes", ())
    )
    return FaultPlan(**doc)


def spec_to_json(spec: InstanceSpec) -> dict:
    doc = asdict(spec)
    doc["inputs"] = list(spec.inputs)
    doc["commands"] = [list(cmds) for cmds in spec.commands]
    doc["plan"] = plan_to_json(spec.plan)
    return doc


def spec_from_json(doc: dict) -> InstanceSpec:
    doc = dict(doc)
    doc["inputs"] = tuple(doc["inputs"])
    doc["commands"] = tuple(tuple(cmds) for cmds in doc["commands"])
    doc["plan"] = plan_from_json(doc.get("plan"))
    return InstanceSpec(**doc)


def write_artifact(
    directory: str | Path,
    spec: InstanceSpec,
    facts: InstanceFacts,
    violations: list[SoakViolation],
) -> Path:
    """Dump one flagged instance as ``soak-violation-i<index>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": ARTIFACT_SCHEMA,
        "master_seed": spec.master_seed,
        "index": spec.index,
        "profile": spec.profile,
        "spec": spec_to_json(spec),
        "facts": asdict(facts),
        "violations": [asdict(v) for v in violations],
    }
    path = directory / f"soak-violation-i{spec.index}.json"
    path.write_text(json.dumps(document, indent=1, default=repr))
    return path


def load_artifact(path: str | Path) -> dict:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: not a soak violation artifact "
            f"(schema {document.get('schema')!r}, want {ARTIFACT_SCHEMA!r})"
        )
    return document


def replay_artifact(path: str | Path) -> dict[str, Any]:
    """Re-run a violation artifact and re-audit the fresh facts.

    Returns a verdict dict: the fresh violations, the recorded ones,
    and ``reproduced`` — true when the fresh run trips the same
    invariant kinds at the same instance.  ``derivation_drift`` is set
    when ``derive_instance`` no longer produces the recorded spec (the
    recorded spec is still what gets replayed in that case, so the
    verdict stays meaningful across derivation changes).
    """
    document = load_artifact(path)
    spec = spec_from_json(document["spec"])
    profile = PROFILES.get(document["profile"])
    derivation_drift = True
    if profile is not None:
        rederived = derive_instance(
            document["master_seed"],
            document["index"],
            profile,
            tick_duration=spec.tick_duration,
            inject=spec.inject,
        )
        derivation_drift = rederived != spec
    facts = run_instance(spec)
    auditor = SoakAuditor(start_index=spec.index)
    fresh = auditor.submit(facts)
    recorded_kinds = sorted(v["kind"] for v in document["violations"])
    fresh_kinds = sorted(v.kind for v in fresh)
    return {
        "index": spec.index,
        "recorded_kinds": recorded_kinds,
        "fresh_kinds": fresh_kinds,
        "reproduced": fresh_kinds == recorded_kinds,
        "derivation_drift": derivation_drift,
        "facts": facts,
        "violations": fresh,
    }
