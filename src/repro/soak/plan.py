"""Deterministic chaos planning for the soak fleet.

One master seed determines *everything* the fleet does: which protocol
each instance runs, its deployment size, its inputs, and the exact
fault plan thrown at it.  ``derive_instance(master_seed, index,
profile)`` is a pure function, so a violation artifact only needs to
record ``(master_seed, index, profile)`` to replay the failing instance
bit-for-bit — the same property :func:`repro.config.derive_rng` gives
every other seeded subsystem in the repo.

A :class:`ChaosProfile` is the knob set the CLI exposes as
``--chaos-profile``: per-instance probabilities of a mid-phase crash
(with WAL rejoin) and injected connection resets, plus the ranges the
message-level fault rates (reorder / duplicate / delay / selective
loss) are drawn from.  The derivation never allocates more faulty
senders than ``t`` — crash and lossy pids share the resilience budget,
exactly as :meth:`FaultPlan.faulty <repro.faults.plan.FaultPlan>`
accounts them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import derive_rng
from repro.faults.plan import ConnectionReset, FaultPlan, ProcessCrash

_SOAK_TAG = 0x50A1
"""Domain tag for the per-instance derivation stream."""
_INDEX_MIX = 0x9E3779B1
"""Golden-ratio multiplier decorrelating consecutive instance indices."""

WEAK_BA = "weak_ba"
SMR = "smr"
CIVIT_SBA = "civit_strong_ba"
PROTOCOLS = (WEAK_BA, SMR, CIVIT_SBA)

DEFAULT_TICK = 0.03
"""Round length for soak instances — generous enough that localhost
scheduling jitter almost never moves a delivery across a round
boundary (the worker retries with a doubled tick when it does)."""


@dataclass(frozen=True)
class ChaosProfile:
    """Per-instance fault mix for one ``--chaos-profile`` setting."""

    name: str
    smr_weight: float
    """Probability an instance runs the SMR app instead of weak BA."""
    crash_weight: float
    """Probability of one mid-phase process crash with WAL rejoin."""
    reset_weight: float
    """Probability of injected TCP connection resets."""
    lossy_weight: float
    """Probability of one selectively-lossy sender (if budget allows)."""
    reorder: tuple[float, float]
    duplicate: tuple[float, float]
    delay: tuple[float, float]
    drop: tuple[float, float]
    max_delay: float
    n_choices: tuple[int, ...]
    civit_weight: float = 0.0
    """Probability a non-SMR instance runs the civit strong BA instead
    of the cohen weak BA.  **Stream compatibility:** the derivation only
    consumes randomness for this pick when the weight is positive, so
    every ``(master_seed, index)`` stream of the pre-backend profiles
    replays bit-for-bit (``tests/test_soak.py`` pins this)."""


PROFILES: dict[str, ChaosProfile] = {
    "calm": ChaosProfile(
        name="calm",
        smr_weight=0.3,
        crash_weight=0.0,
        reset_weight=0.0,
        lossy_weight=0.0,
        reorder=(0.0, 0.0),
        duplicate=(0.0, 0.0),
        delay=(0.0, 0.0),
        drop=(0.0, 0.0),
        max_delay=0.4,
        n_choices=(4,),
    ),
    "mixed": ChaosProfile(
        name="mixed",
        smr_weight=0.3,
        crash_weight=0.35,
        reset_weight=0.35,
        lossy_weight=0.0,
        reorder=(0.1, 0.4),
        duplicate=(0.0, 0.25),
        delay=(0.0, 0.3),
        drop=(0.0, 0.0),
        max_delay=0.4,
        n_choices=(4, 5),
    ),
    "backends": ChaosProfile(
        name="backends",
        smr_weight=0.2,
        crash_weight=0.35,
        reset_weight=0.35,
        lossy_weight=0.0,
        reorder=(0.1, 0.4),
        duplicate=(0.0, 0.25),
        delay=(0.0, 0.3),
        drop=(0.0, 0.0),
        max_delay=0.4,
        n_choices=(4, 5),
        civit_weight=0.5,
    ),
    "heavy": ChaosProfile(
        name="heavy",
        smr_weight=0.3,
        crash_weight=0.6,
        reset_weight=0.6,
        lossy_weight=0.3,
        reorder=(0.2, 0.5),
        duplicate=(0.1, 0.35),
        delay=(0.1, 0.35),
        drop=(0.05, 0.15),
        max_delay=0.4,
        n_choices=(4, 5),
    ),
}


@dataclass(frozen=True)
class InstanceSpec:
    """Everything one soak instance needs, picklable for the pool.

    ``seed`` drives the crypto suite and the fault plan of the instance
    itself; ``(master_seed, index, profile)`` suffice to re-derive the
    whole spec (see :func:`derive_instance`), which is what violation
    artifacts record.
    """

    index: int
    master_seed: int
    profile: str
    protocol: str
    n: int
    t: int
    seed: int
    inputs: tuple[str, ...]
    """Weak-BA proposals, one per pid (unused for SMR)."""
    commands: tuple[tuple[str, ...], ...]
    """SMR command schedule, one tuple per pid (unused for weak BA)."""
    num_slots: int
    plan: FaultPlan | None
    tick_duration: float
    inject: str | None = None
    """Deliberate accounting sabotage for auditor tests — see
    :mod:`repro.soak.worker` for the recognized tags."""


def derive_instance(
    master_seed: int,
    index: int,
    profile: ChaosProfile,
    *,
    tick_duration: float = DEFAULT_TICK,
    inject: str | None = None,
) -> InstanceSpec:
    """The pure spec-derivation function: same arguments, same spec."""
    rng = derive_rng(master_seed, _SOAK_TAG ^ (index * _INDEX_MIX))
    protocol = SMR if rng.random() < profile.smr_weight else WEAK_BA
    if (
        profile.civit_weight > 0
        and protocol == WEAK_BA
        and rng.random() < profile.civit_weight
    ):
        protocol = CIVIT_SBA
    n = profile.n_choices[rng.randrange(len(profile.n_choices))]
    t = (n - 1) // 2
    seed = rng.randrange(2**31)

    if rng.random() < 0.6:
        inputs = tuple("v-common" for _ in range(n))
    else:
        inputs = tuple(
            "v-even" if rng.random() < 0.5 else "v-odd" for _ in range(n)
        )
    num_slots = rng.randint(1, 2)
    commands = tuple((f"set k{pid} v{pid}",) for pid in range(n))

    faulty_budget = t
    crashes: tuple[ProcessCrash, ...] = ()
    if faulty_budget > 0 and rng.random() < profile.crash_weight:
        pid = rng.randrange(n)
        at = rng.randint(2, 5)
        crashes = (
            ProcessCrash(
                pid=pid, at_tick=at, restart_tick=at + rng.randint(2, 4)
            ),
        )
        faulty_budget -= 1
    lossy: frozenset[int] = frozenset()
    drop_rate = 0.0
    if faulty_budget > 0 and rng.random() < profile.lossy_weight:
        crashed = {c.pid for c in crashes}
        candidates = [pid for pid in range(n) if pid not in crashed]
        lossy = frozenset({candidates[rng.randrange(len(candidates))]})
        drop_rate = rng.uniform(*profile.drop)
    resets: tuple[ConnectionReset, ...] = ()
    if rng.random() < profile.reset_weight:
        for _ in range(rng.randint(1, 2)):
            sender = rng.randrange(n)
            receiver = rng.randrange(n - 1)
            if receiver >= sender:
                receiver += 1
            resets += (
                ConnectionReset(
                    tick=rng.randint(1, 6), sender=sender, receiver=receiver
                ),
            )

    plan: FaultPlan | None = FaultPlan(
        seed=seed,
        drop_rate=drop_rate,
        duplicate_rate=rng.uniform(*profile.duplicate),
        delay_rate=rng.uniform(*profile.delay),
        reorder_rate=rng.uniform(*profile.reorder),
        max_delay=profile.max_delay,
        lossy=lossy,
        resets=resets,
        crashes=crashes,
    )
    if (
        not crashes
        and not resets
        and not lossy
        and plan.duplicate_rate == 0.0
        and plan.delay_rate == 0.0
        and plan.reorder_rate == 0.0
        and plan.drop_rate == 0.0
    ):
        plan = None

    return InstanceSpec(
        index=index,
        master_seed=master_seed,
        profile=profile.name,
        protocol=protocol,
        n=n,
        t=t,
        seed=seed,
        inputs=inputs,
        commands=commands,
        num_slots=num_slots,
        plan=plan,
        tick_duration=tick_duration,
        inject=inject,
    )


def with_inject(spec: InstanceSpec, inject: str | None) -> InstanceSpec:
    """The same instance with sabotage toggled (used by auditor tests)."""
    return replace(spec, inject=inject)
