"""The always-on soak auditor: cross-instance invariants as data.

The fleet feeds every finished instance's :class:`InstanceFacts` into
one :class:`SoakAuditor`.  Facts may arrive out of order (the pool is
unordered); the auditor buffers and audits strictly in instance order,
because two of its invariants are *cross*-instance: the cumulative
billed-word counter must be monotone, and the instance sequence must be
gapless — a silently dropped instance is itself a harness bug.

Per-instance invariants (each maps to the subsystem that owns it):

* ``verify``            — agreement / validity / termination, from
  :mod:`repro.verify.checker`'s verdict on the TCP run;
* ``decision-divergence`` — the TCP decision differs from the tick
  simulator's prediction for the identical seed and fault plan;
* ``double-billing``    — measured words differ from the simulator's
  predicted bill (:mod:`repro.metrics.words` is billed per protocol
  send, so retransmits and wire duplicates must cost nothing);
* ``ledger-drift``      — the ledger's running total disagrees with a
  recount of its own records (the running-total optimization leaked);
* ``wal-highwater``     — a pid's durable send highwater
  (:mod:`repro.recovery`) disagrees with its ledger sends;
* ``instance-error``    — the worker raised instead of producing facts.

``facts.phantom_sends`` (sends a replayed generator attempted during
its down window) is deliberately *not* an invariant: suppressing those
sends is how down-window replay works — the live cluster never saw
them, and :func:`repro.recovery.replay.replay_generator` already raises
on real divergence (a send-count mismatch outside the down window),
which surfaces here as ``instance-error``.  The first soak campaigns
flagged phantom sends and immediately "caught" perfectly healthy
crash-rejoin instances; the count stays in the facts as diagnostics.

Violations are frozen records; the fleet turns each flagged instance
into a replayable JSON artifact (see :mod:`repro.soak.artifact`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.soak.worker import InstanceFacts


@dataclass(frozen=True)
class SoakViolation:
    """One invariant violation at one instance."""

    index: int
    kind: str
    detail: str


@dataclass
class SoakAuditor:
    """Audits instance facts in order, accumulating cross-instance state."""

    start_index: int = 0
    next_index: int = field(init=False)
    cumulative_billed: int = 0
    instances_audited: int = 0
    violations: list[SoakViolation] = field(default_factory=list)
    _pending: dict[int, InstanceFacts] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.next_index = self.start_index

    def submit(self, facts: InstanceFacts) -> list[SoakViolation]:
        """Buffer ``facts``; audit every instance now contiguous.

        Returns the violations found by *this* call (possibly from
        several buffered instances that just became auditable).
        """
        if facts.index < self.next_index or facts.index in self._pending:
            found = [
                SoakViolation(
                    index=facts.index,
                    kind="instance-sequence",
                    detail=f"instance {facts.index} reported twice",
                )
            ]
            self.violations.extend(found)
            return found
        self._pending[facts.index] = facts
        found = []
        while self.next_index in self._pending:
            found.extend(self._audit(self._pending.pop(self.next_index)))
            self.next_index += 1
        return found

    @property
    def backlog(self) -> int:
        """Facts waiting for an earlier instance to arrive."""
        return len(self._pending)

    def _audit(self, facts: InstanceFacts) -> list[SoakViolation]:
        found: list[SoakViolation] = []

        def flag(kind: str, detail: str) -> None:
            found.append(
                SoakViolation(index=facts.index, kind=kind, detail=detail)
            )

        if facts.error is not None:
            flag("instance-error", facts.error)
        else:
            if not facts.verify_ok:
                flag("verify", facts.verify_summary)
            if facts.decision != facts.predicted_decision:
                flag(
                    "decision-divergence",
                    f"tcp decided {facts.decision} but the simulator "
                    f"predicted {facts.predicted_decision}",
                )
            if facts.words_billed != facts.words_predicted:
                flag(
                    "double-billing",
                    f"billed {facts.words_billed} words, predicted "
                    f"{facts.words_predicted} (retries={facts.retries})",
                )
            if facts.ledger_recount != facts.words_billed:
                flag(
                    "ledger-drift",
                    f"running total {facts.words_billed} != record recount "
                    f"{facts.ledger_recount}",
                )
            if facts.words_billed < 0:
                flag(
                    "ledger-monotonicity",
                    f"instance billed {facts.words_billed} words; the "
                    "cumulative ledger would move backwards",
                )
            for pid in sorted(facts.wal_sends):
                wal = facts.wal_sends[pid]
                billed = facts.ledger_sends.get(pid, 0)
                if wal != billed:
                    flag(
                        "wal-highwater",
                        f"p{pid} WAL records {wal} sends but the ledger "
                        f"billed {billed}",
                    )
        self.cumulative_billed += max(facts.words_billed, 0)
        self.instances_audited += 1
        self.violations.extend(found)
        return found
