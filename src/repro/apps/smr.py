"""Mini state-machine replication on top of adaptive BB.

A replicated log is a sequence of *slots*; slot ``s`` is an adaptive
Byzantine Broadcast instance with rotating sender ``p_{s mod n}``.  All
replicas run the slots in lockstep, append every non-``⊥`` decision to
their log, and apply it to a deterministic state machine (here a small
key-value store).  BB's agreement gives identical logs; BB's validity
gives every correct sender's command a guaranteed slot; and BB's
*adaptive* communication makes the common failure-free slots cost
``O(n)`` words instead of the classical quadratic/cubic — the paper's
motivation in systems terms.

Commands are tuples:

* ``("set", key, value)``
* ``("del", key)``
* ``("noop",)``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from repro.config import ProcessId, SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.values import BOTTOM
from repro.runtime.context import ProcessContext
from repro.runtime.pool import MessagePool


@dataclass
class KeyValueStore:
    """The deterministic state machine replicated by the log.

    >>> store = KeyValueStore()
    >>> store.apply(("set", "a", 1)); store.apply(("del", "a"))
    >>> store.apply(("set", "b", 2)); store.data
    {'b': 2}
    >>> store.snapshot()
    (('b', 2),)
    """

    data: dict[str, Any] = field(default_factory=dict)
    applied: int = 0

    def apply(self, command: object) -> None:
        """Apply one committed command; unknown shapes are no-ops (a
        Byzantine sender may commit garbage — state must stay defined)."""
        self.applied += 1
        if not isinstance(command, tuple) or not command:
            return
        if command[0] == "set" and len(command) == 3:
            key, value = command[1], command[2]
            if isinstance(key, str):
                self.data[key] = value
        elif command[0] == "del" and len(command) == 2:
            if isinstance(command[1], str):
                self.data.pop(command[1], None)

    def snapshot(self) -> tuple:
        """Hashable digest of the current state (for agreement checks)."""
        return tuple(sorted(self.data.items(), key=lambda kv: kv[0]))


@dataclass(frozen=True)
class SmrOutcome:
    """A replica's final view: the committed log and resulting state."""

    log: tuple
    state: tuple
    applied: int


def smr_replica_protocol(
    ctx: ProcessContext,
    my_commands: Sequence[object],
    num_slots: int,
) -> Generator[None, None, SmrOutcome]:
    """Run ``num_slots`` BB slots; propose ``my_commands`` in this
    replica's sender slots (``("noop",)`` when it has nothing queued).
    """
    with ctx.scope("smr"):
        store = KeyValueStore()
        log: list[object] = []
        queue = list(my_commands)
        pool = MessagePool()  # shared across slots (early-delivery safety)
        for slot in range(num_slots):
            sender = slot % ctx.config.n
            value: object = None
            if ctx.pid == sender:
                value = queue.pop(0) if queue else ("noop",)
            decision = yield from byzantine_broadcast_protocol(
                ctx, sender, value, session=f"smr/{slot}", pool=pool
            )
            if decision != BOTTOM and decision is not None:
                log.append(decision)
                store.apply(decision)
                ctx.emit("smr_committed", slot=slot, command=repr(decision))
            else:
                ctx.emit("smr_empty_slot", slot=slot)
        return SmrOutcome(
            log=tuple(log), state=store.snapshot(), applied=store.applied
        )


def run_smr(
    config: SystemConfig,
    commands: dict[ProcessId, Sequence[object]],
    num_slots: int,
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    max_ticks: int = 500_000,
    params: "RunParameters | None" = None,
):
    """Drive a full SMR run over the simulator.

    ``commands[pid]`` is the queue replica ``pid`` proposes from in its
    sender slots.  Returns the
    :class:`~repro.runtime.result.RunResult`; each correct replica's
    decision is its :class:`SmrOutcome`.  ``params`` threads the shared
    run knobs (fault plan with crash/restart faults, observer, recovery
    manager) through the long-lived service — a crashed replica replays
    its WAL, re-derives its log and store, and rejoins mid-slot.
    """
    from repro.config import RunParameters
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters(max_ticks=max_ticks)
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(protocol="smr", num_slots=num_slots)
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            queue = tuple(commands.get(pid, ()))
            if params.recovery is not None:
                params.recovery.describe_process(pid, commands=queue)
            simulation.add_process(
                pid,
                lambda ctx, q=queue: smr_replica_protocol(ctx, q, num_slots),
            )
    return simulation.run()
