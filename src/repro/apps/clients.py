"""Client workloads for the SMR app: batching and exactly-once commits.

A more realistic replication deployment than
:func:`repro.apps.smr.smr_replica_protocol`'s one-command slots:

* **clients** issue :class:`Command`s (identified by ``(client, seq)``)
  and, as real clients do, submit each command to *several* replicas
  (their home replica might be slow or faulty);
* **replicas** batch pending commands into slot proposals
  (``batch_size`` per slot) and deduplicate: a command already in the
  committed log is dropped from every queue, so duplicated submissions
  commit **exactly once**;
* slots still run adaptive BB with rotating senders, so the whole log
  inherits agreement/validity/adaptivity from the paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterable, Sequence

from repro.apps.smr import KeyValueStore, SmrOutcome
from repro.config import ProcessId, SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.values import BOTTOM
from repro.runtime.context import ProcessContext
from repro.runtime.pool import MessagePool


@dataclass(frozen=True)
class Command:
    """An exactly-once client command."""

    client: str
    seq: int
    op: tuple

    @property
    def key(self) -> tuple:
        return (self.client, self.seq)


@dataclass(frozen=True)
class ClientWorkload:
    """One client's stream of commands and its submission fan-out."""

    client: str
    ops: tuple
    replicas: tuple[ProcessId, ...]
    """Replicas this client submits to (duplicates are expected and
    resolved by commit-time dedup)."""

    def commands(self) -> list[Command]:
        return [
            Command(client=self.client, seq=seq, op=op)
            for seq, op in enumerate(self.ops)
        ]


def assign_queues(
    workloads: Iterable[ClientWorkload], config: SystemConfig
) -> dict[ProcessId, list[Command]]:
    """Build each replica's initial pending queue from the workloads."""
    queues: dict[ProcessId, list[Command]] = {
        pid: [] for pid in config.processes
    }
    for workload in workloads:
        for command in workload.commands():
            for replica in workload.replicas:
                queues[replica].append(command)
    return queues


def batched_smr_replica_protocol(
    ctx: ProcessContext,
    pending: Sequence[Command],
    num_slots: int,
    batch_size: int = 4,
) -> Generator[None, None, SmrOutcome]:
    """SMR with batching and exactly-once dedup.

    Each sender slot proposes up to ``batch_size`` still-uncommitted
    commands from its queue; every replica drops committed commands
    from its own queue, so a command submitted to three replicas still
    commits exactly once.
    """
    with ctx.scope("smr"):
        store = KeyValueStore()
        log: list[Command] = []
        committed: set[tuple] = set()
        queue: list[Command] = list(pending)
        pool = MessagePool()

        for slot in range(num_slots):
            sender = slot % ctx.config.n
            proposal: object = None
            if ctx.pid == sender:
                batch = tuple(
                    c for c in queue if c.key not in committed
                )[:batch_size]
                proposal = batch
            decision = yield from byzantine_broadcast_protocol(
                ctx, sender, proposal, session=f"smr/{slot}", pool=pool
            )
            if decision == BOTTOM or decision is None:
                ctx.emit("smr_empty_slot", slot=slot)
                continue
            if not isinstance(decision, tuple):
                continue  # a Byzantine sender committed garbage: skip
            for item in decision:
                if not isinstance(item, Command) or item.key in committed:
                    continue
                committed.add(item.key)
                log.append(item)
                store.apply(item.op)
            ctx.emit("smr_committed_batch", slot=slot, size=len(decision))
            queue = [c for c in queue if c.key not in committed]

        return SmrOutcome(
            log=tuple(log), state=store.snapshot(), applied=store.applied
        )


def run_batched_smr(
    config: SystemConfig,
    workloads: Sequence[ClientWorkload],
    num_slots: int,
    *,
    batch_size: int = 4,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    max_ticks: int = 500_000,
):
    """Drive a batched, client-fed SMR run over the simulator."""
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    queues = assign_queues(workloads, config)
    simulation = Simulation(config, seed=seed, max_ticks=max_ticks)
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            pending = tuple(queues[pid])
            simulation.add_process(
                pid,
                lambda ctx, q=pending: batched_smr_replica_protocol(
                    ctx, q, num_slots, batch_size=batch_size
                ),
            )
    return simulation.run()
