"""Pipelined SMR: ``window`` Byzantine-Broadcast slots in flight at once.

The sequential SMR (:mod:`repro.apps.smr`) pays one full BB latency per
slot.  Since slots are independent BB instances with disjoint sessions,
:func:`repro.runtime.concurrency.join` can run a *window* of them
concurrently: the wave completes in roughly one BB's worth of rounds,
cutting log latency by ~``window`` while leaving the protocol code —
and all of its guarantees — untouched.

Commands are deduplicated at commit time exactly as in the batched SMR,
so fan-out submission still commits exactly once even when two slots in
the same wave carry the same command.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.apps.clients import ClientWorkload, Command, assign_queues
from repro.apps.smr import KeyValueStore, SmrOutcome
from repro.config import ProcessId, SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.values import BOTTOM
from repro.runtime.concurrency import join
from repro.runtime.context import ProcessContext


def pipelined_smr_replica_protocol(
    ctx: ProcessContext,
    pending: Sequence[Command],
    num_slots: int,
    *,
    window: int = 4,
    batch_size: int = 4,
) -> Generator[None, None, SmrOutcome]:
    """Run ``num_slots`` BB slots in waves of ``window``."""
    with ctx.scope("smr"):
        store = KeyValueStore()
        log: list[Command] = []
        committed: set[tuple] = set()
        queue: list[Command] = list(pending)

        for wave_start in range(0, num_slots, window):
            slots = list(range(wave_start, min(wave_start + window, num_slots)))

            # Choose this replica's proposals for its sender slots up
            # front (committed commands from earlier waves are excluded;
            # two same-wave slots led by this replica get disjoint
            # batches).
            reserved: set[tuple] = set()
            proposals: dict[int, tuple] = {}
            for slot in slots:
                if slot % ctx.config.n != ctx.pid:
                    continue
                batch = []
                for command in queue:
                    if command.key in committed or command.key in reserved:
                        continue
                    batch.append(command)
                    reserved.add(command.key)
                    if len(batch) >= batch_size:
                        break
                proposals[slot] = tuple(batch)

            branches = [
                byzantine_broadcast_protocol(
                    ctx,
                    slot % ctx.config.n,
                    proposals.get(slot),
                    session=f"smr/{slot}",
                )
                for slot in slots
            ]
            decisions = yield from join(ctx, branches)

            for slot, decision in zip(slots, decisions):
                if decision == BOTTOM or not isinstance(decision, tuple):
                    ctx.emit("smr_empty_slot", slot=slot)
                    continue
                fresh = 0
                for item in decision:
                    if not isinstance(item, Command) or item.key in committed:
                        continue
                    committed.add(item.key)
                    log.append(item)
                    store.apply(item.op)
                    fresh += 1
                ctx.emit("smr_committed_batch", slot=slot, size=fresh)
            queue = [c for c in queue if c.key not in committed]

        return SmrOutcome(
            log=tuple(log), state=store.snapshot(), applied=store.applied
        )


def run_pipelined_smr(
    config: SystemConfig,
    workloads: Sequence[ClientWorkload],
    num_slots: int,
    *,
    window: int = 4,
    batch_size: int = 4,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    max_ticks: int = 500_000,
    params: "RunParameters | None" = None,
):
    """Drive a pipelined SMR run over the simulator.

    ``params`` threads the shared run knobs (fault plan with scheduled
    crash/restart faults, observer, recovery manager) through the
    pipeline — a crashed replica replays its WAL and rejoins with its
    in-flight window reconstructed."""
    from repro.config import RunParameters
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    queues = assign_queues(workloads, config)
    params = params or RunParameters(max_ticks=max_ticks)
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(
            protocol="pipelined_smr", num_slots=num_slots,
            window=window, batch_size=batch_size,
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            pending = tuple(queues[pid])
            simulation.add_process(
                pid,
                lambda ctx, q=pending: pipelined_smr_replica_protocol(
                    ctx, q, num_slots, window=window, batch_size=batch_size
                ),
            )
    return simulation.run()
