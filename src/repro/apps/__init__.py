"""Applications built on the paper's primitives.

:mod:`repro.apps.smr` — a total-order replicated state machine driven
by repeated adaptive Byzantine Broadcast instances, the "key component
in many distributed systems" use case the paper's introduction
motivates.
"""

from repro.apps.clients import (
    ClientWorkload,
    Command,
    batched_smr_replica_protocol,
    run_batched_smr,
)
from repro.apps.pipelined import (
    pipelined_smr_replica_protocol,
    run_pipelined_smr,
)
from repro.apps.smr import KeyValueStore, run_smr, smr_replica_protocol

__all__ = [
    "KeyValueStore",
    "run_smr",
    "smr_replica_protocol",
    "Command",
    "ClientWorkload",
    "batched_smr_replica_protocol",
    "run_batched_smr",
    "pipelined_smr_replica_protocol",
    "run_pipelined_smr",
]
