"""Protocol-aware Byzantine attacks.

These behaviors speak the protocols' wire formats and exercise their
specific safety arguments:

* :class:`WeakBaTeasingLeader` — proposes in its phase but never
  completes it, maximizing honest work per Byzantine leader (the
  ``O(n(f+1))`` adaptivity cost is *tight* under this adversary);
* :class:`WeakBaSplitFinalizeLeader` — runs the full leader logic but
  delivers the finalize certificate to a chosen subset only, creating
  the decided/undecided split the help round must repair (Section 6's
  "a Byzantine leader causes the single correct leader to decide and
  not initiate its phase" scenario);
* :class:`GcEquivocator` — claims different values to different halves
  of a graded-consensus committee, attacking graded agreement;
* :class:`DolevStrongEquivocatingSender` — the classical two-chain
  sender attack;
* :class:`BbVettingHelpSpammer` — a BB vetting leader that always asks
  for help, inflating the adaptive cost by ``O(n)`` per Byzantine
  phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ProcessId
from repro.core.byzantine_broadcast import BbHelpReq
from repro.core.weak_ba import (
    FALLBACK_STATEMENT,
    WbaCommitCert,
    WbaDecideShare,
    WbaFallbackCert,
    WbaFinalize,
    WbaHelpReq,
    WbaPropose,
    WbaVote,
    commit_label,
    fallback_label,
    finalize_label,
)
from repro.crypto.certificates import CertificateCollector
from repro.fallback.dolev_strong import initial_chain
from repro.fallback.graded_consensus import GcClaim
from repro.runtime.byzantine import ByzantineApi

WBA_PHASE_ROUNDS = 6
"""Ticks per weak-BA phase (see ``repro.core.weak_ba._invoke_phase``)."""

BB_PHASE_ROUNDS = 3
"""Ticks per BB vetting phase (see ``repro.core.byzantine_broadcast``)."""


def weak_ba_phase_of(pid: ProcessId, n: int) -> int:
    """The first phase (1-based) led by ``pid`` under ``p_{j mod n}``."""
    return pid if pid != 0 else n


@dataclass
class WeakBaTeasingLeader:
    """Proposes a valid value in its phase, then abandons the phase.

    Honest processes spend a vote message each answering the proposal;
    nothing completes, so they stay undecided until a correct leader's
    phase.  With ``f`` such leaders scheduled before the first correct
    one, the honest word cost grows linearly in ``f`` — the matching
    behavior for the ``O(n(f+1))`` bound.
    """

    value: object
    session: str = "wba"
    start_tick: int = 0

    def step(self, api: ByzantineApi) -> None:
        phase = weak_ba_phase_of(api.pid, api.config.n)
        if api.now == self.start_tick + WBA_PHASE_ROUNDS * (phase - 1):
            api.broadcast(
                WbaPropose(session=self.session, phase=phase, value=self.value)
            )


@dataclass
class WeakBaSplitFinalizeLeader:
    """Completes its phase as leader but finalizes only to ``recipients``.

    The recipients decide inside the phases; everyone else reaches the
    help round undecided.  Agreement then hinges on Lemma 15 (unique
    finalize certificate) plus the help answers.
    """

    value: object
    recipients: frozenset[ProcessId]
    session: str = "wba"
    start_tick: int = 0
    _collected: dict = field(default_factory=dict, init=False)

    def step(self, api: ByzantineApi) -> None:
        config = api.config
        phase = weak_ba_phase_of(api.pid, config.n)
        base = self.start_tick + WBA_PHASE_ROUNDS * (phase - 1)
        quorum = config.commit_quorum
        if api.now == base:
            api.broadcast(
                WbaPropose(session=self.session, phase=phase, value=self.value)
            )
        elif api.now == base + 2:
            collector = CertificateCollector(
                api.suite,
                commit_label(self.session),
                quorum,
                ("commit", self.value, phase),
            )
            for envelope in api.inbox:
                payload = envelope.payload
                if isinstance(payload, WbaVote) and payload.phase == phase:
                    collector.add(payload.partial)
            # The whole corrupted coalition's shares push past the quorum.
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        commit_label(self.session),
                        quorum,
                        ("commit", self.value, phase),
                    )
                )
            if collector.complete:
                api.broadcast(
                    WbaCommitCert(
                        session=self.session,
                        phase=phase,
                        value=self.value,
                        proof=collector.certificate(),
                        level=phase,
                    )
                )
        elif api.now == base + 4:
            collector = CertificateCollector(
                api.suite,
                finalize_label(self.session),
                quorum,
                ("finalized", self.value, phase),
            )
            for envelope in api.inbox:
                payload = envelope.payload
                if isinstance(payload, WbaDecideShare) and payload.phase == phase:
                    collector.add(payload.partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        finalize_label(self.session),
                        quorum,
                        ("finalized", self.value, phase),
                    )
                )
            if collector.complete:
                certificate = collector.certificate()
                for pid in self.recipients:
                    api.send(
                        pid,
                        WbaFinalize(
                            session=self.session,
                            phase=phase,
                            value=self.value,
                            proof=certificate,
                        ),
                    )


@dataclass
class WeakBaEquivocatingLeader:
    """The quorum-ablation attack: a Byzantine leader drives *two*
    conflicting values through a full phase, finalizing each to half
    the processes.

    With the paper's ``⌈(n+t+1)/2⌉`` quorum this cannot produce two
    commit certificates (any two quorums share a correct voter, and
    correct processes vote once per phase), so the attack fizzles.
    With the ablated ``t+1`` quorum, ``⌈honest/2⌉`` votes plus the
    adversary's own shares complete *both* certificates and agreement
    breaks — the measurement behind
    ``benchmarks/bench_ablation_quorum.py``.
    """

    value_a: object
    value_b: object
    quorum: int
    session: str = "wba"
    start_tick: int = 0

    def _halves(self, api: ByzantineApi) -> tuple[list[ProcessId], list[ProcessId]]:
        others = [p for p in api.config.processes if p != api.pid]
        mid = len(others) // 2
        return others[:mid], others[mid:]

    def step(self, api: ByzantineApi) -> None:
        phase = weak_ba_phase_of(api.pid, api.config.n)
        base = self.start_tick + WBA_PHASE_ROUNDS * (phase - 1)
        half_a, half_b = self._halves(api)
        plan = {**{p: self.value_a for p in half_a},
                **{p: self.value_b for p in half_b}}
        if api.now == base:
            for pid, value in plan.items():
                api.send(
                    pid, WbaPropose(session=self.session, phase=phase, value=value)
                )
        elif api.now == base + 2:
            self._relay_certificates(
                api, phase, plan, WbaVote, commit_label(self.session),
                lambda value: ("commit", value, phase),
                lambda value, cert: WbaCommitCert(
                    session=self.session, phase=phase, value=value,
                    proof=cert, level=phase,
                ),
            )
        elif api.now == base + 4:
            self._relay_certificates(
                api, phase, plan, WbaDecideShare, finalize_label(self.session),
                lambda value: ("finalized", value, phase),
                lambda value, cert: WbaFinalize(
                    session=self.session, phase=phase, value=value, proof=cert
                ),
            )

    def _relay_certificates(
        self, api, phase, plan, payload_type, label, statement, wrap
    ) -> None:
        for value in (self.value_a, self.value_b):
            collector = CertificateCollector(
                api.suite, label, self.quorum, statement(value)
            )
            for envelope in api.inbox:
                message = envelope.payload
                if (
                    isinstance(message, payload_type)
                    and message.phase == phase
                    and message.value == value
                ):
                    collector.add(message.partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice, label, self.quorum, statement(value)
                    )
                )
            if collector.complete:
                certificate = collector.certificate()
                targets = [p for p, v in plan.items() if v == value]
                for pid in targets:
                    api.send(pid, wrap(value, certificate))


@dataclass
class WeakBaCommitOnlyLeader:
    """Completes the commit round of its phase (everyone updates their
    ``commit`` triple to its value) but withholds the finalize round.

    Exercises Algorithm 4's lock machinery across phases: once honest
    processes are committed, they answer later proposals with their
    commit info (line 36) instead of voting, so a later honest leader
    relays the maximal-level commitment (line 39) and the *committed*
    value — not the later leader's own proposal — gets finalized.
    """

    value: object
    session: str = "wba"
    start_tick: int = 0

    def step(self, api: ByzantineApi) -> None:
        config = api.config
        phase = weak_ba_phase_of(api.pid, config.n)
        base = self.start_tick + WBA_PHASE_ROUNDS * (phase - 1)
        quorum = config.commit_quorum
        if api.now == base:
            api.broadcast(
                WbaPropose(session=self.session, phase=phase, value=self.value)
            )
        elif api.now == base + 2:
            collector = CertificateCollector(
                api.suite,
                commit_label(self.session),
                quorum,
                ("commit", self.value, phase),
            )
            for envelope in api.inbox:
                payload = envelope.payload
                if isinstance(payload, WbaVote) and payload.phase == phase:
                    collector.add(payload.partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        commit_label(self.session),
                        quorum,
                        ("commit", self.value, phase),
                    )
                )
            if collector.complete:
                api.broadcast(
                    WbaCommitCert(
                        session=self.session,
                        phase=phase,
                        value=self.value,
                        proof=collector.certificate(),
                        level=phase,
                    )
                )
        # ... and never sends the finalize certificate.


@dataclass
class FallbackCertDealer:
    """The fallback-synchronization attack (Section 6's "the adversary
    adds t help_req signatures of its own"): collect the (fewer than
    t+1) honest help requests, top the certificate up with corrupted
    shares, and deal it to a *single* correct process.

    With the paper's echo rule the victim re-broadcasts the certificate
    and every correct process enters the fallback within delta.  With
    echoing ablated, only the victim runs the fallback — the
    measurement behind ``benchmarks/bench_ablation_fallback_sync.py``.
    """

    target: ProcessId
    session: str = "wba"
    _dealt: bool = field(default=False, init=False)

    def step(self, api: ByzantineApi) -> None:
        if self._dealt:
            return
        config = api.config
        requests = [
            e.payload
            for e in api.inbox
            if isinstance(e.payload, WbaHelpReq)
            and e.payload.session == self.session
        ]
        if not requests:
            return
        collector = CertificateCollector(
            api.suite,
            fallback_label(self.session),
            config.small_quorum,
            FALLBACK_STATEMENT,
        )
        for request in requests:
            collector.add(request.partial)
        for accomplice in api.corrupted:
            collector.add(
                api.suite.partial_for_certificate(
                    accomplice,
                    fallback_label(self.session),
                    config.small_quorum,
                    FALLBACK_STATEMENT,
                )
            )
        if collector.complete:
            api.send(
                self.target,
                WbaFallbackCert(
                    session=self.session,
                    certificate=collector.certificate(),
                    value=None,
                    proof=None,
                    proof_phase=0,
                ),
            )
            self._dealt = True
            api.emit("fallback_cert_dealt", target=self.target)


@dataclass
class StrongBaEquivocatingLeader:
    """A Byzantine Algorithm-5 leader that proposes 0 to half the
    processes and 1 to the other half.

    The attack cannot split decisions: the decide certificate needs all
    ``n`` signatures (line 11), and the halves sign decide messages for
    *different* values, so neither certificate completes.  Everyone
    falls back; the test asserts no fast decision and eventual
    agreement — the measured content of Lemma 26.
    """

    session: str = "sba"

    def step(self, api: ByzantineApi) -> None:
        from repro.core.strong_ba import SbaPropose, propose_label

        if api.now != 1:
            return
        config = api.config
        certs = {}
        for value in (0, 1):
            collector = CertificateCollector(
                api.suite,
                propose_label(self.session),
                config.small_quorum,
                ("propose", value),
            )
            for envelope in api.inbox:
                payload = envelope.payload
                if (
                    type(payload).__name__ == "SbaInput"
                    and payload.value == value
                ):
                    collector.add(payload.partial)
            for accomplice in api.corrupted:
                collector.add(
                    api.suite.partial_for_certificate(
                        accomplice,
                        propose_label(self.session),
                        config.small_quorum,
                        ("propose", value),
                    )
                )
            if collector.complete:
                certs[value] = collector.certificate()
        if len(certs) < 2:
            return
        others = [p for p in config.processes if p != api.pid]
        for index, pid in enumerate(others):
            value = index % 2
            api.send(
                pid,
                SbaPropose(
                    session=self.session, value=value, proof=certs[value]
                ),
            )
        api.emit("sba_leader_equivocated")


@dataclass
class GcEquivocator:
    """Sends conflicting graded-consensus claims to the two halves of
    the committee — the canonical attack on graded agreement."""

    session: str
    members: tuple[ProcessId, ...]
    value_a: object
    value_b: object
    start_tick: int = 0

    def step(self, api: ByzantineApi) -> None:
        if api.now != self.start_tick:
            return
        quorum = len(self.members) // 2 + 1
        member_set = frozenset(self.members)
        for index, member in enumerate(self.members):
            value = self.value_a if index % 2 == 0 else self.value_b
            partial = api.suite.partial_for_certificate(
                api.pid, f"gcv:{self.session}", quorum, value, member_set
            )
            api.send(
                member,
                GcClaim(session=self.session, value=value, partial=partial),
            )


@dataclass
class DolevStrongLateRelease:
    """The chain-stretching worst case for Dolev–Strong.

    The Byzantine sender and its ``t-1`` accomplices privately extend
    the signature chain through every corrupted process and only
    release it to the honest processes in round ``t`` — the last round
    in which relaying is still mandatory.  Every honest process then
    relays an all-but-maximal chain to everyone, making each message
    carry ``t+1`` signatures: *words* blow up to ``Θ(n^2 t)`` while
    *messages* stay ``Θ(n^2)``.  This is the regime behind Section 4's
    remark that Dolev–Reischuk-style algorithms need "a cubic number of
    words".

    Install on the sender only; it signs for all corrupted processes
    (the adversary coordinates).
    """

    value: object

    def step(self, api: ByzantineApi) -> None:
        t = api.config.t
        if api.now != max(0, t - 1):
            return
        from repro.fallback.dolev_strong import initial_chain

        chain = initial_chain(api.signer, self.value)
        links = [pid for pid in sorted(api.corrupted) if pid != api.pid]
        for accomplice in links[: t - 1]:
            chain = chain.extended(api.suite.signer(accomplice))
        for pid in api.config.processes:
            if pid not in api.corrupted:
                api.send(pid, chain)


@dataclass
class DolevStrongEquivocatingSender:
    """The Byzantine Dolev–Strong sender: two signed chains, split
    between the halves of the process set."""

    value_a: object
    value_b: object

    def step(self, api: ByzantineApi) -> None:
        if api.now != 0:
            return
        for pid in api.config.processes:
            if pid == api.pid:
                continue
            value = self.value_a if pid % 2 == 0 else self.value_b
            api.send(pid, initial_chain(api.signer, value))


@dataclass
class BbVettingHelpSpammer:
    """A BB vetting leader that always broadcasts ``help_req`` in its
    phase (even though Byzantine processes "know" the value), forcing
    every correct process to answer — ``O(n)`` honest words per
    Byzantine phase, the tight adaptive cost for BB."""

    session: str = "bb"
    start_tick: int = 1  # BB's dissemination round precedes the phases

    def step(self, api: ByzantineApi) -> None:
        phase = weak_ba_phase_of(api.pid, api.config.n)
        if api.now == self.start_tick + BB_PHASE_ROUNDS * (phase - 1):
            api.broadcast(BbHelpReq(session=self.session, phase=phase))
