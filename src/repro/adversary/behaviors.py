"""Byzantine behavior objects.

A behavior is stepped once per tick with a
:class:`~repro.runtime.byzantine.ByzantineApi` giving it the corrupted
process's deliveries, rushing visibility, signing key, and send
capability.  Behaviors here are protocol-agnostic; protocol-targeted
attacks (e.g. equivocating *weak-BA leaders*) live next to the protocol
tests that exercise them, built from these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.signatures import sign_value
from repro.runtime.byzantine import ByzantineApi


@dataclass
class SilentBehavior:
    """Sends nothing, ever — an immediately crashed process.

    Crash failures *during* a run are modeled by
    :meth:`repro.runtime.scheduler.Simulation.schedule_corruption` with
    this behavior: the process follows the protocol honestly until the
    crash tick, then falls silent.

    A dataclass like every other behavior: the model checker's
    ``"behavior"`` fingerprint hashes ``repr(behavior)``, so a default
    object repr (which embeds a memory address) would make pruning
    nondeterministic across explorations.
    """

    def step(self, api: ByzantineApi) -> None:
        return None


@dataclass
class DelayedSilence:
    """Arbitrary behavior until ``silent_from``, silence afterwards."""

    inner: object
    silent_from: int

    def step(self, api: ByzantineApi) -> None:
        if api.now < self.silent_from:
            self.inner.step(api)


@dataclass
class EchoBehavior:
    """Reflects every delivered payload back to its sender.

    A cheap liveness stressor: protocols must ignore out-of-context
    messages.
    """

    def step(self, api: ByzantineApi) -> None:
        for envelope in api.inbox:
            api.send(envelope.sender, envelope.payload)


@dataclass
class EquivocatingSender:
    """A Byzantine BB sender: signs ``value_a`` for half the processes
    and ``value_b`` for the rest (at tick 0), then stays silent.

    Used against Algorithm 1: the sender-signed values are *both* valid
    under ``BB_valid``, so agreement must come from the weak BA.
    """

    value_a: object
    value_b: object
    make_payload: Callable[[object, object], object] | None = None
    """Optional payload wrapper ``(signed_value, api) -> payload``."""

    def step(self, api: ByzantineApi) -> None:
        if api.now != 0:
            return
        for pid in api.config.processes:
            if pid == api.pid:
                continue
            value = self.value_a if pid % 2 == 0 else self.value_b
            signed = sign_value(api.signer, value)
            payload = (
                self.make_payload(signed, api)
                if self.make_payload is not None
                else signed
            )
            api.send(pid, payload)


@dataclass
class FallbackForcer:
    """Floods ``help_req``-shaped payloads to push protocols toward
    their fallback path even when honest processes have decided.

    ``payload_factory(api)`` builds the protocol-specific help request;
    it is sent to everyone for ``duration`` ticks starting at ``start``.
    """

    payload_factory: Callable[[ByzantineApi], object]
    start: int = 0
    duration: int = 1_000_000

    def step(self, api: ByzantineApi) -> None:
        if self.start <= api.now < self.start + self.duration:
            payload = self.payload_factory(api)
            if payload is not None:
                api.broadcast(payload)


@dataclass
class GarbageSpammer:
    """Broadcasts malformed payloads every tick.

    Protocol robustness check: validators must reject garbage without
    raising, and word accounting must not attribute adversary words to
    correct processes.
    """

    every: int = 1
    payloads: tuple = (
        "garbage",
        ("tuple", "of", "junk"),
        42,
        None,
    )
    _counter: int = field(default=0, init=False)

    def step(self, api: ByzantineApi) -> None:
        if api.now % self.every != 0:
            return
        payload = self.payloads[self._counter % len(self.payloads)]
        self._counter += 1
        if payload is not None:
            api.broadcast(payload)
