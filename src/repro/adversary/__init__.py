"""Adversary framework: pluggable Byzantine strategies.

The adversary of the paper (Section 2) is adaptive and fully Byzantine:
it may corrupt up to ``t`` processes mid-run, crash them, silence them,
or have them send arbitrary messages (it can never forge signatures of
correct processes).  This package provides:

* :mod:`repro.adversary.behaviors` — per-process behavior objects the
  scheduler steps each tick (silence, crash-after, equivocation,
  fallback forcing, commit splitting, ...);
* :mod:`repro.adversary.strategies` — run-level strategies that choose
  *who* to corrupt and *which* behavior each corrupted process runs.
"""

from repro.adversary.behaviors import (
    DelayedSilence,
    EchoBehavior,
    EquivocatingSender,
    FallbackForcer,
    GarbageSpammer,
    SilentBehavior,
)
from repro.adversary.strategies import (
    AdversaryStrategy,
    CrashStrategy,
    SilentStrategy,
    StaticStrategy,
)

__all__ = [
    "SilentBehavior",
    "DelayedSilence",
    "EchoBehavior",
    "EquivocatingSender",
    "FallbackForcer",
    "GarbageSpammer",
    "AdversaryStrategy",
    "StaticStrategy",
    "SilentStrategy",
    "CrashStrategy",
]
