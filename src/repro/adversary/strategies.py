"""Run-level adversary strategies: who is corrupted, and how.

A strategy turns ``(config, f, seed)`` into a concrete corruption plan:
which processes start Byzantine (with which behaviors) and which honest
processes get corrupted mid-run (the adaptive adversary).  Drivers and
benchmarks apply a plan to a :class:`~repro.runtime.scheduler.Simulation`
with :func:`apply_strategy`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.adversary.behaviors import SilentBehavior
from repro.config import ProcessId, SystemConfig
from repro.errors import ConfigurationError
from repro.runtime.scheduler import Simulation


@dataclass(frozen=True)
class CorruptionPlan:
    """A concrete corruption schedule for one run."""

    initial: dict[ProcessId, object]
    """Processes Byzantine from tick 0, with their behaviors."""

    scheduled: tuple[tuple[int, ProcessId, object], ...] = ()
    """Mid-run corruptions: ``(tick, pid, behavior)`` (adaptive adversary)."""

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        return frozenset(self.initial) | frozenset(
            pid for _, pid, _ in self.scheduled
        )

    @property
    def f(self) -> int:
        return len(self.corrupted)


class AdversaryStrategy(ABC):
    """Chooses corruption targets and behaviors for a run."""

    @abstractmethod
    def plan(self, config: SystemConfig, f: int, seed: int = 0) -> CorruptionPlan:
        """Build a plan corrupting exactly ``f`` processes."""

    @staticmethod
    def _pick_targets(
        config: SystemConfig,
        f: int,
        seed: int,
        avoid: frozenset[ProcessId] = frozenset(),
    ) -> list[ProcessId]:
        config.validate_failures(f)
        candidates = [p for p in config.processes if p not in avoid]
        if f > len(candidates):
            raise ConfigurationError(
                f"cannot corrupt {f} processes while avoiding {sorted(avoid)}"
            )
        rng = random.Random(seed)
        return sorted(rng.sample(candidates, f))


@dataclass
class StaticStrategy(AdversaryStrategy):
    """Corrupt ``f`` random processes from tick 0 with ``behavior_factory``.

    ``avoid`` shields specific processes (e.g. keep the BB sender
    correct to test the validity property).
    """

    behavior_factory: Callable[[ProcessId], object]
    avoid: frozenset[ProcessId] = frozenset()

    def plan(self, config: SystemConfig, f: int, seed: int = 0) -> CorruptionPlan:
        targets = self._pick_targets(config, f, seed, self.avoid)
        return CorruptionPlan(
            initial={pid: self.behavior_factory(pid) for pid in targets}
        )


@dataclass
class SilentStrategy(AdversaryStrategy):
    """``f`` processes crashed from the start (the common failure mode)."""

    avoid: frozenset[ProcessId] = frozenset()

    def plan(self, config: SystemConfig, f: int, seed: int = 0) -> CorruptionPlan:
        targets = self._pick_targets(config, f, seed, self.avoid)
        return CorruptionPlan(
            initial={pid: SilentBehavior() for pid in targets}
        )


@dataclass
class CrashStrategy(AdversaryStrategy):
    """Adaptive crashes: ``f`` processes run honestly, then crash at
    staggered ticks chosen in ``[first_tick, last_tick]``."""

    first_tick: int = 1
    last_tick: int = 20
    avoid: frozenset[ProcessId] = frozenset()

    def plan(self, config: SystemConfig, f: int, seed: int = 0) -> CorruptionPlan:
        targets = self._pick_targets(config, f, seed, self.avoid)
        rng = random.Random(seed ^ 0x5EED)
        scheduled = tuple(
            (rng.randint(self.first_tick, self.last_tick), pid, SilentBehavior())
            for pid in targets
        )
        return CorruptionPlan(initial={}, scheduled=scheduled)


def apply_strategy(
    simulation: Simulation,
    plan: CorruptionPlan,
    protocol_factory: Callable[[ProcessId], object],
) -> None:
    """Populate ``simulation``: Byzantine per ``plan``, honest otherwise.

    ``protocol_factory(pid)`` must return the correct-process protocol
    factory (a callable taking the context) for process ``pid``.
    """
    for pid in simulation.config.processes:
        if pid in plan.initial:
            simulation.add_byzantine(pid, plan.initial[pid])
        else:
            simulation.add_process(pid, protocol_factory(pid))
    for tick, pid, behavior in plan.scheduled:
        simulation.schedule_corruption(tick, pid, behavior)
