"""Word-complexity accounting (the paper's Section 2 complexity model)."""

from repro.metrics.words import (
    WordLedger,
    WordRecord,
    payload_phase,
    payload_signatures,
    payload_words,
)

__all__ = [
    "WordLedger",
    "WordRecord",
    "payload_words",
    "payload_signatures",
    "payload_phase",
]
