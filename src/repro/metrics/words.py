"""The paper's word-complexity model and the per-run word ledger.

Section 2: *"a word contains a constant number of signatures and values
from a finite domain, and each message contains at least 1 word.  The
communication complexity of a protocol is the maximum number of words
sent by all correct processes, across all runs."*

Accordingly:

* every protocol payload implements ``words()`` returning its size in
  words (signatures and threshold signatures are one word each;
  signature *chains*, as in Dolev–Strong, are as many words as links);
* the :class:`WordLedger` records every network send, attributing it to
  the sender, the sender's protocol scope (for Figure 1's composition
  accounting), and whether the sender was correct;
* complexity figures use :meth:`WordLedger.correct_words` — words sent
  by correct processes only, exactly the paper's measure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.config import ProcessId
from repro.errors import WordAccountingError


def payload_words(payload: object) -> int:
    """Word size of a payload.

    Payloads are expected to implement ``words()``; anything else (e.g. a
    bare string used in a test) counts as the minimum, one word.

    A ``words()`` result below 1 is a broken accounting method, not a
    small message — the paper's model says *every* message carries at
    least one word (Section 2), so silently clamping would mask the bug
    in whichever payload under-reports.  Raise instead.
    """
    words = getattr(payload, "words", None)
    if callable(words):
        count = int(words())
        if count < 1:
            raise WordAccountingError(
                f"{type(payload).__name__}.words() returned {count}; every "
                "message is at least 1 word (Section 2) — fix the payload's "
                "accounting instead of relying on a clamp"
            )
        return count
    return 1


def payload_signatures(payload: object) -> int:
    """Individual signatures *contained* in a payload.

    A threshold certificate is one word but contains its whole quorum's
    signatures; payloads advertise this via ``signatures()``.  Payloads
    without the method carry **zero** signatures: bare strings and plain
    test payloads are unsigned, and every signed protocol payload
    declares its count explicitly.  (Historically the fallback was one
    signature per word, which inflated signature totals for unsigned
    payloads — see tests/test_metrics.py for the regression.)
    """
    signatures = getattr(payload, "signatures", None)
    if callable(signatures):
        return max(0, int(signatures()))
    return 0


def payload_phase(payload: object) -> int | None:
    """The protocol phase a payload belongs to, when it advertises one.

    Phase-structured payloads (weak BA, BB vetting, adaptive strong BA)
    carry a ``phase`` field; the ledger records it so per-phase word
    accounting — the paper's adaptivity measure — needs no replay.
    """
    phase = getattr(payload, "phase", None)
    return phase if isinstance(phase, int) else None


@dataclass(frozen=True)
class WordRecord:
    """One network send, as seen by the ledger."""

    tick: int
    sender: ProcessId
    receiver: ProcessId
    words: int
    signatures: int
    scope: str
    payload_type: str
    sender_correct: bool
    phase: int | None = None
    """Protocol phase of the payload, when it advertises one — the unit
    of the paper's adaptivity accounting (silent phases cost nothing)."""


@dataclass
class WordLedger:
    """Accumulates every send of a run and answers complexity queries.

    ``records`` is append-only through :meth:`record`, which keeps the
    running ``correct_words`` total up to date — the model checker reads
    that total every tick, so recomputing it by summing the whole list
    (the pre-optimization behavior) made fingerprinting quadratic in run
    length.
    """

    records: list[WordRecord] = field(default_factory=list)
    _correct_words: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Constructing a ledger from pre-built records (the run-export
        # loader does) must seed the running total too.
        self._correct_words = sum(
            r.words for r in self.records if r.sender_correct
        )

    def record(
        self,
        *,
        tick: int,
        sender: ProcessId,
        receiver: ProcessId,
        payload: object,
        scope: str,
        sender_correct: bool,
    ) -> WordRecord | None:
        if sender == receiver:
            # Local self-delivery is not network communication.
            return None
        record = WordRecord(
            tick=tick,
            sender=sender,
            receiver=receiver,
            words=payload_words(payload),
            signatures=payload_signatures(payload),
            scope=scope,
            payload_type=type(payload).__name__,
            sender_correct=sender_correct,
            phase=payload_phase(payload),
        )
        self.records.append(record)
        if sender_correct:
            self._correct_words += record.words
        return record

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    @property
    def correct_words(self) -> int:
        """Total words sent by correct processes — the paper's measure."""
        return self._correct_words

    @property
    def total_words(self) -> int:
        """All words, including the adversary's (diagnostics only)."""
        return sum(r.words for r in self.records)

    @property
    def correct_messages(self) -> int:
        """Message count from correct processes (Dolev–Reischuk's measure)."""
        return sum(1 for r in self.records if r.sender_correct)

    def words_by_scope(self, correct_only: bool = True) -> dict[str, int]:
        """Words attributed to each protocol scope (Figure 1 accounting).

        A send made while the sender was inside nested scopes (e.g.
        ``bb/weak_ba/fallback``) is attributed to the full scope path.
        """
        totals: dict[str, int] = defaultdict(int)
        for r in self.records:
            if correct_only and not r.sender_correct:
                continue
            totals[r.scope] += r.words
        return dict(totals)

    def words_by_phase(self, correct_only: bool = True) -> dict[int, int]:
        """Words attributed to each protocol phase (adaptivity accounting).

        Only records whose payload advertises a ``phase`` contribute; a
        phase that never appears sent nothing — exactly the paper's
        silent phase.
        """
        totals: dict[int, int] = defaultdict(int)
        for r in self.records:
            if correct_only and not r.sender_correct:
                continue
            if r.phase is not None:
                totals[r.phase] += r.words
        return dict(totals)

    def words_by_payload_type(self, correct_only: bool = True) -> dict[str, int]:
        totals: dict[str, int] = defaultdict(int)
        for r in self.records:
            if correct_only and not r.sender_correct:
                continue
            totals[r.payload_type] += r.words
        return dict(totals)

    def words_by_sender(self, correct_only: bool = True) -> dict[ProcessId, int]:
        totals: dict[ProcessId, int] = defaultdict(int)
        for r in self.records:
            if correct_only and not r.sender_correct:
                continue
            totals[r.sender] += r.words
        return dict(totals)

    def signature_count(self, correct_only: bool = True) -> int:
        """Lower-bound accounting: individual signatures transmitted.

        Dolev–Reischuk prove Omega(nt) *signatures* even when failure
        free; threshold signatures still *contain* their quorum's worth
        of signatures, so a certificate carrying a ``k``-quorum counts as
        ``k`` signatures here while remaining one *word*.  Payloads
        advertise their contained-signature count via ``signatures()``
        (recorded at send time as :attr:`WordRecord.signatures`).
        """
        total = 0
        for r in self.records:
            if correct_only and not r.sender_correct:
                continue
            total += r.signatures
        return total
