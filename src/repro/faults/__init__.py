"""Deterministic fault injection for every runtime.

The paper's claim is that communication adapts to the *actual* failure
count ``f`` of a run; this package supplies the runs.  A seeded
:class:`~repro.faults.plan.FaultPlan` describes message drops (send
omissions), duplicates, sub-``delta`` delays, inbox reordering, and
connection-level faults; a per-run
:class:`~repro.faults.injector.FaultInjector` applies it identically in
the tick simulator, the asyncio runner, and the TCP transport.  Same
seed, same faults — even over real sockets.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ConnectionReset,
    FaultDecision,
    FaultPlan,
    ProcessCrash,
)

__all__ = [
    "ConnectionReset",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "ProcessCrash",
]
