"""The stateful half of fault injection.

:class:`FaultPlan` is a pure function of message coordinates; what it
cannot know is the ``seq`` number of a send (how many messages the edge
already carried this tick) or whether a scheduled connection reset has
already fired.  :class:`FaultInjector` owns exactly that state, one
instance per run, so a plan object can be shared — and reused across
runtimes — without cross-run contamination.

Per-message verdicts come from one of two pluggable backends:

* a :class:`FaultPlan` — the seeded, rate-based description (the
  default everywhere);
* a :class:`~repro.mc.choices.ChoiceSource` — the model checker's
  decision stream, which enumerates or replays each drop/duplicate/
  delay verdict instead of sampling it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ProcessId
from repro.faults.plan import ConnectionReset, FaultDecision, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via repro.mc
    from repro.mc.choices import ChoiceSource


class FaultInjector:
    """Applies one fault backend (plan or choice source) to one run."""

    def __init__(
        self,
        plan: FaultPlan | None,
        *,
        choices: "ChoiceSource | None" = None,
    ) -> None:
        if (plan is None) == (choices is None):
            raise ValueError("exactly one of plan/choices must be given")
        self.plan = plan
        self.choices = choices
        self._seq: dict[tuple[ProcessId, ProcessId, int], int] = {}
        self._fired: set[ConnectionReset] = set()

    def decide(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        tick: int,
        *,
        payload: object = None,
    ) -> FaultDecision:
        """Stamp the next send on this edge/tick and decide its fate.

        ``payload`` is consulted only by choice-source backends (whose
        spaces may scope drops to a payload type); plans ignore it.
        """
        key = (sender, receiver, tick)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        if self.choices is not None:
            return self.choices.fault_decision(
                sender, receiver, tick, seq, payload=payload
            )
        return self.plan.decide(sender, receiver, tick, seq)

    def copies(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        tick: int,
        *,
        payload: object = None,
    ) -> list[float]:
        """Delays (fractions of the synchrony bound) for each delivered
        copy of the next send on this edge; empty list = dropped."""
        return self.decide(sender, receiver, tick, payload=payload).copies()

    def take_reset(self, sender: ProcessId, receiver: ProcessId, tick: int) -> bool:
        """Whether a scheduled connection reset should fire now.

        A reset fires on the first send over its edge at or after its
        tick, exactly once — the transport is expected to *survive* it,
        so firing it repeatedly would only test the same path again.
        """
        if self.plan is None:
            return False  # choice-source backends model no connection faults
        for reset in self.plan.resets:
            if (
                reset not in self._fired
                and reset.sender == sender
                and reset.receiver == receiver
                and tick >= reset.tick
            ):
                self._fired.add(reset)
                return True
        return False
