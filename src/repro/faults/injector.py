"""The stateful half of fault injection.

:class:`FaultPlan` is a pure function of message coordinates; what it
cannot know is the ``seq`` number of a send (how many messages the edge
already carried this tick) or whether a scheduled connection reset has
already fired.  :class:`FaultInjector` owns exactly that state, one
instance per run, so a plan object can be shared — and reused across
runtimes — without cross-run contamination.
"""

from __future__ import annotations

from repro.config import ProcessId
from repro.faults.plan import ConnectionReset, FaultDecision, FaultPlan


class FaultInjector:
    """Applies one :class:`FaultPlan` to one run."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seq: dict[tuple[ProcessId, ProcessId, int], int] = {}
        self._fired: set[ConnectionReset] = set()

    def decide(
        self, sender: ProcessId, receiver: ProcessId, tick: int
    ) -> FaultDecision:
        """Stamp the next send on this edge/tick and decide its fate."""
        key = (sender, receiver, tick)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        return self.plan.decide(sender, receiver, tick, seq)

    def copies(self, sender: ProcessId, receiver: ProcessId, tick: int) -> list[float]:
        """Delays (fractions of the synchrony bound) for each delivered
        copy of the next send on this edge; empty list = dropped."""
        return self.decide(sender, receiver, tick).copies()

    def take_reset(self, sender: ProcessId, receiver: ProcessId, tick: int) -> bool:
        """Whether a scheduled connection reset should fire now.

        A reset fires on the first send over its edge at or after its
        tick, exactly once — the transport is expected to *survive* it,
        so firing it repeatedly would only test the same path again.
        """
        for reset in self.plan.resets:
            if (
                reset not in self._fired
                and reset.sender == sender
                and reset.receiver == receiver
                and tick >= reset.tick
            ):
                self._fired.add(reset)
                return True
        return False
