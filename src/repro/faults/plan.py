"""Deterministic fault plans.

A :class:`FaultPlan` is a *seeded description* of everything the network
is allowed to do to messages within the paper's synchronous model — plus
the omission- and connection-level faults that real deployments add on
top.  The same plan object drives all three runtimes:

* the tick-accurate simulator (:mod:`repro.runtime.scheduler`),
* the asyncio in-memory runner (:mod:`repro.asyncnet.runner`),
* the localhost TCP transport (:mod:`repro.asyncnet.tcp`).

Determinism is the whole point: every per-message decision is a pure
function of ``(plan.seed, sender, receiver, tick, seq)``, where ``seq``
numbers the sends on one edge within one tick.  Because protocol sends
happen in a deterministic order inside a round, two runs with the same
seed suffer *identical* faults — even over real sockets, where wall-clock
timing is not reproducible.

Fault taxonomy and model fidelity
---------------------------------

``drop``
    Send-omission faults.  When ``lossy`` is non-empty, only messages
    *sent by* a lossy process are eligible — omission-faulty processes
    count toward the run's failure count ``f`` (they are
    indistinguishable from intermittently silent Byzantine processes to
    everyone else), so safety is preserved whenever
    ``|lossy ∪ corrupted| <= t``.  An empty ``lossy`` set applies the
    drop rate to every edge, which deliberately *exceeds* the paper's
    model — useful for destructive testing, not for property checks.
``duplicate``
    The network delivers extra copies.  Harmless to the protocols by
    construction (certificate collectors key partials by signer;
    per-leader messages take the first copy) — the plan proves it.
``delay``
    Sub-``delta`` delivery delay, as a fraction of the synchrony bound.
    Over real transports this is real extra latency (must stay below
    ``tick_duration``); in the tick world it manifests as inbox
    position, the only observable a bounded delay has there.
``reorder``
    A seeded shuffle of a receiver's per-round inbox, generalizing the
    scheduler's ``inbox_order="random"`` knob.  Always canonicalizes
    (sorts by sender) before shuffling so the result is deterministic
    even when arrival order is not (TCP).
``resets`` / ``slow``
    Connection-level faults for the TCP transport: abort the
    sender→receiver socket at a given tick (exercising reconnect with
    backoff), or mark a peer slow so every message it sends gets the
    maximum sub-``delta`` delay.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.config import ProcessId, derive_rng
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle via repro.runtime
    from repro.runtime.envelope import Envelope

# Tags for deriving independent decision streams from one plan seed —
# the same ``seed ^ tag`` idiom the scheduler uses for its inbox RNG.
_MESSAGE_TAG = 0xFA17
_ORDER_TAG = 0x04DE

# 64-bit odd multipliers for mixing the per-message coordinates.
_MIX = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 0xD6E8FEB86659FD93)
_MASK = (1 << 64) - 1


def _mix(seed: int, tag: int, *coords: int) -> int:
    """Collision-resistant integer mix of a decision's coordinates."""
    acc = (seed ^ tag) & _MASK
    for i, coord in enumerate(coords):
        acc ^= ((coord + 1) * _MIX[i % len(_MIX)]) & _MASK
        acc = (acc * 0x2545F4914F6CDD1D) & _MASK
        acc ^= acc >> 32
    return acc


@dataclass(frozen=True)
class ConnectionReset:
    """Abort the ``sender -> receiver`` TCP connection at ``tick``.

    The reset fires on the first send over that edge at or after the
    tick; the transport must survive it by reconnecting with capped
    exponential backoff (no message from a correct sender may be lost
    to a reset — that is what distinguishes a reset from a drop).
    """

    tick: int
    sender: ProcessId
    receiver: ProcessId


@dataclass(frozen=True)
class ProcessCrash:
    """Crash ``pid`` at the start of ``at_tick``; restart it at the
    start of ``restart_tick`` (exclusive down window ``[at_tick,
    restart_tick)``).

    A crashed-but-honest process is *not* Byzantine: it never lies, so
    safety properties still bind it.  But while down it is
    omission-equivalent — it neither sends nor receives, and deliveries
    due inside the window are lost — so it **does** count toward the
    run's failure count ``f`` (see :attr:`FaultPlan.faulty`), exactly
    the accounting the adaptive word bound needs.  On restart the
    runtime replays the process's WAL (see :mod:`repro.recovery`) and
    rejoins it tick-aligned.
    """

    pid: ProcessId
    at_tick: int
    restart_tick: int


@dataclass(frozen=True)
class FaultDecision:
    """The network's verdict on one message (one send on one edge)."""

    drop: bool = False
    duplicates: int = 0
    """Extra copies delivered on top of the original."""
    delay: float = 0.0
    """Delivery delay as a fraction of the synchrony bound, in [0, 1)."""

    def copies(self) -> list[float]:
        """Delays for every delivered copy; empty when dropped."""
        if self.drop:
            return []
        return [self.delay] * (1 + self.duplicates)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic description of network misbehavior.

    Two runs (on the same runtime) configured with equal plans suffer
    bit-identical faults.  All rates are probabilities in ``[0, 1]``.

    >>> plan = FaultPlan(seed=1, drop_rate=0.5, lossy=frozenset({2}))
    >>> plan.decide(0, 1, tick=3, seq=0).drop   # non-lossy sender
    False
    >>> d1 = plan.decide(2, 1, tick=3, seq=0)
    >>> d2 = plan.decide(2, 1, tick=3, seq=0)
    >>> d1 == d2                                # pure function of coords
    True
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    reorder_rate: float = 0.0
    max_delay: float = 0.5
    """Largest delay, as a fraction of the synchrony bound (< 1)."""
    lossy: frozenset[ProcessId] = frozenset()
    """Senders whose messages may be dropped (send-omission faults).
    Empty = every edge is eligible (exceeds the paper's model)."""
    slow: frozenset[ProcessId] = frozenset()
    """Senders whose every message gets the maximum sub-delta delay."""
    resets: tuple[ConnectionReset, ...] = ()
    max_duplicates: int = 2
    crashes: tuple[ProcessCrash, ...] = ()
    """Scheduled crash/restart faults.  Executing them requires a
    runtime wired with a :class:`~repro.recovery.RecoveryManager` —
    a crashed process can only rejoin from durable state."""

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if not 0.0 <= self.max_delay < 1.0:
            raise ConfigurationError(
                f"max_delay must be a fraction of the synchrony bound in "
                f"[0, 1), got {self.max_delay}"
            )
        if self.max_duplicates < 0:
            raise ConfigurationError(
                f"max_duplicates must be >= 0, got {self.max_duplicates}"
            )
        for reset in self.resets:
            if reset.tick < 0:
                raise ConfigurationError(f"reset tick must be >= 0, got {reset.tick}")
        windows: dict[ProcessId, list[tuple[int, int]]] = {}
        for crash in self.crashes:
            if crash.at_tick < 1:
                raise ConfigurationError(
                    f"crash tick must be >= 1 (a process crashing before it "
                    f"ever ran has nothing to recover), got {crash.at_tick}"
                )
            if crash.restart_tick <= crash.at_tick:
                raise ConfigurationError(
                    f"restart tick must be after the crash tick, got "
                    f"crash at {crash.at_tick}, restart at {crash.restart_tick}"
                )
            windows.setdefault(crash.pid, []).append(
                (crash.at_tick, crash.restart_tick)
            )
        for pid, intervals in windows.items():
            intervals.sort()
            for (_, hi), (lo, _) in zip(intervals, intervals[1:]):
                if lo < hi:
                    raise ConfigurationError(
                        f"process {pid} has overlapping crash windows: "
                        f"a process must restart before it can crash again"
                    )

    # ------------------------------------------------------------------
    # Per-message decisions
    # ------------------------------------------------------------------

    def is_active(self) -> bool:
        """Whether the plan perturbs anything at all."""
        return bool(
            self.drop_rate
            or self.duplicate_rate
            or self.delay_rate
            or self.reorder_rate
            or self.slow
            or self.resets
            or self.crashes
        )

    def decide(
        self, sender: ProcessId, receiver: ProcessId, tick: int, seq: int
    ) -> FaultDecision:
        """The (deterministic) fate of the ``seq``-th message sent on the
        ``sender -> receiver`` edge during ``tick``.

        Every verdict consumes a **fixed schedule of five draws** —
        drop gate, duplicate gate, duplicate count, delay gate, delay
        amount — regardless of which rates are set.  Historically, draws
        were made lazily inside the conditionals, so toggling one rate
        (or setting ``max_duplicates=0``) shifted the draws every *other*
        fault type saw, and "the same seed" meant different duplicates
        and delays across plan configs.  With the fixed schedule, the
        duplicate/delay streams of two plans differing only in
        ``drop_rate`` are identical (see tests/test_faults.py).
        """
        rng = derive_rng(
            self.seed, _MESSAGE_TAG ^ _mix(0, 0, sender, receiver, tick, seq)
        )
        drop_draw = rng.random()
        duplicate_gate_draw = rng.random()
        duplicate_count_draw = rng.random()
        delay_gate_draw = rng.random()
        delay_amount_draw = rng.random()

        drop = bool(
            self.drop_rate
            and (not self.lossy or sender in self.lossy)
            and drop_draw < self.drop_rate
        )
        duplicates = 0
        if (
            self.duplicate_rate
            and self.max_duplicates  # a zero cap makes a fired verdict a no-op
            and duplicate_gate_draw < self.duplicate_rate
        ):
            # duplicate_count_draw in [0, 1) -> uniform over 1..max_duplicates.
            duplicates = 1 + int(duplicate_count_draw * self.max_duplicates)
        delay = 0.0
        if sender in self.slow:
            delay = self.max_delay
        elif self.delay_rate and delay_gate_draw < self.delay_rate:
            delay = delay_amount_draw * self.max_delay
        return FaultDecision(drop=drop, duplicates=duplicates, delay=delay)

    def order_inbox(
        self, receiver: ProcessId, tick: int, envelopes: Sequence[Envelope]
    ) -> list[Envelope]:
        """Deterministically (re)order one receiver's per-round inbox.

        Canonicalizes first (sender sort) so the result does not depend
        on arrival order, then applies a seeded shuffle with probability
        ``reorder_rate`` — the within-``delta`` adversarial scheduling
        the synchronous model permits (see Lemma 18's skew tolerance).
        """
        ordered = sorted(envelopes, key=lambda e: (e.sender, e.sent_at))
        return self.maybe_shuffle(receiver, tick, ordered)

    def maybe_shuffle(
        self, receiver: ProcessId, tick: int, envelopes: Sequence[Envelope]
    ) -> list[Envelope]:
        """The shuffle half of :meth:`order_inbox`, for callers whose
        inbox order is already deterministic (the tick simulator, which
        sorts by sub-``delta`` delay first)."""
        ordered = list(envelopes)
        if not self.reorder_rate:
            return ordered
        rng = derive_rng(self.seed, _ORDER_TAG ^ _mix(0, 0, receiver, tick))
        if rng.random() < self.reorder_rate:
            rng.shuffle(ordered)
        return ordered

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def faulty(self) -> frozenset[ProcessId]:
        """Processes whose faults count toward the run's ``f`` (omission
        senders and crash/restart victims — a down process is
        omission-equivalent for its whole window).  Duplication, bounded
        delay, reordering, and connection resets are *model-legal*
        perturbations and do not count."""
        faulty = set(self.lossy) if self.drop_rate else set()
        faulty.update(crash.pid for crash in self.crashes)
        return frozenset(faulty)

    def crash_at(self, tick: int) -> tuple[ProcessCrash, ...]:
        """Crashes scheduled to fire at the start of ``tick``."""
        return tuple(c for c in self.crashes if c.at_tick == tick)

    def restart_at(self, tick: int) -> tuple[ProcessCrash, ...]:
        """Restarts scheduled to fire at the start of ``tick``."""
        return tuple(c for c in self.crashes if c.restart_tick == tick)

    def down_at(self, tick: int) -> frozenset[ProcessId]:
        """Processes inside a crash window at ``tick``."""
        return frozenset(
            c.pid for c in self.crashes if c.at_tick <= tick < c.restart_tick
        )

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same fault mix under a different seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One-line human summary (benchmarks put it in their tables)."""
        parts = [f"seed={self.seed}"]
        if self.drop_rate:
            scope = f" by {sorted(self.lossy)}" if self.lossy else " on all edges"
            parts.append(f"drop={self.drop_rate:g}{scope}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.delay_rate or self.slow:
            parts.append(f"delay={self.delay_rate:g}(<= {self.max_delay:g}δ)")
        if self.slow:
            parts.append(f"slow={sorted(self.slow)}")
        if self.reorder_rate:
            parts.append(f"reorder={self.reorder_rate:g}")
        if self.resets:
            parts.append(f"resets={len(self.resets)}")
        if self.crashes:
            parts.append(
                "crashes="
                + ",".join(
                    f"p{c.pid}@[{c.at_tick},{c.restart_tick})" for c in self.crashes
                )
            )
        return ", ".join(parts) if len(parts) > 1 else f"seed={self.seed} (pristine)"
