"""Exception hierarchy for the ``repro`` library.

All exceptions raised by library code derive from :class:`ReproError` so
that applications can catch library failures with a single handler while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A :class:`~repro.config.SystemConfig` (or derived parameter) is invalid."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class UnknownSignerError(CryptoError):
    """A signature references a process id that the PKI has never registered."""


class InvalidSignatureError(CryptoError):
    """Signature verification failed (wrong key, tampered message, forgery)."""


class ThresholdError(CryptoError):
    """A threshold-scheme operation was used incorrectly."""


class InsufficientSharesError(ThresholdError):
    """Fewer than ``k`` distinct partial signatures were supplied to combine."""


class DuplicateShareError(ThresholdError):
    """The same signer contributed more than one share to a combine call."""


class InvalidCertificateError(CryptoError):
    """A quorum certificate failed verification."""


class WordAccountingError(ReproError):
    """A payload's word/signature accounting method returned an
    impossible value (e.g. ``words() < 1``: every message carries at
    least one word in the paper's model, Section 2)."""


class RuntimeSimulationError(ReproError):
    """Base class for errors in the synchronous runtime."""


class ProtocolViolationError(RuntimeSimulationError):
    """A *correct* process attempted an operation the model forbids.

    Byzantine processes are allowed to misbehave; this error flags bugs in
    protocol implementations, not adversarial behavior.
    """


class SchedulerError(RuntimeSimulationError):
    """The simulator itself was driven incorrectly (e.g. run twice)."""


class DeadlockError(RuntimeSimulationError):
    """No process can make progress but not all protocols terminated."""


class ModelCheckError(ReproError):
    """The model checker was driven incorrectly (invalid decision space,
    out-of-range scripted decision, replay divergence)."""


class RecoveryError(ReproError):
    """Crash recovery could not reconstruct a process's state.

    Raised when a write-ahead log is damaged beyond its torn tail (CRC
    mismatch on a complete frame, impossible frame length), when replay
    diverges from the logged send highwater marks (the recovered state
    machine is not the one that crashed), or when a WAL lacks the
    metadata needed to rebuild its protocol instance."""


class AgreementViolation(ReproError):
    """Two correct processes decided different values (test/verifier use)."""


class ValidityViolation(ReproError):
    """A decision violates the protocol's validity property (test/verifier use)."""


class TerminationViolation(ReproError):
    """A correct process failed to decide within the allotted horizon."""
