"""Problem-definition verifiers: Definitions 1, 2, 3 as executable checks.

Each function audits a finished run against the corresponding problem
statement from Section 3 of the paper, building on the generic checks
in :mod:`repro.verify.checker`:

* :func:`verify_byzantine_broadcast` — Definition 1 (validity: a
  correct sender's value is the only decision);
* :func:`verify_strong_ba` — Definition 2 (strong unanimity);
* :func:`verify_weak_ba` — Definition 3 (unique validity: decisions
  are valid or ``⊥``, and ``⊥`` only when several valid values existed
  in the run).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.core.values import BOTTOM
from repro.runtime.result import RunResult
from repro.verify.checker import Report, verify_run


def verify_byzantine_broadcast(
    result: RunResult,
    sender: int,
    sender_value: Any = ...,
) -> Report:
    """Definition 1.  If the sender is correct, pass its input as
    ``sender_value`` — every correct process must decide exactly it.
    For a Byzantine sender, leave the default: only agreement and
    termination are required."""
    sender_correct = sender not in result.corrupted
    if sender_correct and sender_value is ...:
        raise ValueError(
            "sender is correct: its input value is required to check validity"
        )
    if sender_correct:
        return verify_run(result, expected_decision=sender_value)
    return verify_run(result)


def verify_strong_ba(
    result: RunResult,
    inputs: dict[int, Any],
) -> Report:
    """Definition 2.  ``inputs`` maps every correct pid to its proposal;
    strong unanimity binds only when they all coincide."""
    correct_inputs = {
        pid: value
        for pid, value in inputs.items()
        if pid not in result.corrupted
    }
    values = set(correct_inputs.values())
    if len(values) == 1:
        (value,) = values
        return verify_run(result, expected_decision=value)
    return verify_run(result)


def verify_weak_ba(
    result: RunResult,
    validate: Callable[[Any], bool],
    existing_valid_values: Iterable[Any],
) -> Report:
    """Definition 3.  ``existing_valid_values`` is the caller's model of
    which valid values *existed in the run* (correct proposals plus
    anything the adversary could generate); ``⊥`` is a legal decision
    only if there was more than one."""
    existing = list(existing_valid_values)
    report = verify_run(
        result, validity=validate, allow_bottom=len(existing) > 1
    )
    report.checked.append("unique-validity-bottom-rule")
    decided = [
        result.decisions[pid]
        for pid in result.correct_pids
        if pid in result.decisions
    ]
    if decided and decided[0] == BOTTOM and len(set(map(repr, existing))) <= 1:
        report.add(
            "unique-validity",
            "⊥ decided although at most one valid value existed in the run",
        )
    return report
