"""Post-run verification: check a RunResult against the paper's properties.

:func:`verify_run` audits agreement, termination, validity, the
decide-at-most-once rule (Lemma 23), Lemma 6's fallback threshold, and
an optional word budget — returning a structured report instead of
raising, so tests, benchmarks, and applications can all consume it.
"""

from repro.verify.checker import (
    Report,
    Violation,
    adaptive_word_budget,
    quadratic_word_budget,
    verify_run,
    verify_under_plan,
)
from repro.verify.forensics import ForensicsReport, audit_envelopes
from repro.verify.problems import (
    verify_byzantine_broadcast,
    verify_strong_ba,
    verify_weak_ba,
)

__all__ = [
    "verify_run",
    "verify_under_plan",
    "Report",
    "Violation",
    "adaptive_word_budget",
    "quadratic_word_budget",
    "verify_byzantine_broadcast",
    "verify_strong_ba",
    "verify_weak_ba",
    "audit_envelopes",
    "ForensicsReport",
]
