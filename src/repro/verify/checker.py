"""The run auditor.

Given a :class:`~repro.runtime.result.RunResult`, check every property
the paper's theorems promise and report violations as data:

* **Agreement** — no two correct processes decided differently
  (Theorem 4 / 5 / 7 via Lemmas 12, 20, 26);
* **Termination** — every correct process decided (Lemmas 21, 27);
* **Validity** — pluggable: an expected value (BB validity / strong
  unanimity) or a predicate plus bottom-handling (unique validity);
* **Decide-once** — at most one ``decided``-class event per correct
  process (Lemmas 23, 29);
* **Lemma 6** — no fallback activation when ``f < (n-t-1)/2`` *and*
  the corruption set was silent-style from the start (callers opt in,
  since crafty adversaries may legitimately push runs into fallback at
  smaller ``f``);
* **Word budget** — measured words within a caller-supplied bound,
  e.g. :func:`adaptive_word_budget`;
* **Fallback sync** — Section 6's echo guarantee (Lemmas 17/18):
  whenever one correct process runs the fallback, all of them do,
  within ``delta`` of each other (opt in; the model checker's
  fallback-echo mutant falsifies exactly this);
* **Adaptive silence** — the mechanism behind ``O(n(f+1))``: a leader
  that has decided keeps its later phases silent (opt in; falsified by
  the non-silent-leaders mutant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.values import BOTTOM, UNDECIDED
from repro.runtime.result import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan

DECISION_EVENTS = (
    "decided",
    "wba_decided_in_phase",
    "wba_decided_by_help",
    "wba_decided_by_fallback",
    "sba_decided_fast",
)


@dataclass(frozen=True)
class Violation:
    """One property violation found during verification."""

    kind: str
    detail: str


@dataclass
class Report:
    """The verifier's findings for one run."""

    violations: list[Violation] = field(default_factory=list)
    checked: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, kind: str, detail: str) -> None:
        self.violations.append(Violation(kind=kind, detail=detail))

    def summary(self) -> str:
        if self.ok:
            return f"OK ({', '.join(self.checked)})"
        lines = [f"{len(self.violations)} violation(s):"]
        lines += [f"  [{v.kind}] {v.detail}" for v in self.violations]
        return "\n".join(lines)


def adaptive_word_budget(constant: float = 30.0) -> Callable[[RunResult], float]:
    """The paper's O(n(f+1)) bound with an explicit constant."""

    def budget(result: RunResult) -> float:
        return constant * result.config.n * (result.f + 1)

    return budget


def quadratic_word_budget(constant: float = 30.0) -> Callable[[RunResult], float]:
    """The worst-case O(n^2) bound with an explicit constant."""

    def budget(result: RunResult) -> float:
        return constant * result.config.n**2

    return budget


def verify_under_plan(
    result: RunResult,
    plan: "FaultPlan",
    *,
    word_constant: float = 30.0,
    **kwargs: Any,
) -> Report:
    """Audit a run that executed under a fault-injection plan.

    Same checklist as :func:`verify_run`, with the word budget adjusted
    for the plan's fault model: omission-faulty senders (``plan.faulty``)
    are indistinguishable from intermittently silent corrupted processes,
    so they count toward the effective failure number ``f`` in the
    paper's ``O(n(f+1))`` budget.  Duplication, bounded delay, inbox
    reordering, and connection resets are *model-legal* perturbations —
    the synchronous network was always allowed to do that — so they
    tighten nothing: every safety property must hold verbatim.

    Accepts both the simulator's :class:`RunResult` and the transports'
    :class:`~repro.asyncnet.runner.AsyncRunResult` (same surface).
    """
    effective_f = len(frozenset(result.corrupted) | plan.faulty)

    def budget(r: RunResult) -> float:
        return word_constant * r.config.n * (effective_f + 1)

    kwargs.setdefault("word_budget", budget)
    return verify_run(result, **kwargs)


def verify_run(
    result: RunResult,
    *,
    expected_decision: Any = ...,
    validity: Callable[[Any], bool] | None = None,
    allow_bottom: bool = False,
    word_budget: Callable[[RunResult], float] | None = None,
    check_lemma6: bool = False,
    check_fallback_sync: bool = False,
    fallback_sync_delta: int = 1,
    check_adaptive_silence: bool = False,
) -> Report:
    """Audit ``result``; see the module docstring for the checklist.

    Parameters
    ----------
    expected_decision:
        If given (anything other than the default ellipsis), every
        correct process must have decided exactly this value — the BB
        validity / strong-unanimity check.
    validity:
        Unique-validity style check: the common decision must satisfy
        the predicate, or be ``⊥`` if ``allow_bottom``.
    word_budget:
        Callable mapping the result to a word ceiling.
    check_lemma6:
        Assert no fallback ran when ``f < (n-t-1)/2``.  Only meaningful
        when the adversary blocks progress by silence; protocol-aware
        adversaries may legitimately trigger earlier fallbacks.
    check_fallback_sync:
        Section 6's certificate-echo guarantee (Lemmas 17/18): if *any*
        correct process entered the fallback, *every* correct process
        must, and their entry ticks may differ by at most
        ``fallback_sync_delta``.  Not meaningful on truncated runs
        (laggards may simply not have entered yet).
    check_adaptive_silence:
        The adaptivity mechanism behind ``O(n(f+1))``: once a correct
        process has decided, it never opens a later phase as a
        non-silent leader.
    """
    report = Report()
    correct = result.correct_pids

    # Termination.
    report.checked.append("termination")
    undecided = [
        pid
        for pid in correct
        if pid not in result.decisions or result.decisions[pid] == UNDECIDED
    ]
    for pid in undecided:
        report.add("termination", f"correct process {pid} did not decide")

    # Agreement.
    report.checked.append("agreement")
    decided = [
        (pid, result.decisions[pid])
        for pid in correct
        if pid in result.decisions
    ]
    if decided:
        first_pid, first_value = decided[0]
        for pid, value in decided[1:]:
            if value != first_value:
                report.add(
                    "agreement",
                    f"process {first_pid} decided {first_value!r} but "
                    f"process {pid} decided {value!r}",
                )

    # Validity.
    if expected_decision is not ...:
        report.checked.append("expected-decision")
        for pid, value in decided:
            if value != expected_decision:
                report.add(
                    "validity",
                    f"process {pid} decided {value!r}, expected "
                    f"{expected_decision!r}",
                )
    if validity is not None and decided:
        report.checked.append("unique-validity")
        value = decided[0][1]
        if value == BOTTOM:
            if not allow_bottom:
                report.add("validity", "decided ⊥ where ⊥ is not allowed")
        elif not validity(value):
            report.add("validity", f"decision {value!r} fails the predicate")

    # Decide-at-most-once (Lemma 23 / 29): the terminal `decided` event
    # fires exactly once per correct process per protocol *instance*.
    # Instances are identified by session when the event carries one —
    # a composition like SMR legitimately runs one BB per slot under the
    # same scope path, distinguished only by session (the soak fleet
    # flagged multi-slot runs as double-decides before sessions were
    # stamped into the event).
    report.checked.append("decide-once")
    per_process_scope: dict[tuple, int] = {}
    for event in result.trace.named("decided"):
        if event.pid in result.corrupted:
            continue
        key = (event.pid, event.scope, event.get("session"))
        per_process_scope[key] = per_process_scope.get(key, 0) + 1
    for (pid, scope, session), count in per_process_scope.items():
        if count > 1:
            where = scope if session is None else f"{scope} [{session}]"
            report.add(
                "decide-once",
                f"process {pid} emitted {count} decisions in scope {where}",
            )

    # Lemma 6.
    if check_lemma6:
        report.checked.append("lemma6")
        threshold = result.config.fallback_failure_threshold
        if result.f < threshold and result.fallback_was_used():
            report.add(
                "lemma6",
                f"fallback ran with f={result.f} < (n-t-1)/2={threshold}",
            )

    # Fallback synchronization (Lemmas 17/18).
    if check_fallback_sync:
        report.checked.append("fallback-sync")
        entered: dict[Any, int] = {}
        for event in result.trace.named("fallback_started"):
            if event.pid not in result.corrupted and event.pid not in entered:
                entered[event.pid] = event.tick
        if entered:
            for pid in correct:
                if pid not in entered:
                    report.add(
                        "fallback-sync",
                        f"process {pid} never entered the fallback while "
                        f"processes {sorted(entered)} did",
                    )
            skew = max(entered.values()) - min(entered.values())
            if skew > fallback_sync_delta:
                report.add(
                    "fallback-sync",
                    f"fallback entry ticks {entered} spread over {skew} "
                    f"ticks, allowed delta is {fallback_sync_delta}",
                )

    # Adaptive silence: decided leaders stay silent.
    if check_adaptive_silence:
        report.checked.append("adaptive-silence")
        decided_at: dict[Any, int] = {}
        for event in result.trace.events:
            if (
                event.name in DECISION_EVENTS
                and event.name != "decided"  # terminal marker, fires late
                and event.pid not in result.corrupted
            ):
                tick = decided_at.get(event.pid, event.tick)
                decided_at[event.pid] = min(tick, event.tick)
        for event in result.trace.named("phase_non_silent"):
            pid = event.pid
            if pid in result.corrupted:
                continue
            if pid in decided_at and decided_at[pid] < event.tick:
                report.add(
                    "adaptive-silence",
                    f"process {pid} opened a phase as leader at tick "
                    f"{event.tick} despite deciding at tick {decided_at[pid]}",
                )

    # Word budget.
    if word_budget is not None:
        report.checked.append("word-budget")
        ceiling = word_budget(result)
        if result.correct_words > ceiling:
            report.add(
                "word-budget",
                f"{result.correct_words} words exceed budget {ceiling:.0f}",
            )

    return report
