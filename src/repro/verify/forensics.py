"""Forensics: identify Byzantine behavior from a recorded run.

The paper's protocols tolerate Byzantine processes without identifying
them; an operator running the system still wants to know *who* —
deployments gossip evidence and expel culprits out-of-band.  This
module audits a run recorded with ``Simulation(record_envelopes=True)``
and reports per-process findings:

* **equivocation** — one sender, one logical slot (session/phase/round
  and payload type), conflicting payload contents.  Correct processes
  never equivocate, so every finding names a Byzantine process;
* **identity lies** — payloads whose embedded value claims an origin
  the channel contradicts (where detectable);
* coverage statistics, since absence of findings is only meaningful
  against the amount of traffic audited.

Findings are *sound but not complete*: a silent Byzantine process is
indistinguishable from a crashed honest one (that is the whole point of
the adaptive adversary), so forensics can convict but never acquit.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.config import ProcessId
from repro.runtime.envelope import Envelope
from repro.runtime.result import RunResult


@dataclass(frozen=True)
class Finding:
    """One piece of evidence against one process."""

    culprit: ProcessId
    kind: str
    slot: tuple
    detail: str


@dataclass
class ForensicsReport:
    """All findings for one run, plus coverage statistics."""

    findings: list[Finding] = field(default_factory=list)
    envelopes_audited: int = 0

    @property
    def culprits(self) -> frozenset[ProcessId]:
        return frozenset(f.culprit for f in self.findings)

    def against(self, pid: ProcessId) -> list[Finding]:
        return [f for f in self.findings if f.culprit == pid]

    def summary(self) -> str:
        if not self.findings:
            return (
                f"no Byzantine evidence in {self.envelopes_audited} envelopes"
                " (silence is not innocence)"
            )
        lines = [
            f"{len(self.findings)} finding(s) against "
            f"{sorted(self.culprits)} in {self.envelopes_audited} envelopes:"
        ]
        lines += [
            f"  p{f.culprit} [{f.kind}] slot={f.slot}: {f.detail}"
            for f in self.findings
        ]
        return "\n".join(lines)


def _slot_of(envelope: Envelope) -> tuple:
    """The logical slot a payload belongs to: correct processes send at
    most one distinct payload per slot."""
    payload = envelope.payload
    return (
        type(payload).__name__,
        getattr(payload, "session", None),
        getattr(payload, "phase", None),
        getattr(payload, "exchange", None),
        envelope.sent_at,
    )


def _content_of(envelope: Envelope) -> str:
    """A comparable rendering of the payload's distinguishing content."""
    payload = envelope.payload
    for attribute in ("value", "signed", "certificate", "chain"):
        if hasattr(payload, attribute):
            return repr(getattr(payload, attribute))
    return repr(payload)


def audit_envelopes(
    result: RunResult, envelopes: Iterable[Envelope] | None = None
) -> ForensicsReport:
    """Audit recorded envelopes for per-slot equivocation.

    Uses ``result.envelopes`` by default (requires the run to have been
    recorded with ``record_envelopes=True``).
    """
    report = ForensicsReport()
    pool = list(envelopes if envelopes is not None else result.envelopes)
    report.envelopes_audited = len(pool)

    by_sender_slot: dict[tuple, dict[str, list[ProcessId]]] = defaultdict(
        lambda: defaultdict(list)
    )
    for envelope in pool:
        key = (envelope.sender, _slot_of(envelope))
        by_sender_slot[key][_content_of(envelope)].append(envelope.receiver)

    flagged: set[tuple] = set()
    for (sender, slot), variants in by_sender_slot.items():
        if len(variants) < 2:
            continue
        if (sender, slot) in flagged:
            continue
        flagged.add((sender, slot))
        contents = sorted(variants)
        report.findings.append(
            Finding(
                culprit=sender,
                kind="equivocation",
                slot=slot,
                detail=(
                    f"{len(variants)} conflicting payloads, e.g. "
                    f"{contents[0][:60]} vs {contents[1][:60]}"
                ),
            )
        )
    return report
