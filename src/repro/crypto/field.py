"""Prime-field arithmetic used by the threshold signature scheme.

The scheme in :mod:`repro.crypto.threshold` is linear over GF(p) for a
fixed 256-bit prime ``PRIME`` (the secp256k1 base-field prime).  This
module provides the few field operations the scheme needs: modular
inverse, polynomial evaluation (for Shamir share dealing) and Lagrange
interpolation at zero (for share combination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ThresholdError

PRIME = 2**256 - 2**32 - 977
"""The secp256k1 base-field prime; any 256-bit prime would do."""


def normalize(x: int) -> int:
    """Reduce ``x`` into ``[0, PRIME)``."""
    return x % PRIME


def add(a: int, b: int) -> int:
    return (a + b) % PRIME


def sub(a: int, b: int) -> int:
    return (a - b) % PRIME


def mul(a: int, b: int) -> int:
    return (a * b) % PRIME


def inv(a: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``PRIME``.

    Raises
    ------
    ThresholdError
        If ``a`` is congruent to zero (zero has no inverse).
    """
    a = a % PRIME
    if a == 0:
        raise ThresholdError("zero has no multiplicative inverse")
    return pow(a, PRIME - 2, PRIME)


@dataclass(frozen=True)
class Polynomial:
    """A polynomial over GF(p), ``coefficients[i]`` multiplying ``x**i``."""

    coefficients: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coefficients", tuple(c % PRIME for c in self.coefficients)
        )

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def evaluate(self, x: int) -> int:
        """Horner evaluation of the polynomial at ``x``."""
        result = 0
        for coefficient in reversed(self.coefficients):
            result = (result * x + coefficient) % PRIME
        return result


def lagrange_coefficients_at_zero(xs: Sequence[int]) -> list[int]:
    """Lagrange basis coefficients ``lambda_i`` such that for any
    polynomial ``f`` of degree ``< len(xs)``:

        ``f(0) == sum(lambda_i * f(xs[i]))  (mod PRIME)``

    The ``xs`` must be distinct and non-zero.
    """
    points = [x % PRIME for x in xs]
    if len(set(points)) != len(points):
        raise ThresholdError(f"interpolation points must be distinct: {xs}")
    if any(x == 0 for x in points):
        raise ThresholdError("interpolation points must be non-zero")
    coefficients = []
    for i, x_i in enumerate(points):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(points):
            if i == j:
                continue
            numerator = mul(numerator, x_j)
            denominator = mul(denominator, sub(x_j, x_i))
        coefficients.append(mul(numerator, inv(denominator)))
    return coefficients


def interpolate_at_zero(points: Iterable[tuple[int, int]]) -> int:
    """Interpolate ``f(0)`` from ``(x, f(x))`` pairs with distinct ``x``."""
    pairs = list(points)
    xs = [x for x, _ in pairs]
    ys = [y for _, y in pairs]
    coefficients = lagrange_coefficients_at_zero(xs)
    total = 0
    for coefficient, y in zip(coefficients, ys):
        total = add(total, mul(coefficient, y))
    return total
