"""Prime-field arithmetic used by the threshold signature scheme.

The scheme in :mod:`repro.crypto.threshold` is linear over GF(p) for a
fixed 256-bit prime ``PRIME`` (the secp256k1 base-field prime).  This
module provides the few field operations the scheme needs: modular
inverse, polynomial evaluation (for Shamir share dealing) and Lagrange
interpolation at zero (for share combination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ThresholdError

PRIME = 2**256 - 2**32 - 977
"""The secp256k1 base-field prime; any 256-bit prime would do."""


def normalize(x: int) -> int:
    """Reduce ``x`` into ``[0, PRIME)``."""
    return x % PRIME


def add(a: int, b: int) -> int:
    return (a + b) % PRIME


def sub(a: int, b: int) -> int:
    return (a - b) % PRIME


def mul(a: int, b: int) -> int:
    return (a * b) % PRIME


def inv(a: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``PRIME``.

    Uses CPython's native extended-Euclid path (``pow(a, -1, PRIME)``),
    which is several times faster than the Fermat exponentiation
    ``pow(a, PRIME - 2, PRIME)`` for a 256-bit modulus.

    Raises
    ------
    ThresholdError
        If ``a`` is congruent to zero (zero has no inverse).
    """
    a = a % PRIME
    if a == 0:
        raise ThresholdError("zero has no multiplicative inverse")
    return pow(a, -1, PRIME)


@dataclass(frozen=True)
class Polynomial:
    """A polynomial over GF(p), ``coefficients[i]`` multiplying ``x**i``."""

    coefficients: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "coefficients", tuple(c % PRIME for c in self.coefficients)
        )

    @property
    def degree(self) -> int:
        return len(self.coefficients) - 1

    def evaluate(self, x: int) -> int:
        """Horner evaluation of the polynomial at ``x``."""
        result = 0
        for coefficient in reversed(self.coefficients):
            result = (result * x + coefficient) % PRIME
        return result


_LAGRANGE_CACHE: dict[tuple[int, ...], tuple[int, ...]] = {}
_LAGRANGE_CACHE_CAP = 4096
"""Signer-set tuple -> coefficient tuple.  Quorums repeat across phases
and runs (the same ``k`` signers combine certificate after certificate),
so the O(k^2) coefficient computation would otherwise be redone
thousands of times for identical inputs."""


def _lagrange_uncached(points: tuple[int, ...]) -> tuple[int, ...]:
    """The reference computation, one batched inversion for all k
    denominators (Montgomery's trick: invert the running product once,
    then unfold) instead of one modular inversion per coefficient."""
    denominators = []
    for i, x_i in enumerate(points):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(points):
            if i == j:
                continue
            numerator = mul(numerator, x_j)
            denominator = mul(denominator, sub(x_j, x_i))
        denominators.append((numerator, denominator))
    prefix = [1]
    for _, denominator in denominators:
        prefix.append(mul(prefix[-1], denominator))
    inverse = inv(prefix[-1])
    coefficients = [0] * len(points)
    for i in range(len(points) - 1, -1, -1):
        numerator, denominator = denominators[i]
        coefficients[i] = mul(numerator, mul(inverse, prefix[i]))
        inverse = mul(inverse, denominator)
    return tuple(coefficients)


def lagrange_coefficients_at_zero(
    xs: Sequence[int], *, cache: bool = True
) -> list[int]:
    """Lagrange basis coefficients ``lambda_i`` such that for any
    polynomial ``f`` of degree ``< len(xs)``:

        ``f(0) == sum(lambda_i * f(xs[i]))  (mod PRIME)``

    The ``xs`` must be distinct and non-zero.  Results are memoized by
    the signer-set tuple; ``cache=False`` forces the uncached reference
    computation (the divergence-guard tests compare the two).
    """
    points = tuple(x % PRIME for x in xs)
    if len(set(points)) != len(points):
        raise ThresholdError(f"interpolation points must be distinct: {xs}")
    if any(x == 0 for x in points):
        raise ThresholdError("interpolation points must be non-zero")
    if not cache:
        return list(_lagrange_uncached(points))
    coefficients = _LAGRANGE_CACHE.get(points)
    if coefficients is None:
        if len(_LAGRANGE_CACHE) >= _LAGRANGE_CACHE_CAP:
            _LAGRANGE_CACHE.clear()
        coefficients = _lagrange_uncached(points)
        _LAGRANGE_CACHE[points] = coefficients
    return list(coefficients)


def interpolate_at_zero(points: Iterable[tuple[int, int]]) -> int:
    """Interpolate ``f(0)`` from ``(x, f(x))`` pairs with distinct ``x``."""
    pairs = list(points)
    xs = [x for x, _ in pairs]
    ys = [y for _, y in pairs]
    coefficients = lagrange_coefficients_at_zero(xs)
    total = 0
    for coefficient, y in zip(coefficients, ys):
        total = add(total, mul(coefficient, y))
    return total


def clear_caches() -> None:
    """Drop the Lagrange memo (tests and long-lived services)."""
    _LAGRANGE_CACHE.clear()
