"""Signature and equivocation-proof value objects.

A :class:`Signature` is the object protocols attach to messages; it names
its signer and carries an HMAC tag computed by the trusted registry.  The
paper's word model (Section 2) counts a constant number of signatures as
one word, so a single signature contributes ``1`` to word counts (see
:mod:`repro.metrics.words`).

An :class:`EquivocationProof` packages two signatures by the same signer
over *conflicting* payloads for the same slot — transferable evidence of
Byzantine behavior, used by the synchronous fallback protocol's
equivocation-detection safety argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import ProcessId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.crypto.keys import KeyRegistry


@dataclass(frozen=True)
class Signature:
    """An individual signature: ``<m>_p`` in the paper's notation."""

    signer: ProcessId
    tag: bytes

    def words(self) -> int:
        """A signature is one word in the paper's complexity model."""
        return 1

    def signatures(self) -> int:
        return 1


@dataclass(frozen=True)
class SignedValue:
    """A payload together with its producing signature: ``<v>_p``.

    ``payload`` must be canonically encodable.  Verification is
    :meth:`verify`, given the deployment's registry.
    """

    payload: object
    signature: Signature

    @property
    def signer(self) -> ProcessId:
        return self.signature.signer

    def verify(self, registry: "KeyRegistry") -> bool:
        return registry.verify(self.signature, self.payload)

    def words(self) -> int:
        """One value plus one signature — one word (Section 2)."""
        return 1

    def signatures(self) -> int:
        return 1


@dataclass(frozen=True)
class EquivocationProof:
    """Proof that one process signed two conflicting payloads for one slot.

    ``slot`` identifies the context (e.g. ``("propose", view)``) in which
    at most one signed payload is legitimate.
    """

    slot: object
    first: SignedValue
    second: SignedValue

    @property
    def culprit(self) -> ProcessId:
        return self.first.signer

    def verify(self, registry: "KeyRegistry") -> bool:
        """The proof is valid iff both signatures verify, they share a
        signer, and the payloads differ."""
        return (
            self.first.signer == self.second.signer
            and self.first.payload != self.second.payload
            and self.first.verify(registry)
            and self.second.verify(registry)
        )

    def words(self) -> int:
        """Two signed values — still a constant number of signatures."""
        return 1

    def signatures(self) -> int:
        return self.first.signatures() + self.second.signatures()


def sign_value(signer, payload: object) -> SignedValue:
    """Convenience: build a :class:`SignedValue` with ``signer``'s signature."""
    return SignedValue(payload=payload, signature=signer.sign(payload))
