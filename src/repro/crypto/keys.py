"""The trusted PKI: per-process signing keys and the key registry.

The paper assumes a trusted public-key infrastructure (Section 2).  In
this reproduction the PKI is a :class:`KeyRegistry` created once per
deployment: it derives an independent HMAC key for every process from a
master seed.  A process signs through its :class:`Signer` handle; anyone
can verify through the registry.

Unforgeability model
--------------------
The simulation runs in one address space, so enforcement is by API
discipline: correct processes only ever hold their own :class:`Signer`,
and the adversary is handed the signers of the processes it corrupts
(:meth:`KeyRegistry.signer_for`).  A signature constructed any other way
fails verification because its HMAC tag will not match.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.config import ProcessId
from repro.crypto.canonical import encode
from repro.crypto.signatures import Signature
from repro.errors import UnknownSignerError


def _derive_key(master_seed: bytes, pid: ProcessId) -> bytes:
    return hashlib.sha256(master_seed + b"|key|" + str(pid).encode()).digest()


class KeyRegistry:
    """Trusted key store for ``n`` processes.

    Parameters
    ----------
    n:
        Number of processes; ids are ``0 .. n-1``.
    master_seed:
        Deterministic seed for key derivation, so a whole simulation can
        be reproduced from one integer seed.
    """

    def __init__(self, n: int, master_seed: bytes = b"repro-pki") -> None:
        if n < 1:
            raise UnknownSignerError(f"registry needs n >= 1 processes, got {n}")
        self._n = n
        self._keys = {pid: _derive_key(master_seed, pid) for pid in range(n)}

    @property
    def n(self) -> int:
        return self._n

    def _key_of(self, pid: ProcessId) -> bytes:
        try:
            return self._keys[pid]
        except KeyError:
            raise UnknownSignerError(f"process {pid} is not registered") from None

    # ------------------------------------------------------------------
    # Signing / verification
    # ------------------------------------------------------------------

    def sign(self, pid: ProcessId, payload: object) -> Signature:
        """Sign ``payload`` (any canonically encodable value) as ``pid``.

        Library-internal; protocol code should go through a
        :class:`Signer` so that possession of signing capability is
        explicit.
        """
        data = encode(payload)
        tag = hmac.new(self._key_of(pid), data, hashlib.sha256).digest()
        return Signature(signer=pid, tag=tag)

    def verify(self, signature: Signature, payload: object) -> bool:
        """Check that ``signature`` is ``pid``'s signature on ``payload``."""
        data = encode(payload)
        expected = hmac.new(
            self._key_of(signature.signer), data, hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, signature.tag)

    def signer_for(self, pid: ProcessId) -> "Signer":
        """Hand out the signing capability of ``pid``.

        Called once per correct process at startup, and by the adversary
        for each process it corrupts.
        """
        self._key_of(pid)  # validate pid
        return Signer(registry=self, pid=pid)


class Signer:
    """Signing capability of a single process."""

    def __init__(self, registry: KeyRegistry, pid: ProcessId) -> None:
        self._registry = registry
        self._pid = pid

    @property
    def pid(self) -> ProcessId:
        return self._pid

    def sign(self, payload: object) -> Signature:
        """Produce this process's signature on ``payload``."""
        return self._registry.sign(self._pid, payload)
