"""A ``(k, n)``-threshold signature scheme via Shamir secret sharing.

The paper (Section 2) assumes an *ideal* threshold scheme: ``k`` unique
signatures on the same message batch into one threshold signature the
size of an individual signature.  We implement a real linear scheme:

* A trusted dealer (the scheme object, playing the role of the paper's
  trusted setup) samples a secret ``s`` and a degree-``k-1`` polynomial
  ``P`` with ``P(0) = s`` over GF(p); process ``i`` holds the share
  ``s_i = P(i + 1)``.
* A partial signature on message ``m`` is ``sigma_i = s_i * H(m) mod p``.
* Any ``k`` partials from distinct signers combine by Lagrange
  interpolation at zero into ``sigma = s * H(m) mod p`` — one field
  element regardless of ``k``, i.e. **one word**.
* Verification checks ``sigma == s * H(m)``; the dealer retains ``s``
  as the verification oracle (standing in for the pairing check of BLS
  threshold signatures).

Unforgeability is information-theoretic below the threshold: an
adversary holding fewer than ``k`` shares learns nothing about ``s``, so
it cannot produce ``s * H(m)`` except by guessing a 256-bit value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import ProcessId
from repro.crypto import field
from repro.crypto.canonical import encode
from repro.errors import (
    DuplicateShareError,
    InsufficientSharesError,
    ThresholdError,
    UnknownSignerError,
)


_DIGEST_CACHE: dict[bytes, int] = {}
_DIGEST_CACHE_CAP = 1 << 15
"""Canonical message bytes -> field digest.  Certificate flows hash the
same ``(label, payload)`` binding once per signer per phase; the cache
collapses the repeated SHA-256 + reduction.  Keyed by the *encoded
bytes* (not the payload object) because :func:`~repro.crypto.canonical.
encode` is injective while Python equality is not (``1 == True``)."""


def message_digest(payload: object, *, cache: bool = True) -> int:
    """Hash a canonically encodable payload into a field element ``H(m)``.

    The digest is forced non-zero so partial signatures never degenerate
    (``sigma_i = 0`` would leak nothing but also verify for any secret).
    ``cache=False`` bypasses the memo (divergence-guard tests).
    """
    return digest_from_bytes(encode(payload), cache=cache)


def digest_from_bytes(encoded: bytes, *, cache: bool = True) -> int:
    """The digest of an already canonically encoded message."""
    data = b"tsig|" + encoded
    if cache:
        value = _DIGEST_CACHE.get(data)
        if value is not None:
            return value
    raw = hashlib.sha256(data).digest()
    value = int.from_bytes(raw, "big") % field.PRIME
    if value == 0:
        value = 1
    if cache:
        if len(_DIGEST_CACHE) >= _DIGEST_CACHE_CAP:
            _DIGEST_CACHE.clear()
        _DIGEST_CACHE[data] = value
    return value


@dataclass(frozen=True)
class PartialSignature:
    """One process's share-signature on a message."""

    scheme_id: str
    signer: ProcessId
    digest: int
    value: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        """A share is one individual signature."""
        return 1


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined ``(k, n)``-threshold signature: one word, any ``k``.

    ``signers`` records which share-holders contributed — it is carried
    for introspection and tests, not trusted for verification (the field
    element ``value`` is self-authenticating against the dealer oracle).
    """

    scheme_id: str
    digest: int
    value: int
    signers: frozenset[ProcessId]

    def words(self) -> int:
        """Threshold signatures batch k signatures into one word."""
        return 1

    def signatures(self) -> int:
        """Lower-bound accounting: the batched individual signatures."""
        return len(self.signers)


class ThresholdScheme:
    """A dealt ``(k, n)`` scheme; also the verification oracle.

    Parameters
    ----------
    scheme_id:
        Distinguishes schemes (e.g. ``"idk:t+1"`` vs ``"commit"``) so
        partials from different schemes can never be mixed.
    k:
        Combination threshold, ``1 <= k <= n``.
    n:
        Number of share-holders (process ids ``0 .. n-1``).
    seed:
        Deterministic dealer randomness.
    epoch:
        Key epoch.  Epoch 0 deals exactly as before epochs existed;
        rotating to epoch ``e > 0`` mixes ``e`` into the dealer material
        so every share and the secret change, and the epoch is part of
        every memoized verdict's key — a cached ``True`` from epoch
        ``e-1`` can never satisfy a verification at epoch ``e``.
    cache:
        ``False`` disables every memo on this instance (the divergence-
        guard tests run a cached and an uncached scheme side by side).
    """

    def __init__(
        self,
        scheme_id: str,
        k: int,
        n: int,
        seed: bytes = b"",
        members: frozenset[ProcessId] | None = None,
        *,
        epoch: int = 0,
        cache: bool = True,
    ) -> None:
        """``members`` restricts share dealing to a committee: only those
        processes receive shares, so a ``k``-quorum provably comes from
        the committee.  ``None`` deals to all ``n`` processes.
        """
        holders = sorted(members) if members is not None else list(range(n))
        if members is not None and any(not 0 <= pid < n for pid in holders):
            raise ThresholdError(f"members {holders} outside process range 0..{n - 1}")
        if not 1 <= k <= len(holders):
            raise ThresholdError(
                f"need 1 <= k <= |holders|, got k={k}, holders={len(holders)}"
            )
        if epoch < 0:
            raise ThresholdError(f"epoch must be >= 0, got {epoch}")
        self._scheme_id = scheme_id
        self._k = k
        self._n = n
        self._epoch = epoch
        self._cache_enabled = cache
        self._members = frozenset(holders)
        epoch_tag = b"" if epoch == 0 else f"|epoch={epoch}".encode()
        material = hashlib.sha256(
            b"dealer|" + seed + scheme_id.encode() + f"|{k}|{n}".encode()
            + epoch_tag
        ).digest()
        coefficients = []
        for i in range(k):
            raw = hashlib.sha256(material + i.to_bytes(4, "big")).digest()
            coefficients.append(int.from_bytes(raw, "big") % field.PRIME)
        if coefficients[0] == 0:
            coefficients[0] = 1
        self._polynomial = field.Polynomial(tuple(coefficients))
        self._secret = self._polynomial.evaluate(0)
        self._shares = {
            pid: self._polynomial.evaluate(pid + 1) for pid in holders
        }
        # Per-scheme memos; every key carries the epoch (module doc of
        # the ``epoch`` parameter).  Bounded: cleared wholesale at cap.
        self._sign_cache: dict[tuple[int, ProcessId, int], int] = {}
        self._combine_cache: dict[
            tuple[int, int, tuple[ProcessId, ...]], int
        ] = {}
        self._verify_cache: dict[tuple[int, int, int], bool] = {}

    _CACHE_CAP = 1 << 14

    def _memo_get(self, memo: dict, key: tuple) -> object | None:
        if not self._cache_enabled:
            return None
        return memo.get(key)

    def _memo_put(self, memo: dict, key: tuple, value) -> None:
        if not self._cache_enabled:
            return
        if len(memo) >= self._CACHE_CAP:
            memo.clear()
        memo[key] = value

    @property
    def scheme_id(self) -> str:
        return self._scheme_id

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def k(self) -> int:
        return self._k

    @property
    def n(self) -> int:
        return self._n

    @property
    def members(self) -> frozenset[ProcessId]:
        """The share-holders (a committee, or all ``n`` processes)."""
        return self._members

    def _share_of(self, pid: ProcessId) -> int:
        try:
            return self._shares[pid]
        except KeyError:
            raise UnknownSignerError(
                f"process {pid} holds no share in scheme {self._scheme_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------

    def partial_sign(self, pid: ProcessId, payload: object) -> PartialSignature:
        """Produce ``pid``'s partial signature on ``payload``."""
        return self.partial_sign_digest(pid, message_digest(payload))

    def partial_sign_digest(
        self, pid: ProcessId, digest: int
    ) -> PartialSignature:
        """Sign a precomputed message digest (the batch/collector path:
        the digest is hashed once per payload, not once per signer)."""
        key = (self._epoch, pid, digest)
        value = self._memo_get(self._sign_cache, key)
        if value is None:
            value = field.mul(self._share_of(pid), digest)
            self._memo_put(self._sign_cache, key, value)
        else:
            self._share_of(pid)  # preserve the UnknownSignerError contract
        return PartialSignature(
            scheme_id=self._scheme_id, signer=pid, digest=digest, value=value
        )

    def verify_partial(self, partial: PartialSignature, payload: object) -> bool:
        """Check a single partial against the dealer's share table."""
        return self.verify_partial_digest(partial, message_digest(payload))

    def verify_partial_digest(
        self, partial: PartialSignature, digest: int
    ) -> bool:
        """Check one partial against an expected (precomputed) digest."""
        if partial.scheme_id != self._scheme_id:
            return False
        if partial.digest != digest:
            return False
        try:
            share = self._share_of(partial.signer)
        except UnknownSignerError:
            return False
        return partial.value == field.mul(share, digest)

    def verify_partials(
        self, partials: Sequence[PartialSignature], payload: object
    ) -> list[bool]:
        """Batch verification: per-partial verdicts with one digest.

        The message is hashed once; a Fiat–Shamir random linear
        combination then checks the whole batch with a single share-sum
        equation — ``sum(r_i * sigma_i) == (sum(r_i * s_i)) * H(m)`` —
        where the ``r_i`` are derived by hashing the batch itself, so an
        adversary cannot craft offsetting errors against coefficients
        chosen after its values are fixed.  Only when the combined check
        fails (at least one bad partial) does it fall back to
        per-partial verification to locate the culprits.
        """
        digest = message_digest(payload)
        eligible = all(
            p.scheme_id == self._scheme_id
            and p.digest == digest
            and p.signer in self._shares
            for p in partials
        )
        if eligible and len(partials) > 1:
            seed = hashlib.sha256(
                b"batch|"
                + self._scheme_id.encode()
                + digest.to_bytes(32, "big")
                + b"|".join(p.value.to_bytes(32, "big") for p in partials)
            ).digest()
            lhs = 0
            share_sum = 0
            for i, partial in enumerate(partials):
                r = int.from_bytes(
                    hashlib.sha256(seed + i.to_bytes(4, "big")).digest(), "big"
                ) % field.PRIME
                lhs = field.add(lhs, field.mul(r, partial.value))
                share_sum = field.add(
                    share_sum, field.mul(r, self._shares[partial.signer])
                )
            if lhs == field.mul(share_sum, digest):
                return [True] * len(partials)
        return [self.verify_partial_digest(p, digest) for p in partials]

    def combine(self, partials: Iterable[PartialSignature]) -> ThresholdSignature:
        """Combine ``k`` (or more) distinct partials into one signature.

        Raises
        ------
        InsufficientSharesError
            Fewer than ``k`` distinct signers contributed.
        DuplicateShareError
            The same signer appears twice.
        ThresholdError
            Partials disagree on scheme or message.
        """
        chosen = list(partials)
        if not chosen:
            raise InsufficientSharesError("no partial signatures supplied")
        signers = [p.signer for p in chosen]
        if len(set(signers)) != len(signers):
            raise DuplicateShareError(f"duplicate signers in {sorted(signers)}")
        if any(p.scheme_id != self._scheme_id for p in chosen):
            raise ThresholdError("partials from a different scheme")
        digest = chosen[0].digest
        if any(p.digest != digest for p in chosen):
            raise ThresholdError("partials sign different messages")
        if len(chosen) < self._k:
            raise InsufficientSharesError(
                f"scheme {self._scheme_id!r} needs {self._k} shares, "
                f"got {len(chosen)}"
            )
        subset = chosen[: self._k]
        # The key carries the partial *values*, not just the signer set:
        # combining garbage values must miss the cache and produce the
        # same non-verifying signature the uncached path would.
        key = (self._epoch, digest, tuple((p.signer, p.value) for p in subset))
        value = self._memo_get(self._combine_cache, key)
        if value is None:
            points = [(p.signer + 1, p.value) for p in subset]
            if self._cache_enabled:
                value = field.interpolate_at_zero(points)
            else:
                coefficients = field.lagrange_coefficients_at_zero(
                    [x for x, _ in points], cache=False
                )
                value = 0
                for coefficient, (_, y) in zip(coefficients, points):
                    value = field.add(value, field.mul(coefficient, y))
            self._memo_put(self._combine_cache, key, value)
        return ThresholdSignature(
            scheme_id=self._scheme_id,
            digest=digest,
            value=value,
            signers=frozenset(p.signer for p in subset),
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, signature: ThresholdSignature, payload: object) -> bool:
        """Check a combined signature against ``payload``.

        This is the trusted verification oracle standing in for the
        public pairing check of a production scheme.
        """
        if signature.scheme_id != self._scheme_id:
            return False
        digest = message_digest(payload)
        if signature.digest != digest:
            return False
        return self.verify_value_digest(signature.value, digest)

    def verify_value_digest(self, value: int, digest: int) -> bool:
        """Oracle check of a combined value against a precomputed digest
        (memoized; both accepts and rejects are cached, keyed with the
        epoch so rotation can never resurrect a stale verdict)."""
        key = (self._epoch, digest, value)
        verdict = self._memo_get(self._verify_cache, key)
        if verdict is None:
            verdict = value == field.mul(self._secret, digest)
            self._memo_put(self._verify_cache, key, verdict)
        return verdict


def clear_caches() -> None:
    """Drop the module-level digest memo (tests, long-lived services).
    Per-scheme memos die with their scheme instances."""
    _DIGEST_CACHE.clear()
