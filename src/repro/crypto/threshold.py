"""A ``(k, n)``-threshold signature scheme via Shamir secret sharing.

The paper (Section 2) assumes an *ideal* threshold scheme: ``k`` unique
signatures on the same message batch into one threshold signature the
size of an individual signature.  We implement a real linear scheme:

* A trusted dealer (the scheme object, playing the role of the paper's
  trusted setup) samples a secret ``s`` and a degree-``k-1`` polynomial
  ``P`` with ``P(0) = s`` over GF(p); process ``i`` holds the share
  ``s_i = P(i + 1)``.
* A partial signature on message ``m`` is ``sigma_i = s_i * H(m) mod p``.
* Any ``k`` partials from distinct signers combine by Lagrange
  interpolation at zero into ``sigma = s * H(m) mod p`` — one field
  element regardless of ``k``, i.e. **one word**.
* Verification checks ``sigma == s * H(m)``; the dealer retains ``s``
  as the verification oracle (standing in for the pairing check of BLS
  threshold signatures).

Unforgeability is information-theoretic below the threshold: an
adversary holding fewer than ``k`` shares learns nothing about ``s``, so
it cannot produce ``s * H(m)`` except by guessing a 256-bit value.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.config import ProcessId
from repro.crypto import field
from repro.crypto.canonical import encode
from repro.errors import (
    DuplicateShareError,
    InsufficientSharesError,
    ThresholdError,
    UnknownSignerError,
)


def message_digest(payload: object) -> int:
    """Hash a canonically encodable payload into a field element ``H(m)``.

    The digest is forced non-zero so partial signatures never degenerate
    (``sigma_i = 0`` would leak nothing but also verify for any secret).
    """
    raw = hashlib.sha256(b"tsig|" + encode(payload)).digest()
    value = int.from_bytes(raw, "big") % field.PRIME
    return value if value != 0 else 1


@dataclass(frozen=True)
class PartialSignature:
    """One process's share-signature on a message."""

    scheme_id: str
    signer: ProcessId
    digest: int
    value: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        """A share is one individual signature."""
        return 1


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined ``(k, n)``-threshold signature: one word, any ``k``.

    ``signers`` records which share-holders contributed — it is carried
    for introspection and tests, not trusted for verification (the field
    element ``value`` is self-authenticating against the dealer oracle).
    """

    scheme_id: str
    digest: int
    value: int
    signers: frozenset[ProcessId]

    def words(self) -> int:
        """Threshold signatures batch k signatures into one word."""
        return 1

    def signatures(self) -> int:
        """Lower-bound accounting: the batched individual signatures."""
        return len(self.signers)


class ThresholdScheme:
    """A dealt ``(k, n)`` scheme; also the verification oracle.

    Parameters
    ----------
    scheme_id:
        Distinguishes schemes (e.g. ``"idk:t+1"`` vs ``"commit"``) so
        partials from different schemes can never be mixed.
    k:
        Combination threshold, ``1 <= k <= n``.
    n:
        Number of share-holders (process ids ``0 .. n-1``).
    seed:
        Deterministic dealer randomness.
    """

    def __init__(
        self,
        scheme_id: str,
        k: int,
        n: int,
        seed: bytes = b"",
        members: frozenset[ProcessId] | None = None,
    ) -> None:
        """``members`` restricts share dealing to a committee: only those
        processes receive shares, so a ``k``-quorum provably comes from
        the committee.  ``None`` deals to all ``n`` processes.
        """
        holders = sorted(members) if members is not None else list(range(n))
        if members is not None and any(not 0 <= pid < n for pid in holders):
            raise ThresholdError(f"members {holders} outside process range 0..{n - 1}")
        if not 1 <= k <= len(holders):
            raise ThresholdError(
                f"need 1 <= k <= |holders|, got k={k}, holders={len(holders)}"
            )
        self._scheme_id = scheme_id
        self._k = k
        self._n = n
        self._members = frozenset(holders)
        material = hashlib.sha256(
            b"dealer|" + seed + scheme_id.encode() + f"|{k}|{n}".encode()
        ).digest()
        coefficients = []
        for i in range(k):
            raw = hashlib.sha256(material + i.to_bytes(4, "big")).digest()
            coefficients.append(int.from_bytes(raw, "big") % field.PRIME)
        if coefficients[0] == 0:
            coefficients[0] = 1
        self._polynomial = field.Polynomial(tuple(coefficients))
        self._secret = self._polynomial.evaluate(0)
        self._shares = {
            pid: self._polynomial.evaluate(pid + 1) for pid in holders
        }

    @property
    def scheme_id(self) -> str:
        return self._scheme_id

    @property
    def k(self) -> int:
        return self._k

    @property
    def n(self) -> int:
        return self._n

    @property
    def members(self) -> frozenset[ProcessId]:
        """The share-holders (a committee, or all ``n`` processes)."""
        return self._members

    def _share_of(self, pid: ProcessId) -> int:
        try:
            return self._shares[pid]
        except KeyError:
            raise UnknownSignerError(
                f"process {pid} holds no share in scheme {self._scheme_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------

    def partial_sign(self, pid: ProcessId, payload: object) -> PartialSignature:
        """Produce ``pid``'s partial signature on ``payload``."""
        digest = message_digest(payload)
        value = field.mul(self._share_of(pid), digest)
        return PartialSignature(
            scheme_id=self._scheme_id, signer=pid, digest=digest, value=value
        )

    def verify_partial(self, partial: PartialSignature, payload: object) -> bool:
        """Check a single partial against the dealer's share table."""
        if partial.scheme_id != self._scheme_id:
            return False
        digest = message_digest(payload)
        if partial.digest != digest:
            return False
        try:
            share = self._share_of(partial.signer)
        except UnknownSignerError:
            return False
        return partial.value == field.mul(share, digest)

    def combine(self, partials: Iterable[PartialSignature]) -> ThresholdSignature:
        """Combine ``k`` (or more) distinct partials into one signature.

        Raises
        ------
        InsufficientSharesError
            Fewer than ``k`` distinct signers contributed.
        DuplicateShareError
            The same signer appears twice.
        ThresholdError
            Partials disagree on scheme or message.
        """
        chosen = list(partials)
        if not chosen:
            raise InsufficientSharesError("no partial signatures supplied")
        signers = [p.signer for p in chosen]
        if len(set(signers)) != len(signers):
            raise DuplicateShareError(f"duplicate signers in {sorted(signers)}")
        if any(p.scheme_id != self._scheme_id for p in chosen):
            raise ThresholdError("partials from a different scheme")
        digest = chosen[0].digest
        if any(p.digest != digest for p in chosen):
            raise ThresholdError("partials sign different messages")
        if len(chosen) < self._k:
            raise InsufficientSharesError(
                f"scheme {self._scheme_id!r} needs {self._k} shares, "
                f"got {len(chosen)}"
            )
        subset = chosen[: self._k]
        points = [(p.signer + 1, p.value) for p in subset]
        value = field.interpolate_at_zero(points)
        return ThresholdSignature(
            scheme_id=self._scheme_id,
            digest=digest,
            value=value,
            signers=frozenset(p.signer for p in subset),
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self, signature: ThresholdSignature, payload: object) -> bool:
        """Check a combined signature against ``payload``.

        This is the trusted verification oracle standing in for the
        public pairing check of a production scheme.
        """
        if signature.scheme_id != self._scheme_id:
            return False
        digest = message_digest(payload)
        if signature.digest != digest:
            return False
        return signature.value == field.mul(self._secret, digest)
