"""Typed quorum certificates and the per-deployment crypto suite.

Protocols form certificates like ``QC_idk``, ``QC_commit(v)``,
``QC_finalized(v)``, ``QC_fallback`` — each a threshold signature on a
``(label, payload)`` pair.  The :class:`CryptoSuite` owns the PKI
registry and one :class:`~repro.crypto.threshold.ThresholdScheme` per
``(label, k)`` combination, dealt deterministically so every component
of a deployment agrees on the schemes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.config import ProcessId, SystemConfig
from repro.crypto.canonical import encode
from repro.crypto.keys import KeyRegistry, Signer
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdScheme,
    ThresholdSignature,
    digest_from_bytes,
)
from repro.errors import InvalidCertificateError, ThresholdError


def _bind(label: str, payload: object) -> tuple:
    """The value actually threshold-signed for a certificate."""
    return ("qc", label, payload)


_SCHEME_CACHE: dict[tuple[bytes, str, int], ThresholdScheme] = {}
_SCHEME_CACHE_CAP = 1024
"""Dealt-scheme memo keyed by ``(master_seed, scheme_id, epoch)``.

Dealing is deterministic in exactly those inputs, so two suites with the
same master seed (e.g. the thousands of single-run simulations a model-
checking sweep builds) share one dealt scheme object — and with it the
scheme's sign/combine/verify memos, which is where most of the crypto
speedup across runs comes from."""


@dataclass(frozen=True)
class QuorumCertificate:
    """A threshold-signed statement: ``label`` holds for ``payload``.

    One word in the paper's complexity model regardless of the quorum
    size that produced it.
    """

    label: str
    payload: object
    signature: ThresholdSignature

    @property
    def signers(self) -> frozenset[ProcessId]:
        return self.signature.signers

    def signatures(self) -> int:
        """Individual signatures batched inside (lower-bound accounting)."""
        return len(self.signature.signers)

    def verify(self, suite: "CryptoSuite") -> bool:
        scheme = suite.scheme_by_id(self.signature.scheme_id)
        if scheme is None:
            return False
        return suite._verify_bound(
            scheme, self.signature, self.label, self.payload
        )

    def words(self) -> int:
        return 1


class CryptoSuite:
    """All cryptographic material for one deployment.

    Parameters
    ----------
    config:
        The deployment's :class:`~repro.config.SystemConfig` (supplies
        ``n`` for share dealing).
    seed:
        Deterministic master seed for the PKI and every dealt scheme.
    epoch:
        Key epoch.  Epoch 0 derives the exact master seed the suite used
        before epochs existed; :meth:`rotate_keys` advances it, replacing
        every key and dealt scheme.  The epoch is baked into every cached
        verification key so rotation invalidates stale verdicts.
    cache:
        When ``False`` the suite bypasses the module-level dealt-scheme
        memo and constructs schemes with their internal memos disabled —
        the reference path the divergence-guard tests compare against.
    """

    _CERT_CACHE_CAP = 1 << 12

    def __init__(
        self,
        config: SystemConfig,
        seed: int = 0,
        *,
        epoch: int = 0,
        cache: bool = True,
    ) -> None:
        self.config = config
        self._seed = seed
        self._cache_enabled = cache
        self._schemes: dict[str, ThresholdScheme] = {}
        # Combined-certificate verdicts keyed by canonical message bytes
        # (plus scheme id, epoch and the signature fields).
        self._cert_cache: dict[tuple[str, int, bytes, int, int], bool] = {}
        # (label, id(payload)) -> (payload, canonical bytes, digest).
        # Identity-keyed: the same *object* trivially has the same
        # canonical encoding, and the stored strong reference keeps the
        # id from being reused.  Hits constantly — protocols re-verify
        # the same statement objects (FALLBACK_STATEMENT, the phase
        # value) many times per run.
        self._bind_memo: dict[tuple[str, int], tuple[object, bytes, int]] = {}
        self._set_epoch(epoch)

    def _set_epoch(self, epoch: int) -> None:
        if epoch < 0:
            raise ThresholdError(f"epoch must be >= 0, got {epoch}")
        self._epoch = epoch
        epoch_tag = "" if epoch == 0 else f"|epoch={epoch}"
        self._master_seed = hashlib.sha256(
            f"suite|{self._seed}|{self.config.n}|{self.config.t}{epoch_tag}".encode()
        ).digest()
        self.registry = KeyRegistry(self.config.n, master_seed=self._master_seed)
        self._schemes.clear()
        self._cert_cache.clear()
        self._bind_memo.clear()

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def cache_enabled(self) -> bool:
        return self._cache_enabled

    def rotate_keys(self) -> int:
        """Advance to the next key epoch.

        Re-derives the master seed, rebuilds the PKI registry and drops
        every dealt scheme and cached certificate verdict.  Signatures
        and certificates produced under the previous epoch no longer
        verify — and, because all memo keys carry the epoch, no cached
        ``True`` can leak across the rotation.
        """
        self._set_epoch(self._epoch + 1)
        return self._epoch

    # ------------------------------------------------------------------
    # Scheme management
    # ------------------------------------------------------------------

    @staticmethod
    def _scheme_id(
        label: str, k: int, members: frozenset[ProcessId] | None
    ) -> str:
        if members is None:
            return f"{label}|k={k}"
        return f"{label}|k={k}|m={','.join(map(str, sorted(members)))}"

    def scheme(
        self,
        label: str,
        k: int,
        members: frozenset[ProcessId] | None = None,
    ) -> ThresholdScheme:
        """Get (dealing on first use) the ``(k, n)`` scheme for ``label``.

        ``members`` restricts share-holders to a committee — used by the
        fallback's recursive committees, whose memberships are a
        deterministic function of ``n`` and therefore part of the
        trusted setup.
        """
        scheme_id = self._scheme_id(label, k, members)
        existing = self._schemes.get(scheme_id)
        if existing is None:
            cache_key = (self._master_seed, scheme_id, self._epoch)
            if self._cache_enabled:
                existing = _SCHEME_CACHE.get(cache_key)
            if existing is None:
                existing = ThresholdScheme(
                    scheme_id=scheme_id,
                    k=k,
                    n=self.config.n,
                    seed=self._master_seed,
                    members=members,
                    epoch=self._epoch,
                    cache=self._cache_enabled,
                )
                if self._cache_enabled:
                    if len(_SCHEME_CACHE) >= _SCHEME_CACHE_CAP:
                        _SCHEME_CACHE.clear()
                    _SCHEME_CACHE[cache_key] = existing
            self._schemes[scheme_id] = existing
        return existing

    def scheme_by_id(self, scheme_id: str) -> ThresholdScheme | None:
        """Resolve a scheme id carried inside a signature.

        The parameters are parsed back out so verification works even if
        this suite instance has not dealt the scheme yet (schemes are
        dealt deterministically from the master seed).
        """
        existing = self._schemes.get(scheme_id)
        if existing is not None:
            return existing
        members: frozenset[ProcessId] | None = None
        body = scheme_id
        if "|m=" in body:
            body, _, members_part = body.rpartition("|m=")
            try:
                members = frozenset(int(p) for p in members_part.split(","))
            except ValueError:
                return None
        label, _, k_part = body.rpartition("|k=")
        if not label or not k_part.isdigit():
            return None
        k = int(k_part)
        holder_count = len(members) if members is not None else self.config.n
        if not 1 <= k <= holder_count:
            return None
        if members is not None and any(
            pid not in self.config.processes for pid in members
        ):
            return None
        return self.scheme(label, k, members)

    def signer(self, pid: ProcessId) -> Signer:
        """The individual-signature capability of process ``pid``."""
        return self.registry.signer_for(pid)

    # ------------------------------------------------------------------
    # Certificate construction / verification helpers
    # ------------------------------------------------------------------

    def _bound(self, label: str, payload: object) -> tuple[bytes, int]:
        """Canonical bytes and digest of the bound statement."""
        if self._cache_enabled:
            key = (label, id(payload))
            hit = self._bind_memo.get(key)
            if hit is not None and hit[0] is payload:
                return hit[1], hit[2]
        encoded = encode(_bind(label, payload))
        digest = digest_from_bytes(encoded, cache=self._cache_enabled)
        if self._cache_enabled:
            if len(self._bind_memo) >= self._CERT_CACHE_CAP:
                self._bind_memo.clear()
            self._bind_memo[key] = (payload, encoded, digest)
        return encoded, digest

    def _bound_digest(self, label: str, payload: object) -> int:
        """Digest of the bound ``(label, payload)`` statement."""
        return self._bound(label, payload)[1]

    def _verify_bound(
        self,
        scheme: ThresholdScheme,
        signature: ThresholdSignature,
        label: str,
        payload: object,
    ) -> bool:
        """Verify a combined signature against the bound statement,
        memoized by the statement's canonical bytes.

        The key carries the scheme id, the epoch and both signature
        fields, so a rotated suite or a doctored signature can never hit
        a stale ``True``.
        """
        if signature.scheme_id != scheme.scheme_id:
            return False
        encoded, digest = self._bound(label, payload)
        key = (
            scheme.scheme_id,
            scheme.epoch,
            encoded,
            signature.digest,
            signature.value,
        )
        if self._cache_enabled:
            cached = self._cert_cache.get(key)
            if cached is not None:
                return cached
        verdict = signature.digest == digest and scheme.verify_value_digest(
            signature.value, digest
        )
        if self._cache_enabled:
            if len(self._cert_cache) >= self._CERT_CACHE_CAP:
                self._cert_cache.clear()
            self._cert_cache[key] = verdict
        return verdict

    def verify_certificate(
        self,
        certificate: QuorumCertificate,
        label: str,
        k: int,
        members: frozenset[ProcessId] | None = None,
    ) -> bool:
        """Strict verification: the certificate must carry ``label`` AND
        have been combined under the expected ``(k, n)`` scheme (with the
        expected committee, if any).

        Protocols must use this (not bare :meth:`QuorumCertificate.verify`)
        when a specific quorum size is semantically required — otherwise
        an adversary could present a certificate from a lower-threshold
        scheme of the same label.
        """
        if not isinstance(certificate, QuorumCertificate):
            return False
        if certificate.label != label:
            return False
        scheme = self.scheme(label, k, members)
        if certificate.signature.scheme_id != scheme.scheme_id:
            return False
        return self._verify_bound(
            scheme, certificate.signature, certificate.label, certificate.payload
        )

    def partial_for_certificate(
        self,
        pid: ProcessId,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> PartialSignature:
        """Process ``pid``'s share toward ``QC_label(payload)``."""
        return self.scheme(label, k, members).partial_sign_digest(
            pid, self._bound_digest(label, payload)
        )

    def verify_partial(
        self,
        partial: PartialSignature,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> bool:
        return self.scheme(label, k, members).verify_partial_digest(
            partial, self._bound_digest(label, payload)
        )

    def combine_certificate(
        self,
        label: str,
        k: int,
        payload: object,
        partials: Iterable[PartialSignature],
        members: frozenset[ProcessId] | None = None,
    ) -> QuorumCertificate:
        """Batch partials into a certificate (Alg. 2 line 26 et al.)."""
        scheme = self.scheme(label, k, members)
        signature = scheme.combine(partials)
        certificate = QuorumCertificate(
            label=label, payload=payload, signature=signature
        )
        if not self._verify_bound(scheme, signature, label, payload):
            raise InvalidCertificateError(
                f"combined certificate for {label!r} does not verify; "
                "partials were not signatures on this payload"
            )
        return certificate


class CertificateCollector:
    """Leader-side accumulator of partial signatures for one certificate.

    Verifies each incoming partial, ignores duplicates and garbage, and
    reports when the quorum ``k`` is reached.
    """

    def __init__(
        self,
        suite: CryptoSuite,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> None:
        self._suite = suite
        self._label = label
        self._k = k
        self._payload = payload
        self._members = members
        self._partials: dict[ProcessId, PartialSignature] = {}
        # The bound statement is fixed for the collector's lifetime, so
        # encode and digest it once; every add() verifies against it.
        self._scheme = suite.scheme(label, k, members)
        self._digest = suite._bound_digest(label, payload)

    @property
    def count(self) -> int:
        return len(self._partials)

    @property
    def complete(self) -> bool:
        return len(self._partials) >= self._k

    def add(self, partial: PartialSignature) -> bool:
        """Add a partial if valid; return :attr:`complete` afterwards."""
        if partial.signer not in self._partials and self._scheme.verify_partial_digest(
            partial, self._digest
        ):
            self._partials[partial.signer] = partial
        return self.complete

    def certificate(self) -> QuorumCertificate:
        """Combine the collected partials; requires :attr:`complete`."""
        if not self.complete:
            raise ThresholdError(
                f"certificate {self._label!r} needs {self._k} partials, "
                f"have {len(self._partials)}"
            )
        return self._suite.combine_certificate(
            self._label,
            self._k,
            self._payload,
            self._partials.values(),
            self._members,
        )


def clear_caches() -> None:
    """Drop the module-level dealt-scheme memo (tests, long-lived
    services).  Per-suite certificate caches die with their suites."""
    _SCHEME_CACHE.clear()
