"""Typed quorum certificates and the per-deployment crypto suite.

Protocols form certificates like ``QC_idk``, ``QC_commit(v)``,
``QC_finalized(v)``, ``QC_fallback`` — each a threshold signature on a
``(label, payload)`` pair.  The :class:`CryptoSuite` owns the PKI
registry and one :class:`~repro.crypto.threshold.ThresholdScheme` per
``(label, k)`` combination, dealt deterministically so every component
of a deployment agrees on the schemes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.config import ProcessId, SystemConfig
from repro.crypto.keys import KeyRegistry, Signer
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdScheme,
    ThresholdSignature,
)
from repro.errors import InvalidCertificateError, ThresholdError


def _bind(label: str, payload: object) -> tuple:
    """The value actually threshold-signed for a certificate."""
    return ("qc", label, payload)


@dataclass(frozen=True)
class QuorumCertificate:
    """A threshold-signed statement: ``label`` holds for ``payload``.

    One word in the paper's complexity model regardless of the quorum
    size that produced it.
    """

    label: str
    payload: object
    signature: ThresholdSignature

    @property
    def signers(self) -> frozenset[ProcessId]:
        return self.signature.signers

    def signatures(self) -> int:
        """Individual signatures batched inside (lower-bound accounting)."""
        return len(self.signature.signers)

    def verify(self, suite: "CryptoSuite") -> bool:
        scheme = suite.scheme_by_id(self.signature.scheme_id)
        if scheme is None:
            return False
        return scheme.verify(self.signature, _bind(self.label, self.payload))

    def words(self) -> int:
        return 1


class CryptoSuite:
    """All cryptographic material for one deployment.

    Parameters
    ----------
    config:
        The deployment's :class:`~repro.config.SystemConfig` (supplies
        ``n`` for share dealing).
    seed:
        Deterministic master seed for the PKI and every dealt scheme.
    """

    def __init__(self, config: SystemConfig, seed: int = 0) -> None:
        self.config = config
        self._master_seed = hashlib.sha256(
            f"suite|{seed}|{config.n}|{config.t}".encode()
        ).digest()
        self.registry = KeyRegistry(config.n, master_seed=self._master_seed)
        self._schemes: dict[str, ThresholdScheme] = {}

    # ------------------------------------------------------------------
    # Scheme management
    # ------------------------------------------------------------------

    @staticmethod
    def _scheme_id(
        label: str, k: int, members: frozenset[ProcessId] | None
    ) -> str:
        if members is None:
            return f"{label}|k={k}"
        return f"{label}|k={k}|m={','.join(map(str, sorted(members)))}"

    def scheme(
        self,
        label: str,
        k: int,
        members: frozenset[ProcessId] | None = None,
    ) -> ThresholdScheme:
        """Get (dealing on first use) the ``(k, n)`` scheme for ``label``.

        ``members`` restricts share-holders to a committee — used by the
        fallback's recursive committees, whose memberships are a
        deterministic function of ``n`` and therefore part of the
        trusted setup.
        """
        scheme_id = self._scheme_id(label, k, members)
        existing = self._schemes.get(scheme_id)
        if existing is None:
            existing = ThresholdScheme(
                scheme_id=scheme_id,
                k=k,
                n=self.config.n,
                seed=self._master_seed,
                members=members,
            )
            self._schemes[scheme_id] = existing
        return existing

    def scheme_by_id(self, scheme_id: str) -> ThresholdScheme | None:
        """Resolve a scheme id carried inside a signature.

        The parameters are parsed back out so verification works even if
        this suite instance has not dealt the scheme yet (schemes are
        dealt deterministically from the master seed).
        """
        existing = self._schemes.get(scheme_id)
        if existing is not None:
            return existing
        members: frozenset[ProcessId] | None = None
        body = scheme_id
        if "|m=" in body:
            body, _, members_part = body.rpartition("|m=")
            try:
                members = frozenset(int(p) for p in members_part.split(","))
            except ValueError:
                return None
        label, _, k_part = body.rpartition("|k=")
        if not label or not k_part.isdigit():
            return None
        k = int(k_part)
        holder_count = len(members) if members is not None else self.config.n
        if not 1 <= k <= holder_count:
            return None
        if members is not None and any(
            pid not in self.config.processes for pid in members
        ):
            return None
        return self.scheme(label, k, members)

    def signer(self, pid: ProcessId) -> Signer:
        """The individual-signature capability of process ``pid``."""
        return self.registry.signer_for(pid)

    # ------------------------------------------------------------------
    # Certificate construction / verification helpers
    # ------------------------------------------------------------------

    def verify_certificate(
        self,
        certificate: QuorumCertificate,
        label: str,
        k: int,
        members: frozenset[ProcessId] | None = None,
    ) -> bool:
        """Strict verification: the certificate must carry ``label`` AND
        have been combined under the expected ``(k, n)`` scheme (with the
        expected committee, if any).

        Protocols must use this (not bare :meth:`QuorumCertificate.verify`)
        when a specific quorum size is semantically required — otherwise
        an adversary could present a certificate from a lower-threshold
        scheme of the same label.
        """
        if not isinstance(certificate, QuorumCertificate):
            return False
        if certificate.label != label:
            return False
        scheme = self.scheme(label, k, members)
        if certificate.signature.scheme_id != scheme.scheme_id:
            return False
        return scheme.verify(
            certificate.signature, _bind(certificate.label, certificate.payload)
        )

    def partial_for_certificate(
        self,
        pid: ProcessId,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> PartialSignature:
        """Process ``pid``'s share toward ``QC_label(payload)``."""
        return self.scheme(label, k, members).partial_sign(pid, _bind(label, payload))

    def verify_partial(
        self,
        partial: PartialSignature,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> bool:
        return self.scheme(label, k, members).verify_partial(
            partial, _bind(label, payload)
        )

    def combine_certificate(
        self,
        label: str,
        k: int,
        payload: object,
        partials: Iterable[PartialSignature],
        members: frozenset[ProcessId] | None = None,
    ) -> QuorumCertificate:
        """Batch partials into a certificate (Alg. 2 line 26 et al.)."""
        signature = self.scheme(label, k, members).combine(partials)
        certificate = QuorumCertificate(
            label=label, payload=payload, signature=signature
        )
        if not certificate.verify(self):
            raise InvalidCertificateError(
                f"combined certificate for {label!r} does not verify; "
                "partials were not signatures on this payload"
            )
        return certificate


class CertificateCollector:
    """Leader-side accumulator of partial signatures for one certificate.

    Verifies each incoming partial, ignores duplicates and garbage, and
    reports when the quorum ``k`` is reached.
    """

    def __init__(
        self,
        suite: CryptoSuite,
        label: str,
        k: int,
        payload: object,
        members: frozenset[ProcessId] | None = None,
    ) -> None:
        self._suite = suite
        self._label = label
        self._k = k
        self._payload = payload
        self._members = members
        self._partials: dict[ProcessId, PartialSignature] = {}

    @property
    def count(self) -> int:
        return len(self._partials)

    @property
    def complete(self) -> bool:
        return len(self._partials) >= self._k

    def add(self, partial: PartialSignature) -> bool:
        """Add a partial if valid; return :attr:`complete` afterwards."""
        if partial.signer not in self._partials and self._suite.verify_partial(
            partial, self._label, self._k, self._payload, self._members
        ):
            self._partials[partial.signer] = partial
        return self.complete

    def certificate(self) -> QuorumCertificate:
        """Combine the collected partials; requires :attr:`complete`."""
        if not self.complete:
            raise ThresholdError(
                f"certificate {self._label!r} needs {self._k} partials, "
                f"have {len(self._partials)}"
            )
        return self._suite.combine_certificate(
            self._label,
            self._k,
            self._payload,
            self._partials.values(),
            self._members,
        )
