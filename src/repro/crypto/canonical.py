"""Canonical, injective byte encoding of protocol values for signing.

Signatures must be computed over bytes.  Protocol payloads are built from
a small vocabulary of Python values (ints, strings, bytes, bools, None,
tuples/lists, frozen dataclasses, enums).  :func:`encode` maps any such
value to a byte string such that distinct values never collide: every
atom is length-prefixed and tagged with its type, and composites encode
their structure.

The encoding is *not* meant to be a wire format — the simulator passes
Python objects directly — it exists solely so that signing and
verification agree on what was signed.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any

_TAG_NONE = b"N"
_TAG_BOOL = b"B"
_TAG_INT = b"I"
_TAG_STR = b"S"
_TAG_BYTES = b"Y"
_TAG_TUPLE = b"T"
_TAG_DATACLASS = b"D"
_TAG_ENUM = b"E"
_TAG_FROZENSET = b"F"


def _with_length(tag: bytes, body: bytes) -> bytes:
    return tag + struct.pack(">I", len(body)) + body


def encode(value: Any) -> bytes:
    """Encode ``value`` into a canonical, injective byte string.

    >>> encode(("vote", 1)) == encode(["vote", 1])   # list == tuple
    True
    >>> encode(True) == encode(1)                    # but bool != int
    False
    >>> encode(("a", "bc")) == encode(("ab", "c"))   # no concatenation tricks
    False

    Raises
    ------
    TypeError
        If ``value`` (or a nested component) is of an unsupported type.
    """
    if value is None:
        return _TAG_NONE
    # bool must be checked before int (bool is an int subclass).
    if isinstance(value, bool):
        return _TAG_BOOL + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        body = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return _with_length(_TAG_INT, body)
    if isinstance(value, str):
        return _with_length(_TAG_STR, value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return _with_length(_TAG_BYTES, bytes(value))
    if isinstance(value, enum.Enum):
        body = encode(type(value).__name__) + encode(value.name)
        return _with_length(_TAG_ENUM, body)
    if isinstance(value, (tuple, list)):
        body = b"".join(encode(item) for item in value)
        return _with_length(_TAG_TUPLE, struct.pack(">I", len(value)) + body)
    if isinstance(value, frozenset):
        parts = sorted(encode(item) for item in value)
        body = b"".join(parts)
        return _with_length(_TAG_FROZENSET, struct.pack(">I", len(parts)) + body)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Frozen payloads are immutable, so their encoding is too: memoize
        # it on the instance (signatures hash the same message object once
        # per receiver otherwise).  Mutable dataclasses are not memoized.
        params = getattr(type(value), "__dataclass_params__", None)
        instance_dict = getattr(value, "__dict__", None)
        frozen = params is not None and params.frozen and instance_dict is not None
        if frozen:
            cached = instance_dict.get("_canonical_cache")
            if cached is not None:
                return cached
        fields = dataclasses.fields(value)
        body = encode(type(value).__name__) + b"".join(
            encode(getattr(value, f.name)) for f in fields
        )
        encoded = _with_length(_TAG_DATACLASS, body)
        if frozen:
            object.__setattr__(value, "_canonical_cache", encoded)
        return encoded
    raise TypeError(f"cannot canonically encode value of type {type(value).__name__}")
