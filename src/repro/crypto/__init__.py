"""Cryptographic substrate: PKI signatures and threshold signatures.

The paper assumes a trusted PKI and an *ideal* ``(k, n)``-threshold
signature scheme (Section 2).  This package provides both:

* :mod:`repro.crypto.keys` / :mod:`repro.crypto.signatures` — per-process
  unforgeable signatures backed by an HMAC key registry (the trusted PKI);
* :mod:`repro.crypto.threshold` — a real Shamir-secret-sharing threshold
  scheme over a 256-bit prime field, with trusted-dealer verification
  (information-theoretically unforgeable below the threshold);
* :mod:`repro.crypto.certificates` — typed quorum certificates the
  protocols exchange, each counting as one word.
"""

from repro.crypto.canonical import encode
from repro.crypto.certificates import (
    CertificateCollector,
    CryptoSuite,
    QuorumCertificate,
)
from repro.crypto.keys import KeyRegistry, Signer
from repro.crypto.signatures import (
    EquivocationProof,
    Signature,
    SignedValue,
    sign_value,
)
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdScheme,
    ThresholdSignature,
)

__all__ = [
    "encode",
    "KeyRegistry",
    "Signer",
    "Signature",
    "SignedValue",
    "sign_value",
    "EquivocationProof",
    "ThresholdScheme",
    "PartialSignature",
    "ThresholdSignature",
    "CryptoSuite",
    "QuorumCertificate",
    "CertificateCollector",
]
