"""One-shot reproduction report generator.

``python -m repro report`` runs a condensed version of every benchmark
sweep and writes a single self-contained markdown report: Table 1 rows
with measured exponents, the Lemma 6 / Lemma 8 boundaries, the baseline
comparison, and a verdict per claim.  Useful as a smoke-level artifact
when the full ``pytest benchmarks/`` run is too heavy (e.g. in CI).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.fitting import fit_slope_vs
from repro.analysis.sweeps import (
    sweep_byzantine_broadcast,
    sweep_fallback_ba,
    sweep_strong_ba,
    sweep_weak_ba,
)
from repro.config import SystemConfig
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.fallback.dolev_strong import run_dolev_strong


@dataclass(frozen=True)
class ClaimResult:
    """One reproduced claim: where it came from, what was measured."""

    claim: str
    paper: str
    measured: str
    holds: bool


def _slope(points) -> float:
    return fit_slope_vs(points, lambda p: p.n, lambda p: p.words).slope


def collect_claims(ns=(5, 9, 13, 17)) -> list[ClaimResult]:
    """Run the condensed measurement battery."""
    claims: list[ClaimResult] = []

    bb0 = _slope(sweep_byzantine_broadcast(ns, fs=lambda c: [0]))
    claims.append(
        ClaimResult(
            claim="BB words, failure-free (Table 1)",
            paper="O(n(f+1)) -> slope 1",
            measured=f"n^{bb0:.2f}",
            holds=0.8 < bb0 < 1.3,
        )
    )
    bbt = _slope(sweep_byzantine_broadcast(ns, fs=lambda c: [c.t]))
    claims.append(
        ClaimResult(
            claim="BB words, f=t (Table 1)",
            paper="O(n^2) -> slope 2",
            measured=f"n^{bbt:.2f}",
            holds=1.6 < bbt < 2.5,
        )
    )
    wba0 = _slope(sweep_weak_ba(ns, fs=lambda c: [0]))
    claims.append(
        ClaimResult(
            claim="weak BA words, failure-free (Table 1)",
            paper="O(n(f+1)) -> slope 1",
            measured=f"n^{wba0:.2f}",
            holds=0.8 < wba0 < 1.3,
        )
    )
    sba0 = _slope(sweep_strong_ba(ns, fs=lambda c: [0]))
    claims.append(
        ClaimResult(
            claim="strong BA words, failure-free (Lemma 8)",
            paper="O(n) -> slope 1",
            measured=f"n^{sba0:.2f}",
            holds=0.8 < sba0 < 1.3,
        )
    )
    fb = _slope(sweep_fallback_ba(ns, fs=lambda c: [0]))
    claims.append(
        ClaimResult(
            claim="A_fallback words (Momose-Ren black box)",
            paper="O(n^2) -> slope 2",
            measured=f"n^{fb:.2f}",
            holds=1.6 < fb < 2.6,
        )
    )

    # Lemma 6 boundary at n=13.
    config = SystemConfig.with_optimal_resilience(13)
    validity = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))
    boundary_ok = True
    activations = []
    for f in range(config.t + 1):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: "v" for p in config.processes if p not in byzantine}
        result = run_weak_ba(config, inputs, validity, byzantine=byzantine)
        used = result.fallback_was_used()
        activations.append((f, used))
        if f < config.fallback_failure_threshold and used:
            boundary_ok = False
    first_activation = next((f for f, used in activations if used), None)
    claims.append(
        ClaimResult(
            claim="Lemma 6 fallback threshold (n=13)",
            paper=f"no fallback below (n-t-1)/2 = "
            f"{config.fallback_failure_threshold}",
            measured=f"first activation at f={first_activation}",
            holds=boundary_ok,
        )
    )

    # Lemma 8: no fallback and 4 rounds at f=0 (n=9).
    config9 = SystemConfig.with_optimal_resilience(9)
    sba = run_strong_ba(config9, {p: 1 for p in config9.processes})
    claims.append(
        ClaimResult(
            claim="Lemma 8 fast path (n=9, f=0)",
            paper="4 leader rounds, no fallback",
            measured=f"{sba.correct_words} words, "
            f"fallback={'yes' if sba.fallback_was_used() else 'no'}",
            holds=not sba.fallback_was_used()
            and sba.correct_words <= 4 * (config9.n - 1),
        )
    )

    # Baseline comparison at n=13.
    config13 = SystemConfig.with_optimal_resilience(13)
    adaptive = sweep_byzantine_broadcast([13], fs=lambda c: [0])[0].words
    baseline = run_dolev_strong(config13, sender=0, value="v").correct_words
    claims.append(
        ClaimResult(
            claim="adaptive BB vs Dolev-Strong (n=13, f=0)",
            paper="adaptive wins (Section 4)",
            measured=f"{adaptive} vs {baseline} words "
            f"({baseline / adaptive:.1f}x)",
            holds=adaptive < baseline,
        )
    )
    return claims


def render_report(claims: list[ClaimResult]) -> str:
    """The markdown report body."""
    lines = [
        "# Reproduction report",
        "",
        "Condensed measurement battery over the deterministic simulator.",
        "",
        "| claim | paper | measured | verdict |",
        "|---|---|---|---|",
    ]
    for c in claims:
        verdict = "✓ reproduced" if c.holds else "✗ MISMATCH"
        lines.append(f"| {c.claim} | {c.paper} | {c.measured} | {verdict} |")
    reproduced = sum(1 for c in claims if c.holds)
    lines += [
        "",
        f"**{reproduced}/{len(claims)} claims reproduced.**",
        "",
        "Full tables: run `pytest benchmarks/ --benchmark-only` "
        "(writes `benchmarks/results/*.txt`).",
    ]
    return "\n".join(lines)
