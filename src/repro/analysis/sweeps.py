"""Parameter sweeps: run a protocol across ``(n, f)`` grids and record
the paper's complexity measures for each run.

Every sweep returns a list of :class:`SweepPoint` — the raw material for
the benchmark tables and the slope fits.  Sweeps are deterministic given
their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.adversary.strategies import (
    AdversaryStrategy,
    CorruptionPlan,
    SilentStrategy,
    apply_strategy,
)
from repro.config import ProcessId, SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.strong_ba import strong_ba_protocol
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.fallback.dolev_strong import dolev_strong_protocol
from repro.fallback.recursive_ba import fallback_ba
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation


@dataclass(frozen=True)
class SweepPoint:
    """One run's complexity measurements."""

    protocol: str
    n: int
    t: int
    f: int
    seed: int
    words: int
    messages: int
    signatures: int
    ticks: int
    fallback_used: bool
    non_silent_phases: int
    decision: Any

    @property
    def words_per_nf(self) -> float:
        """``words / (n * (f + 1))`` — flat iff the adaptive bound is tight."""
        return self.words / (self.n * (self.f + 1))

    @property
    def words_per_n2(self) -> float:
        """``words / n^2`` — flat iff the run is quadratic."""
        return self.words / (self.n**2)


def _measure(
    protocol: str, result: RunResult, seed: int, n: int, t: int
) -> SweepPoint:
    non_silent = result.trace.count("phase_non_silent") + result.trace.count(
        "bb_phase_non_silent"
    )
    try:
        decision = result.unanimous_decision()
    except Exception:  # benchmarks still want the point; tests assert separately
        decision = None
    return SweepPoint(
        protocol=protocol,
        n=n,
        t=t,
        f=result.f,
        seed=seed,
        words=result.correct_words,
        messages=result.ledger.correct_messages,
        signatures=result.ledger.signature_count(),
        ticks=result.ticks,
        fallback_used=result.fallback_was_used(),
        non_silent_phases=non_silent,
        decision=decision,
    )


def _run_with_strategy(
    protocol: str,
    config: SystemConfig,
    strategy: AdversaryStrategy,
    f: int,
    seed: int,
    protocol_factory: Callable[[ProcessId], object],
    *,
    max_ticks: int = 200_000,
) -> SweepPoint:
    plan: CorruptionPlan = strategy.plan(config, f, seed)
    simulation = Simulation(config, seed=seed, max_ticks=max_ticks)
    apply_strategy(simulation, plan, protocol_factory)
    result = simulation.run()
    return _measure(protocol, result, seed, config.n, config.t)


def _default_grid(
    ns: Sequence[int], fs: Callable[[SystemConfig], Iterable[int]] | None
) -> list[tuple[SystemConfig, int]]:
    grid: list[tuple[SystemConfig, int]] = []
    for n in ns:
        config = SystemConfig.with_optimal_resilience(n)
        failure_counts = (
            list(fs(config)) if fs is not None else list(range(config.t + 1))
        )
        for f in failure_counts:
            grid.append((config, f))
    return grid


def sweep_byzantine_broadcast(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "payload",
) -> list[SweepPoint]:
    """Run adaptive BB over the grid; the sender (process 0) stays correct."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "bb",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: byzantine_broadcast_protocol(
                        ctx, 0, value
                    ),
                )
            )
    return points


def sweep_weak_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "proposal",
) -> list[SweepPoint]:
    """Run weak BA (all correct processes propose ``value``)."""
    validity = ExternalValidity(lambda v: isinstance(v, str))
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy()
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "weak_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: weak_ba_protocol(ctx, value, validity),
                )
            )
    return points


def sweep_strong_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    inputs: Callable[[ProcessId], int] = lambda pid: 1,
) -> list[SweepPoint]:
    """Run Algorithm 5 (binary strong BA)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "strong_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx, v=inputs(pid): strong_ba_protocol(
                        ctx, v
                    ),
                )
            )
    return points


def sweep_fallback_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "v",
) -> list[SweepPoint]:
    """Run the quadratic ``Afallback`` directly (the Momose–Ren row)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy()
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "fallback_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: fallback_ba(
                        ctx, value, round_ticks=1
                    ),
                )
            )
    return points


_SWEEPS: dict[str, Callable[..., list["SweepPoint"]]] = {}
"""Sweep functions by protocol key, for the parallel driver and CLI."""


def _sweep_task(args: tuple[str, int, int, int]) -> SweepPoint:
    """Run one grid point of a named sweep (worker entry point).

    Module-level so multiprocessing can pickle it; the sweep's default
    adversary strategy is rebuilt inside the worker.  One point per
    task keeps shards balanced — large-``n`` runs dominate, and a
    per-``n`` split would leave workers idle behind the biggest one.
    """
    protocol, n, f, seed = args
    sweep = _SWEEPS[protocol]
    config = SystemConfig.with_optimal_resilience(n)
    (point,) = sweep([n], fs=lambda _config: [f], seeds=[seed])
    assert point.n == config.n and point.seed == seed
    return point


def sweep_parallel(
    protocol: str,
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
) -> list[SweepPoint]:
    """Run a named sweep with its grid points fanned out over ``jobs``
    worker processes.

    Points come back in the same (n, f, seed) order as the serial sweep
    functions produce, and each point's run is bit-identical to its
    serial counterpart (every run is seeded and self-contained — the
    processes share nothing).  Only the sweeps' *default* adversary
    strategies are supported here; custom strategy objects stay on the
    serial API.
    """
    # Accept the CLI's hyphenated spellings alongside the ledger's
    # protocol keys ("weak-ba" == "weak_ba", "fallback" == "fallback_ba").
    key = protocol.replace("-", "_")
    if key == "fallback":
        key = "fallback_ba"
    protocol = key
    if protocol not in _SWEEPS:
        raise ValueError(
            f"unknown sweep protocol {protocol!r}; "
            f"known: {sorted(_SWEEPS)}"
        )
    from repro.runtime.pool import parallel_map

    tasks: list[tuple[str, int, int, int]] = []
    for config, f in _default_grid(ns, fs):
        for seed in seeds:
            tasks.append((protocol, config.n, f, seed))
    return parallel_map(_sweep_task, tasks, jobs)


def sweep_dolev_strong(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "payload",
) -> list[SweepPoint]:
    """Run the Dolev–Strong baseline (sender 0 stays correct)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "dolev_strong",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: dolev_strong_protocol(ctx, 0, value),
                )
            )
    return points


_SWEEPS.update(
    {
        "bb": sweep_byzantine_broadcast,
        "weak_ba": sweep_weak_ba,
        "strong_ba": sweep_strong_ba,
        "fallback_ba": sweep_fallback_ba,
        "dolev_strong": sweep_dolev_strong,
    }
)
