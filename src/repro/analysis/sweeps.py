"""Parameter sweeps: run a protocol across ``(n, f)`` grids and record
the paper's complexity measures for each run.

Every sweep returns a list of :class:`SweepPoint` — the raw material for
the benchmark tables and the slope fits.  Sweeps are deterministic given
their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.adversary.strategies import (
    AdversaryStrategy,
    CorruptionPlan,
    SilentStrategy,
    apply_strategy,
)
from repro.config import ProcessId, SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.strong_ba import strong_ba_protocol
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.fallback.dolev_strong import dolev_strong_protocol
from repro.fallback.recursive_ba import fallback_ba
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation
from repro.runtime.synchrony import SynchronyModel, parse_synchrony


@dataclass(frozen=True)
class SweepPoint:
    """One run's complexity measurements."""

    protocol: str
    n: int
    t: int
    f: int
    seed: int
    words: int
    messages: int
    signatures: int
    ticks: int
    fallback_used: bool
    non_silent_phases: int
    decision: Any

    @property
    def words_per_nf(self) -> float:
        """``words / (n * (f + 1))`` — flat iff the adaptive bound is tight."""
        return self.words / (self.n * (self.f + 1))

    @property
    def words_per_n2(self) -> float:
        """``words / n^2`` — flat iff the run is quadratic."""
        return self.words / (self.n**2)


def _measure(
    protocol: str, result: RunResult, seed: int, n: int, t: int
) -> SweepPoint:
    non_silent = result.trace.count("phase_non_silent") + result.trace.count(
        "bb_phase_non_silent"
    )
    try:
        decision = result.unanimous_decision()
    except Exception:  # benchmarks still want the point; tests assert separately
        decision = None
    return SweepPoint(
        protocol=protocol,
        n=n,
        t=t,
        f=result.f,
        seed=seed,
        words=result.correct_words,
        messages=result.ledger.correct_messages,
        signatures=result.ledger.signature_count(),
        ticks=result.ticks,
        fallback_used=result.fallback_was_used(),
        non_silent_phases=non_silent,
        decision=decision,
    )


def _run_with_strategy(
    protocol: str,
    config: SystemConfig,
    strategy: AdversaryStrategy,
    f: int,
    seed: int,
    protocol_factory: Callable[[ProcessId], object],
    *,
    max_ticks: int = 200_000,
    synchrony: SynchronyModel | None = None,
) -> SweepPoint:
    plan: CorruptionPlan = strategy.plan(config, f, seed)
    # Reseed the timing model per grid point so seeded sub-schedules
    # (pre-GST delays, link latencies, drift) vary with the sweep seed.
    model = synchrony.reseeded(seed) if synchrony is not None else None
    simulation = Simulation(
        config, seed=seed, max_ticks=max_ticks, synchrony=model
    )
    apply_strategy(simulation, plan, protocol_factory)
    result = simulation.run()
    return _measure(protocol, result, seed, config.n, config.t)


def _default_grid(
    ns: Sequence[int], fs: Callable[[SystemConfig], Iterable[int]] | None
) -> list[tuple[SystemConfig, int]]:
    grid: list[tuple[SystemConfig, int]] = []
    for n in ns:
        config = SystemConfig.with_optimal_resilience(n)
        failure_counts = (
            list(fs(config)) if fs is not None else list(range(config.t + 1))
        )
        for f in failure_counts:
            grid.append((config, f))
    return grid


def sweep_byzantine_broadcast(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "payload",
    synchrony: SynchronyModel | None = None,
) -> list[SweepPoint]:
    """Run adaptive BB over the grid; the sender (process 0) stays correct."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "bb",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: byzantine_broadcast_protocol(
                        ctx, 0, value
                    ),
                    synchrony=synchrony,
                )
            )
    return points


def sweep_weak_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "proposal",
    synchrony: SynchronyModel | None = None,
) -> list[SweepPoint]:
    """Run weak BA (all correct processes propose ``value``)."""
    validity = ExternalValidity(lambda v: isinstance(v, str))
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy()
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "weak_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: weak_ba_protocol(ctx, value, validity),
                    synchrony=synchrony,
                )
            )
    return points


def sweep_strong_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    inputs: Callable[[ProcessId], int] = lambda pid: 1,
    synchrony: SynchronyModel | None = None,
) -> list[SweepPoint]:
    """Run Algorithm 5 (binary strong BA)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "strong_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx, v=inputs(pid): strong_ba_protocol(
                        ctx, v
                    ),
                    synchrony=synchrony,
                )
            )
    return points


def sweep_fallback_ba(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "v",
    synchrony: SynchronyModel | None = None,
) -> list[SweepPoint]:
    """Run the quadratic ``Afallback`` directly (the Momose–Ren row)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy()
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "fallback_ba",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: fallback_ba(
                        ctx, value, round_ticks=1
                    ),
                    synchrony=synchrony,
                )
            )
    return points


_SWEEPS: dict[str, Callable[..., list["SweepPoint"]]] = {}
"""Sweep functions by protocol key, for the parallel driver and CLI."""


def _sweep_task(args: tuple[str, int, int, int, str | None]) -> SweepPoint:
    """Run one grid point of a named sweep (worker entry point).

    Module-level so multiprocessing can pickle it; the sweep's default
    adversary strategy — and the synchrony model, shipped as its CLI
    spec string — are rebuilt inside the worker.  One point per task
    keeps shards balanced — large-``n`` runs dominate, and a per-``n``
    split would leave workers idle behind the biggest one.
    """
    protocol, n, f, seed, spec = args
    sweep = _SWEEPS[protocol]
    config = SystemConfig.with_optimal_resilience(n)
    model = parse_synchrony(spec) if spec is not None else None
    (point,) = sweep(
        [n], fs=lambda _config: [f], seeds=[seed], synchrony=model
    )
    assert point.n == config.n and point.seed == seed
    return point


def sweep_parallel(
    protocol: str,
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    synchrony: str | None = None,
) -> list[SweepPoint]:
    """Run a named sweep with its grid points fanned out over ``jobs``
    worker processes.  ``synchrony`` is a :func:`parse_synchrony` spec
    string (specs pickle across workers; model objects need not).

    Points come back in the same (n, f, seed) order as the serial sweep
    functions produce, and each point's run is bit-identical to its
    serial counterpart (every run is seeded and self-contained — the
    processes share nothing).  Only the sweeps' *default* adversary
    strategies are supported here; custom strategy objects stay on the
    serial API.
    """
    # Accept the CLI's hyphenated spellings alongside the ledger's
    # protocol keys ("weak-ba" == "weak_ba", "fallback" == "fallback_ba").
    key = protocol.replace("-", "_")
    if key == "fallback":
        key = "fallback_ba"
    protocol = key
    if protocol not in _SWEEPS:
        raise ValueError(
            f"unknown sweep protocol {protocol!r}; "
            f"known: {sorted(_SWEEPS)}"
        )
    if synchrony is not None:
        parse_synchrony(synchrony)  # fail fast, before any worker spawns
    from repro.runtime.pool import parallel_map

    tasks: list[tuple[str, int, int, int, str | None]] = []
    for config, f in _default_grid(ns, fs):
        for seed in seeds:
            tasks.append((protocol, config.n, f, seed, synchrony))
    return parallel_map(_sweep_task, tasks, jobs)


def sweep_dolev_strong(
    ns: Sequence[int],
    *,
    fs: Callable[[SystemConfig], Iterable[int]] | None = None,
    strategy: AdversaryStrategy | None = None,
    seeds: Sequence[int] = (0,),
    value: object = "payload",
    synchrony: SynchronyModel | None = None,
) -> list[SweepPoint]:
    """Run the Dolev–Strong baseline (sender 0 stays correct)."""
    points = []
    for config, f in _default_grid(ns, fs):
        strat = strategy or SilentStrategy(avoid=frozenset({0}))
        for seed in seeds:
            points.append(
                _run_with_strategy(
                    "dolev_strong",
                    config,
                    strat,
                    f,
                    seed,
                    lambda pid: lambda ctx: dolev_strong_protocol(ctx, 0, value),
                    synchrony=synchrony,
                )
            )
    return points


_SWEEPS.update(
    {
        "bb": sweep_byzantine_broadcast,
        "weak_ba": sweep_weak_ba,
        "strong_ba": sweep_strong_ba,
        "fallback_ba": sweep_fallback_ba,
        "dolev_strong": sweep_dolev_strong,
    }
)
