"""Growth-exponent estimation for measured word complexities.

The benchmarks verify *shapes*, not constants: ``O(n)`` vs ``O(n^2)``
vs ``O(n(f+1))``.  A least-squares fit of ``log(words)`` against
``log(x)`` estimates the exponent; the benchmarks then assert e.g. that
the failure-free Algorithm 5 exponent in ``n`` is close to 1 while the
fallback's is close to 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence


@dataclass(frozen=True)
class SlopeFit:
    """Result of a log-log least-squares fit."""

    slope: float
    intercept: float
    r_squared: float
    points: int

    def predict(self, x: float) -> float:
        """Predicted ``y`` at ``x`` under the fitted power law."""
        return math.exp(self.intercept) * x**self.slope


def fit_loglog_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> SlopeFit:
    """Least-squares slope of ``log(y)`` vs ``log(x)``.

    Requires at least two distinct positive ``x`` values and positive
    ``y`` values (word counts always are).

    >>> fit = fit_loglog_slope([2, 4, 8], [12, 48, 192])   # y = 3 x^2
    >>> round(fit.slope, 6), round(fit.r_squared, 6)
    (2.0, 1.0)
    >>> round(fit.predict(16), 6)
    768.0
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} xs vs {len(ys)} ys")
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len({x for x, _ in pairs}) < 2:
        raise ValueError("need at least two distinct positive x values")
    lx = [math.log(x) for x, _ in pairs]
    ly = [math.log(y) for _, y in pairs]
    n = len(pairs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (intercept + slope * x)) ** 2 for x, y in zip(lx, ly)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return SlopeFit(
        slope=slope, intercept=intercept, r_squared=r_squared, points=n
    )


def fit_slope_vs(
    points: Iterable[object],
    x_of: Callable[[object], float],
    y_of: Callable[[object], float],
) -> SlopeFit:
    """Fit a power law over arbitrary records via accessor callables."""
    xs, ys = [], []
    for point in points:
        xs.append(x_of(point))
        ys.append(y_of(point))
    return fit_loglog_slope(xs, ys)


def crossover_point(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """First ``x`` at which series ``a`` stops being cheaper than ``b``.

    Returns ``None`` if ``a`` stays below ``b`` throughout (or the
    series never start with ``a`` below ``b``).
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise ValueError("series must be equally long")
    started_below = False
    for x, a, b in zip(xs, ys_a, ys_b):
        if a < b:
            started_below = True
        elif started_below:
            return x
    return None
