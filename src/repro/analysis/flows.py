"""Message-flow analysis: who talked to whom, when, and at what cost.

Operates on the :class:`~repro.metrics.words.WordLedger` (always
available) and, for the sequence diagram, on raw envelopes (record them
with ``Simulation(..., record_envelopes=True)``).  Used by tests, the
deep-dive example, and anyone debugging a protocol run.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.config import ProcessId
from repro.metrics.words import WordLedger
from repro.runtime.envelope import Envelope
from repro.runtime.result import RunResult
from repro.runtime.trace import TraceEvent


def words_per_tick(
    ledger: WordLedger, correct_only: bool = True
) -> dict[int, int]:
    """Total words sent at each tick."""
    totals: dict[int, int] = defaultdict(int)
    for record in ledger.records:
        if correct_only and not record.sender_correct:
            continue
        totals[record.tick] += record.words
    return dict(totals)


def flow_matrix(
    ledger: WordLedger, n: int, correct_only: bool = True
) -> list[list[int]]:
    """``matrix[sender][receiver]`` = words sent over the whole run."""
    matrix = [[0] * n for _ in range(n)]
    for record in ledger.records:
        if correct_only and not record.sender_correct:
            continue
        matrix[record.sender][record.receiver] += record.words
    return matrix


def render_flow_matrix(matrix: Sequence[Sequence[int]]) -> str:
    """ASCII heat table of the sender -> receiver word flows."""
    n = len(matrix)
    width = max(3, max((len(str(v)) for row in matrix for v in row), default=1))
    header = "to:  " + " ".join(str(j).rjust(width) for j in range(n))
    lines = [header]
    for i, row in enumerate(matrix):
        cells = " ".join(
            (str(v) if v else "·").rjust(width) for v in row
        )
        lines.append(f"p{i:<3} {cells}")
    return "\n".join(lines)


def leader_centrality(ledger: WordLedger, n: int) -> dict[ProcessId, float]:
    """Fraction of all correct words touching each process (as sender or
    receiver) — leaders of non-silent phases stand out."""
    touch: dict[ProcessId, int] = defaultdict(int)
    total = 0
    for record in ledger.records:
        if not record.sender_correct:
            continue
        touch[record.sender] += record.words
        touch[record.receiver] += record.words
        total += 2 * record.words
    if total == 0:
        return {pid: 0.0 for pid in range(n)}
    return {pid: touch.get(pid, 0) / total for pid in range(n)}


def activity_timeline(result: RunResult, width: int = 50) -> str:
    """One line per tick: a bar of the words sent plus the payload types
    and any trace events — the run at a glance."""
    per_tick = words_per_tick(result.ledger)
    types_per_tick: dict[int, set[str]] = defaultdict(set)
    for record in result.ledger.records:
        if record.sender_correct:
            types_per_tick[record.tick].add(record.payload_type)
    events_per_tick: dict[int, list[TraceEvent]] = defaultdict(list)
    for event in result.trace.events:
        events_per_tick[event.tick].append(event)

    peak = max(per_tick.values(), default=1) or 1
    lines = []
    for tick in range(result.ticks + 1):
        words = per_tick.get(tick, 0)
        if not words and tick not in events_per_tick:
            continue
        bar = "#" * max(0, round(width * words / peak))
        annotations = ",".join(sorted(types_per_tick.get(tick, ())))
        event_names = {e.name for e in events_per_tick.get(tick, ())}
        marks = (" [" + ",".join(sorted(event_names)) + "]") if event_names else ""
        lines.append(f"t={tick:<5} {words:>5}w |{bar:<{width}}| {annotations}{marks}")
    return "\n".join(lines)


def sequence_diagram(
    envelopes: Iterable[Envelope],
    *,
    max_messages: int = 200,
) -> str:
    """A textual sequence diagram of recorded envelopes (small runs)."""
    lines = []
    for index, envelope in enumerate(envelopes):
        if index >= max_messages:
            lines.append(f"... (+ more, truncated at {max_messages})")
            break
        lines.append(
            f"t={envelope.sent_at:<4} p{envelope.sender} -> "
            f"p{envelope.receiver}: {type(envelope.payload).__name__}"
        )
    return "\n".join(lines)


def silent_ticks(result: RunResult) -> list[int]:
    """Ticks in which no correct process sent anything — the literal
    silence the adaptive protocols monetize."""
    per_tick = words_per_tick(result.ledger)
    return [t for t in range(result.ticks) if per_tick.get(t, 0) == 0]
