"""Plain-text table rendering for benchmark output.

The benchmarks print tables mirroring the paper's Table 1 rows plus the
measured series; these helpers keep the formatting consistent and
dependency-free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.analysis.sweeps import SweepPoint


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_points(
    points: Sequence[SweepPoint],
    extra: dict[str, Callable[[SweepPoint], Any]] | None = None,
) -> str:
    """Standard rendering of sweep results."""
    extra = extra or {}
    headers = [
        "protocol",
        "n",
        "t",
        "f",
        "words",
        "msgs",
        "sigs",
        "ticks",
        "fallback",
        "w/(n(f+1))",
        *extra.keys(),
    ]
    rows = []
    for p in points:
        rows.append(
            [
                p.protocol,
                p.n,
                p.t,
                p.f,
                p.words,
                p.messages,
                p.signatures,
                p.ticks,
                "yes" if p.fallback_used else "no",
                p.words_per_nf,
                *(fn(p) for fn in extra.values()),
            ]
        )
    return format_table(headers, rows)


def ascii_series_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    title: str = "",
) -> str:
    """A minimal horizontal-bar plot for example scripts.

    Each x gets one row per series with a bar proportional to the value
    (linear scale, normalized to the global maximum).
    """
    peak = max((max(ys) for ys in series.values() if ys), default=1) or 1
    lines = [title] if title else []
    label_width = max(len(name) for name in series)
    for index, x in enumerate(xs):
        for name, ys in series.items():
            value = ys[index]
            bar = "#" * max(1, round(width * value / peak)) if value else ""
            lines.append(
                f"x={x:<6g} {name.ljust(label_width)} |{bar} {value:g}"
            )
        lines.append("")
    return "\n".join(lines)
