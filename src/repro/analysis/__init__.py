"""Measurement harness: sweeps, complexity-slope fitting, table rendering.

The paper's evaluation is analytical (Table 1); reproducing it means
*measuring* the implemented protocols across ``(n, f)`` grids and
checking the measured growth exponents and activation thresholds against
the claimed bounds.  This package provides the shared machinery used by
every benchmark under ``benchmarks/``.
"""

from repro.analysis.closed_forms import CLOSED_FORMS
from repro.analysis.export import load_run, save_run
from repro.analysis.fitting import (
    crossover_point,
    fit_loglog_slope,
    fit_slope_vs,
)
from repro.analysis.flows import (
    activity_timeline,
    flow_matrix,
    words_per_tick,
)
from repro.analysis.latency import decision_latencies, latency_summary
from repro.analysis.montecarlo import (
    expected_cost_curve,
    run_probabilistic_trials,
)
from repro.analysis.report import collect_claims, render_report
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_byzantine_broadcast,
    sweep_dolev_strong,
    sweep_fallback_ba,
    sweep_strong_ba,
    sweep_weak_ba,
)
from repro.analysis.tables import format_table, render_points

__all__ = [
    "fit_loglog_slope",
    "fit_slope_vs",
    "crossover_point",
    "SweepPoint",
    "sweep_byzantine_broadcast",
    "sweep_weak_ba",
    "sweep_strong_ba",
    "sweep_fallback_ba",
    "sweep_dolev_strong",
    "format_table",
    "render_points",
    "CLOSED_FORMS",
    "save_run",
    "load_run",
    "activity_timeline",
    "flow_matrix",
    "words_per_tick",
    "decision_latencies",
    "latency_summary",
    "expected_cost_curve",
    "run_probabilistic_trials",
    "collect_claims",
    "render_report",
]
