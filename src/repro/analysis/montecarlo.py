"""Monte-Carlo runner: expected cost under probabilistic failures.

The paper's motivation (Sections 1 and 4): *"in most runs, where
systems do not exhibit the worst crash patterns, the complexity is much
lower"*.  This module quantifies that: each process fails independently
with probability ``p`` (crashing at a random tick), we run many trials,
and report the distribution of the word bill.  The adaptive protocols'
*expected* cost then interpolates between the linear and quadratic
regimes as ``p`` grows, while a fixed quadratic protocol pays full
price at every ``p``.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.adversary.behaviors import SilentBehavior
from repro.config import ProcessId, SystemConfig
from repro.runtime.result import RunResult
from repro.runtime.scheduler import Simulation


@dataclass(frozen=True)
class CostDistribution:
    """Word-cost statistics over a batch of randomized trials."""

    label: str
    trials: int
    mean: float
    median: float
    p95: float
    maximum: int
    fallback_rate: float
    disagreements: int

    def row(self) -> list:
        return [
            self.label,
            self.trials,
            round(self.mean, 1),
            round(self.median, 1),
            round(self.p95, 1),
            self.maximum,
            f"{self.fallback_rate:.0%}",
            self.disagreements,
        ]


def run_probabilistic_trials(
    config: SystemConfig,
    protocol_factory: Callable[[ProcessId], object],
    *,
    failure_probability: float,
    trials: int,
    seed: int = 0,
    crash_window: int = 30,
    protected: frozenset[ProcessId] = frozenset(),
    label: str = "",
    max_ticks: int = 200_000,
) -> CostDistribution:
    """Run ``trials`` randomized executions.

    Each unprotected process independently crashes (goes silent) at a
    uniform random tick in ``[0, crash_window)`` with probability
    ``failure_probability`` — capped at ``t`` total failures so every
    run stays within the model.
    """
    words: list[int] = []
    fallbacks = 0
    disagreements = 0
    rng = random.Random(seed)
    for trial in range(trials):
        simulation = Simulation(
            config, seed=rng.randrange(2**31), max_ticks=max_ticks
        )
        crashers: list[tuple[int, ProcessId]] = []
        for pid in config.processes:
            if pid in protected:
                continue
            if len(crashers) < config.t and rng.random() < failure_probability:
                crashers.append((rng.randrange(crash_window), pid))
        for pid in config.processes:
            simulation.add_process(pid, protocol_factory(pid))
        for tick, pid in crashers:
            simulation.schedule_corruption(tick, pid, SilentBehavior())
        result: RunResult = simulation.run()
        words.append(result.correct_words)
        if result.fallback_was_used():
            fallbacks += 1
        try:
            result.unanimous_decision()
        except Exception:
            disagreements += 1
    words_sorted = sorted(words)
    p95_index = min(len(words_sorted) - 1, int(0.95 * len(words_sorted)))
    return CostDistribution(
        label=label or f"p={failure_probability}",
        trials=trials,
        mean=statistics.fmean(words),
        median=statistics.median(words),
        p95=float(words_sorted[p95_index]),
        maximum=max(words),
        fallback_rate=fallbacks / trials,
        disagreements=disagreements,
    )


def expected_cost_curve(
    config: SystemConfig,
    protocol_factory: Callable[[ProcessId], object],
    *,
    probabilities: Sequence[float],
    trials: int,
    seed: int = 0,
    protected: frozenset[ProcessId] = frozenset(),
) -> list[CostDistribution]:
    """One :class:`CostDistribution` per failure probability."""
    return [
        run_probabilistic_trials(
            config,
            protocol_factory,
            failure_probability=p,
            trials=trials,
            seed=seed + int(p * 1000),
            protected=protected,
            label=f"p={p:g}",
        )
        for p in probabilities
    ]
