"""Run export: serialize a RunResult to JSON for offline analysis.

Word records, trace events, decisions, and run metadata serialize
losslessly; payload objects are exported by type name and repr (the
exact objects carry live crypto material and are not meant to leave the
process).  :func:`load_run` reads an export back into lightweight
dataclasses so notebooks and external tools can consume runs without
importing the whole library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.metrics.words import WordLedger, WordRecord
from repro.runtime.result import RunResult
from repro.runtime.trace import Trace, TraceEvent

FORMAT_VERSION = 2
"""Version 2 adds per-record ``phase``, an optional ``meta`` block
(protocol/seed/num_phases, supplied by the caller), and an optional
``obs`` observer snapshot.  :func:`load_run` still reads version 1."""


def run_to_dict(result: RunResult, *, meta: dict | None = None) -> dict:
    """Serialize ``result`` to a JSON-compatible dict.

    ``meta`` is caller-supplied run context (protocol name, seed,
    ``num_phases``, …) that the result object itself cannot know; the
    ``repro obs summary`` silent-phase computation uses its
    ``num_phases`` as the planned-phase count.  When the result carries
    an observer, its snapshot is exported under ``obs``.
    """
    observer = getattr(result, "observer", None)
    return {
        "format_version": FORMAT_VERSION,
        "config": {"n": result.config.n, "t": result.config.t},
        "meta": dict(meta) if meta else {},
        "obs": observer.snapshot() if observer is not None else None,
        "f": result.f,
        "corrupted": sorted(result.corrupted),
        "ticks": result.ticks,
        "decisions": {
            str(pid): repr(value) for pid, value in result.decisions.items()
        },
        "halted_at": {str(pid): tick for pid, tick in result.halted_at.items()},
        "summary": {
            "correct_words": result.correct_words,
            "correct_messages": result.ledger.correct_messages,
            "signatures": result.ledger.signature_count(),
            "fallback_used": result.fallback_was_used(),
            "words_by_scope": result.ledger.words_by_scope(),
            "words_by_payload_type": result.ledger.words_by_payload_type(),
        },
        "records": [
            {
                "tick": r.tick,
                "sender": r.sender,
                "receiver": r.receiver,
                "words": r.words,
                "signatures": r.signatures,
                "scope": r.scope,
                "payload_type": r.payload_type,
                "sender_correct": r.sender_correct,
                "phase": r.phase,
            }
            for r in result.ledger.records
        ],
        "events": [
            {
                "tick": e.tick,
                "pid": e.pid,
                "scope": e.scope,
                "name": e.name,
                "data": {k: repr(v) for k, v in e.data},
            }
            for e in result.trace.events
        ],
    }


def save_run(
    result: RunResult, path: str | Path, *, meta: dict | None = None
) -> Path:
    """Write the JSON export; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(run_to_dict(result, meta=meta), indent=1))
    return path


@dataclass(frozen=True)
class LoadedRun:
    """A deserialized run: enough structure for offline analysis."""

    n: int
    t: int
    f: int
    corrupted: frozenset[int]
    ticks: int
    decisions: dict[int, str]
    summary: dict[str, Any]
    ledger: WordLedger
    trace: Trace
    meta: dict[str, Any]
    obs: dict[str, Any] | None

    @property
    def correct_words(self) -> int:
        return self.ledger.correct_words


def load_run(path: str | Path) -> LoadedRun:
    """Read an export produced by :func:`save_run`."""
    raw = json.loads(Path(path).read_text())
    if raw.get("format_version") not in (1, FORMAT_VERSION):
        raise ValueError(
            f"unsupported export format {raw.get('format_version')!r}"
        )
    ledger = WordLedger(
        records=[
            WordRecord(
                tick=r["tick"],
                sender=r["sender"],
                receiver=r["receiver"],
                words=r["words"],
                signatures=r["signatures"],
                scope=r["scope"],
                payload_type=r["payload_type"],
                sender_correct=r["sender_correct"],
                phase=r.get("phase"),
            )
            for r in raw["records"]
        ]
    )
    trace = Trace(
        events=[
            TraceEvent(
                tick=e["tick"],
                pid=e["pid"],
                scope=e["scope"],
                name=e["name"],
                data=tuple(sorted(e["data"].items())),
            )
            for e in raw["events"]
        ]
    )
    return LoadedRun(
        n=raw["config"]["n"],
        t=raw["config"]["t"],
        f=raw["f"],
        corrupted=frozenset(raw["corrupted"]),
        ticks=raw["ticks"],
        decisions={int(pid): v for pid, v in raw["decisions"].items()},
        summary=raw["summary"],
        ledger=ledger,
        trace=trace,
        meta=raw.get("meta", {}),
        obs=raw.get("obs"),
    )
