"""Decision-latency analysis: when and how each process decided.

Complements the word accounting: the paper optimizes words, and the
latency breakdown shows what that costs in time — which round each
correct process decided in, and through which mechanism (in-phase
finalize, help answer, or the fallback).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ProcessId
from repro.runtime.result import RunResult

DECISION_MECHANISMS = {
    "wba_decided_in_phase": "in-phase",
    "wba_decided_by_help": "help",
    "wba_decided_by_fallback": "fallback",
    "sba_decided_fast": "fast-path",
}


@dataclass(frozen=True)
class DecisionLatency:
    """One correct process's decision timing."""

    pid: ProcessId
    decided_at: int | None
    halted_at: int | None
    mechanism: str


def decision_latencies(result: RunResult) -> list[DecisionLatency]:
    """Extract per-process decision timing from the trace."""
    first_decision: dict[ProcessId, tuple[int, str]] = {}
    for event in result.trace.events:
        if event.pid in result.corrupted:
            continue
        mechanism = DECISION_MECHANISMS.get(event.name)
        if mechanism is None:
            continue
        if event.pid not in first_decision:
            first_decision[event.pid] = (event.tick, mechanism)
    latencies = []
    for pid in result.correct_pids:
        tick, mechanism = first_decision.get(pid, (None, "unknown"))
        latencies.append(
            DecisionLatency(
                pid=pid,
                decided_at=tick,
                halted_at=result.halted_at.get(pid),
                mechanism=mechanism,
            )
        )
    return latencies


def latency_summary(result: RunResult) -> dict:
    """Aggregate view: spread of decision ticks and mechanism counts."""
    latencies = decision_latencies(result)
    decided = [l.decided_at for l in latencies if l.decided_at is not None]
    mechanisms: dict[str, int] = {}
    for latency in latencies:
        mechanisms[latency.mechanism] = mechanisms.get(latency.mechanism, 0) + 1
    return {
        "first_decision": min(decided) if decided else None,
        "last_decision": max(decided) if decided else None,
        "spread": (max(decided) - min(decided)) if decided else None,
        "mechanisms": mechanisms,
        "run_ticks": result.ticks,
    }
