"""Closed-form word counts for failure-free runs.

The deterministic simulator makes failure-free costs *exact*, not just
asymptotic — each protocol's bill is a precise polynomial in ``n``
(self-delivery is free, so per-round broadcast/convergecast terms count
``n - 1`` messages).  ``tests/test_closed_forms.py`` asserts equality
between these formulas and measured runs; a mismatch means a protocol
round gained or lost a message, which asymptotic slope checks would
miss entirely.

Derivations (failure-free, all processes correct):

* **weak BA** — one non-silent phase: propose + votes + commit cert +
  decide shares + finalize, each `n-1` words → ``5(n-1)``.
* **BB** — the sender round adds `n-1`; vetting phases are silent
  (everyone holds the value) → ``6(n-1)``.
* **Algorithm 5** — inputs + propose cert + decide shares + decide
  cert → ``4(n-1)``.
* **Dolev–Strong** — the sender's 1-word chain to `n-1` processes,
  then each of the `n-1` receivers relays its extraction (a 2-word
  chain) to the other `n-1` processes → ``(n-1) + 2(n-1)^2``.
* **Phase King** — `t+1` phases of an all-to-all preference exchange
  (`n(n-1)` words) plus a king broadcast (`n-1`).
"""

from __future__ import annotations

from repro.config import SystemConfig


def weak_ba_failure_free_words(config: SystemConfig) -> int:
    """``5(n-1)``: one non-silent phase, five leader/all exchanges."""
    return 5 * (config.n - 1)


def bb_failure_free_words(config: SystemConfig) -> int:
    """``6(n-1)``: dissemination round + the weak BA's single phase."""
    return 6 * (config.n - 1)


def strong_ba_failure_free_words(config: SystemConfig) -> int:
    """``4(n-1)``: Lemma 8's four leader rounds."""
    return 4 * (config.n - 1)


def dolev_strong_failure_free_words(config: SystemConfig) -> int:
    """``(n-1) + 2(n-1)^2``.

    Round 1: the sender's length-1 chain to the other ``n-1``
    processes.  Round 2: each of the ``n-1`` receivers extracts the
    value and relays a length-2 chain (2 words) to everyone but itself;
    the relays addressed to the sender are counted too.  Later rounds
    are silent (everyone has extracted the value, and chains carrying
    it again are duplicates).
    """
    n = config.n
    return (n - 1) + 2 * (n - 1) * (n - 1)


def phase_king_failure_free_words(config: SystemConfig) -> int:
    """``(t+1) * (n(n-1) + (n-1))``: per phase, everyone broadcasts a
    preference and the king broadcasts a tie-break."""
    n, t = config.n, config.t
    return (t + 1) * (n * (n - 1) + (n - 1))


def adaptive_strong_ba_unanimous_words(config: SystemConfig) -> int:
    """``3(n-1)`` certificate phase (request + shares + cert broadcast)
    + ``5(n-1)`` weak BA = ``8(n-1)``."""
    return 8 * (config.n - 1)


CLOSED_FORMS = {
    "weak_ba": weak_ba_failure_free_words,
    "bb": bb_failure_free_words,
    "strong_ba": strong_ba_failure_free_words,
    "dolev_strong": dolev_strong_failure_free_words,
    "phase_king": phase_king_failure_free_words,
    "adaptive_strong_ba": adaptive_strong_ba_unanimous_words,
}
