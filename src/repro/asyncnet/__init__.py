"""asyncio transport: run the *same* protocol generators in real time.

The protocols in :mod:`repro.core` and :mod:`repro.fallback` are written
against the generator-context interface (send / broadcast / yield-per-
round / message pool).  This package drives those unmodified generators
over asyncio: every process is a task, a round is a wall-clock interval
(``tick_duration`` seconds = the synchrony bound ``delta``), and
messages travel through in-memory queues with optional artificial
latency (must stay below ``delta``, per the synchronous model).

This demonstrates transport-independence: the simulator of
:mod:`repro.runtime` and this runner execute identical protocol code.
"""

from repro.asyncnet.runner import AsyncNetwork, AsyncRunResult, run_async
from repro.asyncnet.tcp import run_over_tcp

__all__ = ["AsyncNetwork", "AsyncRunResult", "run_async", "run_over_tcp"]
