"""TCP transport: the protocols over real localhost sockets.

Each process runs an asyncio TCP server on ``127.0.0.1``; peers hold
one outgoing connection per neighbor and exchange length-prefixed
pickled envelopes.  Round pacing reuses the absolute-clock driver of
:mod:`repro.asyncnet.runner`: the synchrony bound ``tick_duration``
must dominate localhost RTT + serialization, which it does by orders of
magnitude at the defaults.

Transport robustness
--------------------

* **Backpressure** — every peer has a dedicated writer coroutine that
  pulls frames off a bounded queue and ``await``s ``writer.drain()``
  after each write, so a slow receiver throttles the sender instead of
  growing the write buffer without bound.
* **Reconnect** — if a connection drops mid-run (peer restart, injected
  reset), the writer coroutine re-dials with capped exponential backoff
  and re-sends the frame that failed; a peer that stays unreachable
  past the retry budget is treated as a crashed machine (sends to it
  evaporate), which is exactly how the protocols model dead hosts.
* **Lifecycle** — :func:`run_over_tcp` bounds the whole run with a
  timeout and tears everything down in a ``finally``: protocol tasks
  are cancelled and reaped, peer writers and accepted connections are
  closed *and awaited* (``wait_closed``), so repeated runs leak no
  sockets (the test suite turns ``ResourceWarning`` into an error).
* **Fault injection** — an optional seeded
  :class:`~repro.faults.plan.FaultPlan` drops / duplicates / delays
  messages at the sender, aborts chosen connections mid-run, and
  reorders per-round inboxes; decisions depend only on
  ``(seed, edge, tick, seq)``, so same-seed runs suffer identical
  faults despite real-socket timing.

Pickle is safe here because every endpoint is this same trusted test
process; a production deployment would swap in a real codec — the
protocols never see the difference, which is the point of the
demonstration.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from typing import Any, Callable

from repro.asyncnet.runner import AsyncContext, AsyncNetwork, AsyncRunResult
from repro.config import ProcessId, SystemConfig
from repro.errors import SchedulerError, TerminationViolation
from repro.faults import FaultPlan
from repro.obs.observer import Observer
from repro.runtime.envelope import Envelope

_HEADER = struct.Struct(">I")

RECONNECT_BASE = 0.01
"""First reconnect delay in seconds; doubles per attempt."""
RECONNECT_CAP = 0.25
"""Ceiling of the exponential backoff."""
RECONNECT_ATTEMPTS = 8
"""Dial attempts per frame before the peer is declared dead."""
SEND_QUEUE_LIMIT = 4096
"""Frames a peer may have queued; beyond it the sender fails loudly
(``asyncio.QueueFull``) instead of stalling or ballooning silently."""


def _encode_frame(obj: object) -> bytes:
    body = pickle.dumps(obj)
    return _HEADER.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader) -> object:
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    body = await reader.readexactly(length)
    return pickle.loads(body)


class _Peer:
    """One outgoing connection: bounded queue, draining writer task,
    reconnect with capped exponential backoff."""

    def __init__(
        self,
        host: str,
        port: int,
        on_reconnect: Callable[[], None] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.queue: asyncio.Queue[bytes] = asyncio.Queue(maxsize=SEND_QUEUE_LIMIT)
        self.writer: asyncio.StreamWriter | None = None
        self.dead = False
        """Set when the retry budget is exhausted: the host is gone, so
        further sends evaporate exactly like sends to a crashed machine."""
        self.reconnects = 0
        """Successful re-dials after a mid-run connection loss."""
        self._on_reconnect = on_reconnect
        self._pump_task: asyncio.Task | None = None

    async def connect(self) -> None:
        """Dial the peer (with backoff) and start the writer coroutine."""
        await self._dial()
        self._pump_task = asyncio.create_task(self._pump())

    def send(self, obj: object) -> None:
        """Queue one message for transmission (non-blocking).

        Raises :class:`asyncio.QueueFull` if the peer is so far behind
        that :data:`SEND_QUEUE_LIMIT` frames are already pending.
        """
        if self.dead:
            return
        self.queue.put_nowait(_encode_frame(obj))

    def inject_reset(self) -> None:
        """Fault hook: abort the underlying transport mid-run, as if the
        connection were reset by the network."""
        if self.writer is not None:
            self.writer.transport.abort()

    async def close(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
            self._pump_task = None
        await self._discard_writer()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _dial(self) -> None:
        """Open the connection, retrying with capped exponential backoff."""
        delay = RECONNECT_BASE
        for attempt in range(RECONNECT_ATTEMPTS):
            try:
                _, self.writer = await asyncio.open_connection(self.host, self.port)
                return
            except OSError:
                if attempt == RECONNECT_ATTEMPTS - 1:
                    break
                await asyncio.sleep(delay)
                delay = min(delay * 2, RECONNECT_CAP)
        self.dead = True
        raise ConnectionError(f"peer {self.host}:{self.port} unreachable")

    async def _discard_writer(self) -> None:
        writer, self.writer = self.writer, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pump(self) -> None:
        """Writer coroutine: drain-backed sends, reconnect on failure.

        Each frame is written then ``drain``-ed, so the peer's receive
        rate backpressures this sender.  A send that fails because the
        connection dropped triggers a re-dial and the *same frame* is
        re-sent — a reset must not lose correct-process messages (that
        would be a drop fault, which only a :class:`FaultPlan` may
        introduce deliberately).
        """
        while True:
            frame = await self.queue.get()
            while not self.dead:
                try:
                    if self.writer is None:
                        await self._dial()
                        self.reconnects += 1
                        if self._on_reconnect is not None:
                            self._on_reconnect()
                    self.writer.write(frame)
                    await self.writer.drain()
                    break
                except ConnectionError:
                    await self._discard_writer()
                except OSError:
                    await self._discard_writer()
            if self.dead:
                return


class TcpProcessNode:
    """One process: a TCP server plus outgoing connections to peers."""

    def __init__(
        self, network: AsyncNetwork, pid: ProcessId, host: str = "127.0.0.1"
    ) -> None:
        self.network = network
        self.pid = pid
        self.host = host
        self.port: int | None = None
        self.server: asyncio.AbstractServer | None = None
        self.peers: dict[ProcessId, _Peer] = {}
        self.queue = network.queue_for(pid)
        self._handlers: set[asyncio.Task] = set()

    async def start_server(self) -> int:
        self.server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                envelope = await _read_frame(reader)
                if isinstance(envelope, Envelope) and envelope.receiver == self.pid:
                    self.queue.put_nowait(envelope)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed (EOF) or reset: either way this link is done
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def connect_peers(self, ports: dict[ProcessId, int]) -> None:
        for peer_pid, port in ports.items():
            if peer_pid == self.pid:
                continue
            peer = _Peer(
                self.host,
                port,
                on_reconnect=self._reconnect_recorder(peer_pid),
            )
            await peer.connect()
            self.peers[peer_pid] = peer

    def _reconnect_recorder(self, peer_pid: ProcessId) -> Callable[[], None]:
        def record() -> None:
            self.network.trace.emit(
                tick=-1,  # transport events sit outside the round clock
                pid=self.pid,
                scope="transport",
                name="reconnected",
                peer=peer_pid,
            )
            obs = self.network.observer
            if obs is not None:
                obs.on_transport("reconnected")
                obs.event("reconnected", pid=self.pid, peer=peer_pid)

        return record

    def transmit(self, envelope: Envelope) -> None:
        injector = self.network.injector
        if injector is None:
            self._dispatch(envelope)
            return
        # Connection faults first: an injected reset fires on the next
        # send over its edge, so the frame below exercises reconnect.
        obs = self.network.observer
        peer = self.peers.get(envelope.receiver)
        if peer is not None and injector.take_reset(
            self.pid, envelope.receiver, envelope.sent_at
        ):
            peer.inject_reset()
            if obs is not None:
                obs.on_fault("reset")
        loop = asyncio.get_running_loop()
        copies = injector.copies(self.pid, envelope.receiver, envelope.sent_at)
        if obs is not None:
            if not copies:
                obs.on_fault("dropped")
            else:
                if len(copies) > 1:
                    obs.on_fault("duplicated", len(copies) - 1)
                if any(fraction > 0 for fraction in copies):
                    obs.on_fault("delayed")
        for delay_fraction in copies:
            delay = delay_fraction * self.network.tick_duration
            if delay > 0:
                loop.call_later(delay, self._dispatch, envelope)
            else:
                self._dispatch(envelope)

    def _dispatch(self, envelope: Envelope) -> None:
        if envelope.receiver == self.pid:
            self.queue.put_nowait(envelope)  # loopback without a socket
            return
        peer = self.peers.get(envelope.receiver)
        if peer is not None:
            peer.send(envelope)
        # No connection = a crashed machine: the send evaporates, which
        # is exactly how the network treats a dead host.

    async def close_outgoing(self) -> None:
        """Phase 1 of shutdown: close this node's outgoing connections
        (writer tasks cancelled, writers awaited closed).  The EOFs this
        produces let the *peers'* accepted-connection handlers finish on
        their own."""
        for peer in self.peers.values():
            await peer.close()

    async def close_incoming(self) -> None:
        """Phase 2 of shutdown: stop listening and reap accepted
        connections.  Once every node ran :meth:`close_outgoing`, our
        handlers have all seen EOF — await them; cancellation is only a
        last resort for connections that never died (it trips a noisy
        ``asyncio.streams`` callback on 3.11, so avoid it on the normal
        path)."""
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self._handlers:
            handlers = list(self._handlers)
            _, still_open = await asyncio.wait(handlers, timeout=1.0)
            for handler in still_open:
                handler.cancel()
            if still_open:
                await asyncio.gather(*still_open, return_exceptions=True)

    async def close(self) -> None:
        """Release every socket this node owns, awaiting each close.

        For whole-cluster shutdown, call :meth:`close_outgoing` on every
        node *before* any :meth:`close_incoming` — otherwise the first
        node must cancel handlers whose remote writers are still open.
        """
        await self.close_outgoing()
        await self.close_incoming()


class _TcpContext(AsyncContext):
    """AsyncContext whose sends go through a TCP node."""

    def __init__(self, network: AsyncNetwork, node: TcpProcessNode) -> None:
        super().__init__(network, node.pid)
        self._node = node

    def send(self, to: ProcessId, payload: object) -> None:
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        record = self._network.ledger.record(
            tick=self.now,
            sender=self.pid,
            receiver=to,
            payload=payload,
            scope=self.scope_path,
            sender_correct=True,
        )
        obs = self._network.observer
        if obs is not None and record is not None:
            obs.on_send(record)
        self._node.transmit(
            Envelope(
                sender=self.pid,
                receiver=to,
                payload=payload,
                sent_at=self.now,
                delivered_at=self.now + 1,
            )
        )


async def _drive_tcp_process(
    network: AsyncNetwork,
    node: TcpProcessNode,
    factory: Callable,
    start_time: float,
) -> tuple[ProcessId, Any]:
    loop = asyncio.get_running_loop()
    ctx = _TcpContext(network, node)
    generator = factory(ctx)
    tick_index = 0
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return node.pid, stop.value
        tick_index += 1
        delay = start_time + tick_index * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        envelopes: list[Envelope] = []
        while not node.queue.empty():
            envelopes.append(node.queue.get_nowait())
        ctx.advance(network.order_inbox(node.pid, tick_index, envelopes))


async def run_over_tcp(
    config: SystemConfig,
    factories: dict[ProcessId, Callable],
    *,
    seed: int = 0,
    tick_duration: float = 0.05,
    crashed: frozenset[ProcessId] = frozenset(),
    fault_plan: FaultPlan | None = None,
    timeout: float | None = 120.0,
    observer: "Observer | None" = None,
) -> AsyncRunResult:
    """Run one protocol instance over localhost TCP sockets.

    ``crashed`` processes get no node at all — their peers simply never
    hear from them, exactly like a crashed machine.  ``fault_plan``
    injects deterministic message and connection faults (see
    :mod:`repro.faults`); delays must stay below the synchrony bound.
    ``timeout`` bounds the whole run in seconds (``None`` disables it);
    on expiry every task is cancelled, every socket is closed, and
    :class:`~repro.errors.TerminationViolation` is raised.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = AsyncNetwork(
        config, seed=seed, tick_duration=tick_duration, fault_plan=fault_plan,
        observer=observer,
    )
    network.corrupted = set(crashed)
    live = [pid for pid in config.processes if pid not in crashed]
    missing = [pid for pid in live if pid not in factories]
    if missing:
        raise SchedulerError(f"processes {missing} have no protocol")

    nodes: dict[ProcessId, TcpProcessNode] = {}
    tasks: list[asyncio.Task] = []
    try:
        nodes = {pid: TcpProcessNode(network, pid) for pid in live}
        ports = {pid: await node.start_server() for pid, node in nodes.items()}
        for node in nodes.values():
            await node.connect_peers(ports)

        start_time = loop.time() + tick_duration
        tasks = [
            asyncio.create_task(
                _drive_tcp_process(network, nodes[pid], factories[pid], start_time)
            )
            for pid in live
        ]
        gathered = asyncio.gather(*tasks)
        try:
            if timeout is not None:
                results = await asyncio.wait_for(gathered, timeout)
            else:
                results = await gathered
        except asyncio.TimeoutError:
            raise TerminationViolation(
                f"TCP run exceeded timeout={timeout}s before every live "
                f"process decided"
            ) from None
    finally:
        # Guaranteed teardown on every path: success, protocol error,
        # timeout, or cancellation of this coroutine itself.
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for node in nodes.values():
            await node.close_outgoing()
        for node in nodes.values():
            await node.close_incoming()
    return AsyncRunResult(
        config=config,
        decisions=dict(results),
        corrupted=frozenset(crashed),
        ledger=network.ledger,
        trace=network.trace,
        elapsed=loop.time() - started,
        observer=network.observer,
    )
