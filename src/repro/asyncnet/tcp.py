"""TCP transport: the protocols over real localhost sockets.

Each process runs an asyncio TCP server on ``127.0.0.1``; peers hold
one outgoing connection per neighbor and exchange length-prefixed
pickled envelopes.  Round pacing reuses the absolute-clock driver of
:mod:`repro.asyncnet.runner`: the synchrony bound ``tick_duration``
must dominate localhost RTT + serialization, which it does by orders of
magnitude at the defaults.

Pickle is safe here because every endpoint is this same trusted test
process; a production deployment would swap in a real codec — the
protocols never see the difference, which is the point of the
demonstration.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Callable

from repro.asyncnet.runner import AsyncContext, AsyncNetwork, AsyncRunResult
from repro.config import ProcessId, SystemConfig
from repro.errors import SchedulerError
from repro.runtime.envelope import Envelope

_HEADER = struct.Struct(">I")


def _encode_frame(obj: object) -> bytes:
    body = pickle.dumps(obj)
    return _HEADER.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader) -> object:
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    body = await reader.readexactly(length)
    return pickle.loads(body)


@dataclass
class _Peer:
    writer: asyncio.StreamWriter

    def send(self, obj: object) -> None:
        self.writer.write(_encode_frame(obj))


class TcpProcessNode:
    """One process: a TCP server plus outgoing connections to peers."""

    def __init__(
        self, network: AsyncNetwork, pid: ProcessId, host: str = "127.0.0.1"
    ) -> None:
        self.network = network
        self.pid = pid
        self.host = host
        self.port: int | None = None
        self.server: asyncio.AbstractServer | None = None
        self.peers: dict[ProcessId, _Peer] = {}
        self.queue = network.queue_for(pid)

    async def start_server(self) -> int:
        self.server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                envelope = await _read_frame(reader)
                if isinstance(envelope, Envelope) and envelope.receiver == self.pid:
                    self.queue.put_nowait(envelope)
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionResetError,
        ):
            pass
        finally:
            writer.close()

    async def connect_peers(self, ports: dict[ProcessId, int]) -> None:
        for peer_pid, port in ports.items():
            if peer_pid == self.pid:
                continue
            _, writer = await asyncio.open_connection(self.host, port)
            self.peers[peer_pid] = _Peer(writer=writer)

    def transmit(self, envelope: Envelope) -> None:
        if envelope.receiver == self.pid:
            self.queue.put_nowait(envelope)  # loopback without a socket
            return
        peer = self.peers.get(envelope.receiver)
        if peer is not None:
            peer.send(envelope)
        # No connection = a crashed machine: the send evaporates, which
        # is exactly how the network treats a dead host.

    async def close(self) -> None:
        for peer in self.peers.values():
            peer.writer.close()
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()


class _TcpContext(AsyncContext):
    """AsyncContext whose sends go through a TCP node."""

    def __init__(self, network: AsyncNetwork, node: TcpProcessNode) -> None:
        super().__init__(network, node.pid)
        self._node = node

    def send(self, to: ProcessId, payload: object) -> None:
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        self._network.ledger.record(
            tick=self.now,
            sender=self.pid,
            receiver=to,
            payload=payload,
            scope=self.scope_path,
            sender_correct=True,
        )
        self._node.transmit(
            Envelope(
                sender=self.pid,
                receiver=to,
                payload=payload,
                sent_at=self.now,
                delivered_at=self.now + 1,
            )
        )


async def _drive_tcp_process(
    network: AsyncNetwork,
    node: TcpProcessNode,
    factory: Callable,
    start_time: float,
) -> tuple[ProcessId, Any]:
    loop = asyncio.get_running_loop()
    ctx = _TcpContext(network, node)
    generator = factory(ctx)
    tick_index = 0
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return node.pid, stop.value
        tick_index += 1
        delay = start_time + tick_index * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        envelopes: list[Envelope] = []
        while not node.queue.empty():
            envelopes.append(node.queue.get_nowait())
        envelopes.sort(key=lambda e: e.sender)
        ctx.advance(envelopes)


async def run_over_tcp(
    config: SystemConfig,
    factories: dict[ProcessId, Callable],
    *,
    seed: int = 0,
    tick_duration: float = 0.05,
    crashed: frozenset[ProcessId] = frozenset(),
) -> AsyncRunResult:
    """Run one protocol instance over localhost TCP sockets.

    ``crashed`` processes get no node at all — their peers simply never
    hear from them, exactly like a crashed machine.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = AsyncNetwork(config, seed=seed, tick_duration=tick_duration)
    network.corrupted = set(crashed)
    live = [pid for pid in config.processes if pid not in crashed]
    missing = [pid for pid in live if pid not in factories]
    if missing:
        raise SchedulerError(f"processes {missing} have no protocol")

    nodes = {pid: TcpProcessNode(network, pid) for pid in live}
    ports = {pid: await node.start_server() for pid, node in nodes.items()}
    for node in nodes.values():
        await node.connect_peers(ports)

    start_time = loop.time() + tick_duration
    tasks = [
        asyncio.create_task(
            _drive_tcp_process(network, nodes[pid], factories[pid], start_time)
        )
        for pid in live
    ]
    try:
        results = await asyncio.gather(*tasks)
    finally:
        for node in nodes.values():
            await node.close()
    return AsyncRunResult(
        config=config,
        decisions=dict(results),
        corrupted=frozenset(crashed),
        ledger=network.ledger,
        trace=network.trace,
        elapsed=loop.time() - started,
    )
