"""TCP transport: the protocols over real localhost sockets.

Each process runs an asyncio TCP server on ``127.0.0.1``; peers hold
one outgoing connection per neighbor and exchange length-prefixed
pickled envelopes.  Round pacing reuses the absolute-clock driver of
:mod:`repro.asyncnet.runner`: the synchrony bound ``tick_duration``
must dominate localhost RTT + serialization, which it does by orders of
magnitude at the defaults.

Transport robustness
--------------------

* **Backpressure** — every peer has a dedicated writer coroutine that
  pulls frames off a bounded queue and ``await``s ``writer.drain()``
  after each write, so a slow receiver throttles the sender instead of
  growing the write buffer without bound.
* **Reconnect** — if a connection drops mid-run (peer restart, injected
  reset), the writer coroutine re-dials with capped exponential backoff
  (plus seeded per-peer jitter, so a healed partition does not trigger a
  lockstep thundering herd of re-dials)
  and re-sends the frame that failed; a peer that stays unreachable
  past the retry budget is treated as a crashed machine (sends to it
  evaporate), which is exactly how the protocols model dead hosts.
* **Lifecycle** — :func:`run_over_tcp` bounds the whole run with a
  timeout and tears everything down in a ``finally``: protocol tasks
  are cancelled and reaped, peer writers and accepted connections are
  closed *and awaited* (``wait_closed``), so repeated runs leak no
  sockets (the test suite turns ``ResourceWarning`` into an error).
* **Fault injection** — an optional seeded
  :class:`~repro.faults.plan.FaultPlan` drops / duplicates / delays
  messages at the sender, aborts chosen connections mid-run, and
  reorders per-round inboxes; decisions depend only on
  ``(seed, edge, tick, seq)``, so same-seed runs suffer identical
  faults despite real-socket timing.
* **Session resumption** — every outgoing link carries a session:
  the sender opens with ``("hello", pid, epoch)``, the receiver answers
  ``("ack", floor | None)``, and data flows as
  ``("msg", epoch, seq, envelope)`` frames.  The hello costs the sender
  *zero round trips*: data frames follow it immediately (the stream
  orders them behind it), the ack is consumed asynchronously, and only
  then is the unacked tail retransmitted.  The receiver deduplicates
  through a per-``(sender, epoch)`` receive window (contiguous ``floor``
  plus an out-of-order set), so the deferred retransmission can race
  fresh frames without double-delivering — and nothing ever double-bills
  (words are billed exactly once, at the protocol-level send).  A
  rejoining process re-announces itself with a *bumped epoch*: receivers
  reset their sequence state for the new incarnation, and an ``ack
  None`` (the receiver lost its session state, i.e. it restarted) makes
  the sender drop its retransmit buffer — frames in flight toward a
  crashed machine are lost, exactly as the tick scheduler models a down
  window.  Reconnects are *eager* (kicked off the moment the ack loop
  sees the transport die) so the dial usually happens off the send path.


Pickle is safe here because every endpoint is this same trusted test
process; a production deployment would swap in a real codec — the
protocols never see the difference, which is the point of the
demonstration.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.asyncnet.runner import (
    AsyncContext,
    AsyncNetwork,
    AsyncRunResult,
    _crash_and_recover,
    _drain_due,
)
from repro.config import ProcessId, SystemConfig, derive_rng
from repro.errors import SchedulerError, TerminationViolation
from repro.faults import FaultPlan
from repro.obs.observer import Observer
from repro.runtime.envelope import Envelope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.manager import RecoveryManager
    from repro.runtime.synchrony import SynchronyModel

_HEADER = struct.Struct(">I")

RECONNECT_BASE = 0.01
"""First reconnect delay in seconds; doubles per attempt."""
RECONNECT_CAP = 0.25
"""Ceiling of the exponential backoff."""
RECONNECT_ATTEMPTS = 8
"""Dial attempts per frame before the peer is declared dead."""
SEND_QUEUE_LIMIT = 4096
"""Frames a peer may have queued; beyond it the sender fails loudly
(``asyncio.QueueFull``) instead of stalling or ballooning silently."""
UNACKED_LIMIT = 1024
"""Written-but-unacked frames a sender retains for retransmission; the
oldest are evicted past this (a receiver that far behind will reset the
session on reconnect anyway)."""
ACK_EVERY = 16
"""The receiver acks after this many delivered frames, bounding how much
retransmit buffer its senders must retain."""
_BACKOFF_TAG = 0xBAC0
"""Domain tag for the per-peer reconnect-jitter stream (see
:func:`repro.config.derive_rng`)."""
JITTER_SPREAD = (0.5, 1.5)
"""Each backoff sleep is scaled by a seeded uniform draw from this
range.  Without jitter every peer of a healed partition re-dials on the
same capped-exponential schedule — a thundering herd that the soak
fleet reliably turns into a second round of connection failures.  The
draw comes from a per-``(sender, peer)`` RNG derived from the run seed,
so same-seed runs still sleep identical schedules (trace reproducibility
is preserved); distinct peers de-synchronize."""


def _encode_frame(obj: object) -> bytes:
    body = pickle.dumps(obj)
    return _HEADER.pack(len(body)) + body


async def _read_frame(reader: asyncio.StreamReader) -> object:
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    body = await reader.readexactly(length)
    return pickle.loads(body)


class _Peer:
    """One outgoing session: bounded queue, draining writer task,
    reconnect with capped exponential backoff, and sequence-numbered
    frames with retransmit-on-resume.

    Every data frame is ``("msg", epoch, seq, envelope)``; ``seq`` is
    assigned here, *below* the word ledger and the fault injector — so a
    retransmission is invisible to word accounting (billed once, at the
    protocol send) while an injector-ordered duplicate gets a fresh seq
    and is genuinely delivered twice.
    """

    def __init__(
        self,
        host: str,
        port: int,
        sender_pid: ProcessId,
        epoch: int,
        on_reconnect: Callable[[], None] | None = None,
        peer_pid: ProcessId = -1,
        seed: int = 0,
    ) -> None:
        self.host = host
        self.port = port
        self.sender_pid = sender_pid
        self._jitter_rng = derive_rng(
            seed, _BACKOFF_TAG ^ (sender_pid << 16) ^ (peer_pid & 0xFFFF)
        )
        self.epoch = epoch
        """The sender's incarnation number; bumped on process restart and
        re-announced in the hello so receivers reset sequence state."""
        self.queue: asyncio.Queue[tuple[int, bytes]] = asyncio.Queue(
            maxsize=SEND_QUEUE_LIMIT
        )
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.seq = 0
        self.unacked: deque[tuple[int, bytes]] = deque()
        """Written-but-unacked ``(seq, frame)`` pairs, oldest first —
        the retransmission source after a reconnect."""
        self.retransmitted = 0
        """Frames re-sent after reconnects (not billed as new words)."""
        self.dropped_on_peer_restart = 0
        """Unacked frames abandoned because the receiver answered the
        hello with ``ack None`` — it restarted, the frames died with it."""
        self.dead = False
        """Set when the retry budget is exhausted: the host is gone, so
        further sends evaporate exactly like sends to a crashed machine."""
        self.reconnects = 0
        """Successful re-dials after a mid-run connection loss."""
        self._on_reconnect = on_reconnect
        self._pump_task: asyncio.Task | None = None
        self._ack_task: asyncio.Task | None = None
        self._reconnect_task: asyncio.Task | None = None
        self._retired_acks: list[asyncio.Task] = []
        """Ack loops cancelled by a re-announce (reconnect storm).  A
        cancelled-but-never-awaited task can outlive ``run_over_tcp``
        and leak its exception past the run, so :meth:`close` reaps
        these too."""
        self._conn_lock = asyncio.Lock()
        self._closing = False
        self._resync = False
        """Set by :meth:`_announce`; the first ack on the new connection
        triggers retransmission of the surviving unacked tail."""

    async def connect(self) -> None:
        """Dial the peer (with backoff), announce the session, and
        start the writer coroutine."""
        await self._dial()
        self._announce()
        self._pump_task = asyncio.create_task(self._pump())

    def send(self, obj: object) -> None:
        """Queue one message for transmission (non-blocking).

        Raises :class:`asyncio.QueueFull` if the peer is so far behind
        that :data:`SEND_QUEUE_LIMIT` frames are already pending.
        """
        if self.dead:
            return
        seq = self.seq
        self.seq += 1
        self.queue.put_nowait(
            (seq, _encode_frame(("msg", self.epoch, seq, obj)))
        )

    def inject_reset(self) -> None:
        """Fault hook: abort the underlying transport mid-run, as if the
        connection were reset by the network."""
        if self.writer is not None:
            self.writer.transport.abort()

    async def close(self) -> None:
        self._closing = True
        tasks = [self._pump_task, self._ack_task, self._reconnect_task]
        tasks.extend(self._retired_acks)
        for task in tasks:
            if task is not None:
                task.cancel()
        live = [t for t in tasks if t is not None]
        if live:
            await asyncio.gather(*live, return_exceptions=True)
        self._pump_task = None
        self._ack_task = None
        self._reconnect_task = None
        self._retired_acks = []
        await self._discard_writer()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    async def _dial(self) -> None:
        """Open the connection, retrying with capped exponential backoff
        plus seeded per-peer jitter (:data:`JITTER_SPREAD`)."""
        low, high = JITTER_SPREAD
        delay = RECONNECT_BASE
        for attempt in range(RECONNECT_ATTEMPTS):
            try:
                self.reader, self.writer = await asyncio.open_connection(
                    self.host, self.port
                )
                return
            except OSError:
                if attempt == RECONNECT_ATTEMPTS - 1:
                    break
                await asyncio.sleep(delay * self._jitter_rng.uniform(low, high))
                delay = min(delay * 2, RECONNECT_CAP)
        self.dead = True
        raise ConnectionError(f"peer {self.host}:{self.port} unreachable")

    def _announce(self) -> None:
        """Open (or resume) the session on a fresh connection: write the
        hello and keep going — the ack is consumed *asynchronously* by
        :meth:`_ack_loop`, so resumption costs the sender zero round
        trips.  Data frames may flow immediately because the hello is
        ordered ahead of them on the same stream, and the receiver's
        out-of-order dedup window makes the deferred retransmission
        (triggered when the ack eventually arrives) safe.
        """
        self.writer.write(
            _encode_frame(("hello", self.sender_pid, self.epoch))
        )
        self._resync = True
        if self._ack_task is not None:
            self._ack_task.cancel()
            # Can't await here (sync method): park it for close() to
            # reap, pruning the already-finished ones so a reset storm
            # doesn't grow the list without bound.
            self._retired_acks = [
                t for t in self._retired_acks if not t.done()
            ]
            self._retired_acks.append(self._ack_task)
        self._ack_task = asyncio.create_task(self._ack_loop(self.reader))

    async def _ack_loop(self, reader: asyncio.StreamReader) -> None:
        """Consume in-band acks from the receiver.

        ``ack floor`` (an int, cumulative) prunes the retransmit buffer;
        the first ack after an announce additionally retransmits the
        surviving tail — written-but-lost frames from before the
        reconnect (the receiver's dedup window absorbs any that did make
        it).  ``ack None`` means the receiver had no session state —
        first contact, or it restarted and its table died with it; in
        the restart case the unacked frames were headed for a down
        machine, so they are dropped rather than resurrected.

        When the connection dies this loop discards the dead writer and
        starts an eager background reconnect, so by the next send the
        link is usually live again instead of paying the dial inside a
        delivery round.
        """
        try:
            while True:
                frame = await _read_frame(reader)
                if not (
                    isinstance(frame, tuple) and frame and frame[0] == "ack"
                ):
                    continue
                ack = frame[1]
                if ack is None:
                    if self.unacked:
                        self.dropped_on_peer_restart += len(self.unacked)
                        self.unacked.clear()
                    self._resync = False
                elif isinstance(ack, int):
                    while self.unacked and self.unacked[0][0] <= ack:
                        self.unacked.popleft()
                    if self._resync:
                        self._resync = False
                        writer = self.writer
                        if writer is not None and self.unacked:
                            for _, raw in self.unacked:
                                writer.write(raw)
                                self.retransmitted += 1
                            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            if self._closing or self.dead:
                return
            await self._discard_writer()
            if self._reconnect_task is None or self._reconnect_task.done():
                self._reconnect_task = asyncio.create_task(
                    self._eager_reconnect()
                )

    async def _eager_reconnect(self) -> None:
        """Re-establish the session off the send path after a transport
        failure; on any error, leave the link down for the pump's
        full retry/backoff path to handle at the next send."""
        try:
            await self._ensure_connected()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            await self._discard_writer()

    async def _ensure_connected(self) -> None:
        """Dial + announce if the link is down, serialized against the
        pump so the two paths cannot open duplicate connections."""
        async with self._conn_lock:
            if self.writer is not None or self.dead or self._closing:
                return
            await self._dial()
            self._announce()
            self.reconnects += 1
            if self._on_reconnect is not None:
                self._on_reconnect()

    async def _discard_writer(self) -> None:
        writer, self.writer = self.writer, None
        self.reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _pump(self) -> None:
        """Writer coroutine: drain-backed sends, reconnect on failure.

        Each frame is written then ``drain``-ed, so the peer's receive
        rate backpressures this sender.  A send that fails because the
        connection dropped triggers a re-dial, a session handshake (which
        retransmits everything written-but-unacked), and then the *same
        frame* — a reset must not lose correct-process messages (that
        would be a drop fault, which only a :class:`FaultPlan` may
        introduce deliberately).
        """
        while True:
            seq, frame = await self.queue.get()
            while not self.dead:
                writer = None
                try:
                    if self.writer is None:
                        await self._ensure_connected()
                    writer = self.writer
                    if writer is None:
                        if self._closing:
                            return
                        continue
                    writer.write(frame)
                    await writer.drain()
                    self.unacked.append((seq, frame))
                    if len(self.unacked) > UNACKED_LIMIT:
                        self.unacked.popleft()
                    break
                except (ConnectionError, OSError):
                    # Only tear down the writer this attempt used: the
                    # eager-reconnect path may already have replaced it
                    # with a live session.
                    if writer is not None and self.writer is writer:
                        await self._discard_writer()
            if self.dead:
                return


class TcpProcessNode:
    """One process: a TCP server plus outgoing connections to peers."""

    def __init__(
        self, network: AsyncNetwork, pid: ProcessId, host: str = "127.0.0.1"
    ) -> None:
        self.network = network
        self.pid = pid
        self.host = host
        self.port: int | None = None
        self.server: asyncio.AbstractServer | None = None
        self.peers: dict[ProcessId, _Peer] = {}
        self.queue = network.queue_for(pid)
        self.epoch = 0
        """This process's incarnation; bumped on crash so peers can tell
        a restarted sender from a resumed connection."""
        self.sessions: dict[ProcessId, list[int]] = {}
        """Receive-side dedup state, ``sender -> [epoch, last_seq]`` —
        process memory, cleared when this process crashes."""
        self.ports: dict[ProcessId, int] = {}
        self._handlers: set[asyncio.Task] = set()

    async def start_server(self) -> int:
        self.server = await asyncio.start_server(
            self._handle_connection, self.host, 0
        )
        self.port = self.server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        obs = self.network.observer
        # [epoch, floor, above]: ``floor`` is the highest contiguously
        # delivered seq, ``above`` the out-of-order seqs beyond it —
        # a receive window, so a deferred retransmission arriving after
        # newer frames is still recognized as a duplicate-or-gap-fill.
        session: list | None = None
        since_ack = 0
        try:
            while True:
                frame = await _read_frame(reader)
                if not isinstance(frame, tuple) or not frame:
                    continue
                if frame[0] == "hello":
                    _, sender, epoch = frame
                    session = self.sessions.get(sender)
                    if session is not None and session[0] == epoch:
                        # Same incarnation resuming: tell it how far we
                        # got so it retransmits only the gap.
                        writer.write(_encode_frame(("ack", session[1])))
                    else:
                        # New incarnation (or no state — first contact,
                        # or we restarted and lost the table): fresh
                        # session, and the None tells the sender its
                        # in-flight frames are unrecoverable.
                        session = self.sessions[sender] = [epoch, -1, set()]
                        writer.write(_encode_frame(("ack", None)))
                    since_ack = 0
                elif frame[0] == "msg":
                    _, epoch, seq, envelope = frame
                    if not (
                        isinstance(envelope, Envelope)
                        and envelope.receiver == self.pid
                    ):
                        continue
                    if session is None or session[0] != epoch:
                        continue  # frame from a dead incarnation
                    if seq <= session[1] or seq in session[2]:
                        # Retransmission of a frame that already made it
                        # before the reconnect: deliver once, bill never.
                        if obs is not None:
                            obs.on_transport("deduplicated")
                        continue
                    session[2].add(seq)
                    while session[1] + 1 in session[2]:
                        session[1] += 1
                        session[2].remove(session[1])
                    self.queue.put_nowait(envelope)
                    since_ack += 1
                    if since_ack >= ACK_EVERY:
                        # No drain: acks are tiny and must not stall
                        # the delivery loop behind reverse-path flushes.
                        writer.write(_encode_frame(("ack", session[1])))
                        since_ack = 0
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer closed (EOF) or reset: either way this link is done
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def connect_peers(self, ports: dict[ProcessId, int]) -> None:
        self.ports = dict(ports)
        for peer_pid, port in ports.items():
            if peer_pid == self.pid:
                continue
            peer = _Peer(
                self.host,
                port,
                self.pid,
                self.epoch,
                on_reconnect=self._reconnect_recorder(peer_pid),
                peer_pid=peer_pid,
                seed=self.network.seed,
            )
            await peer.connect()
            self.peers[peer_pid] = peer

    async def crash(self) -> None:
        """Lose all process state: outgoing sessions (their retransmit
        buffers die), the receive-side dedup table, and the queued inbox.
        The server socket stays up — the *machine* is reachable, the
        process is what restarts — so peers keep a live link and their
        next hello meets an empty session table."""
        peers, self.peers = dict(self.peers), {}
        for peer in peers.values():
            await peer.close()
        self.sessions.clear()
        self.epoch += 1
        while not self.queue.empty():
            self.queue.get_nowait()

    async def rejoin(self) -> None:
        """Re-dial every peer, announcing the bumped epoch."""
        await self.connect_peers(self.ports)

    def _reconnect_recorder(self, peer_pid: ProcessId) -> Callable[[], None]:
        def record() -> None:
            self.network.trace.emit(
                tick=-1,  # transport events sit outside the round clock
                pid=self.pid,
                scope="transport",
                name="reconnected",
                peer=peer_pid,
            )
            obs = self.network.observer
            if obs is not None:
                obs.on_transport("reconnected")
                obs.event("reconnected", pid=self.pid, peer=peer_pid)

        return record

    def transmit(self, envelope: Envelope) -> None:
        injector = self.network.injector
        if injector is None:
            self._dispatch(envelope)
            return
        # Connection faults first: an injected reset fires on the next
        # send over its edge, so the frame below exercises reconnect.
        obs = self.network.observer
        peer = self.peers.get(envelope.receiver)
        if peer is not None and injector.take_reset(
            self.pid, envelope.receiver, envelope.sent_at
        ):
            peer.inject_reset()
            if obs is not None:
                obs.on_fault("reset")
        copies = injector.copies(self.pid, envelope.receiver, envelope.sent_at)
        if obs is not None:
            if not copies:
                obs.on_fault("dropped")
            else:
                if len(copies) > 1:
                    obs.on_fault("duplicated", len(copies) - 1)
                if any(fraction > 0 for fraction in copies):
                    obs.on_fault("delayed")
        for delay_fraction in copies:
            delay = delay_fraction * self.network.tick_duration
            # Tracked timers: the network cancels them on teardown, so a
            # delayed copy never fires into a closed transport.
            self.network.schedule_delivery(
                delay, lambda: self._dispatch(envelope)
            )

    def _dispatch(self, envelope: Envelope) -> None:
        if envelope.receiver == self.pid:
            self.queue.put_nowait(envelope)  # loopback without a socket
            return
        peer = self.peers.get(envelope.receiver)
        if peer is not None:
            peer.send(envelope)
        # No connection = a crashed machine: the send evaporates, which
        # is exactly how the network treats a dead host.

    async def close_outgoing(self) -> None:
        """Phase 1 of shutdown: close this node's outgoing connections
        (writer tasks cancelled, writers awaited closed).  The EOFs this
        produces let the *peers'* accepted-connection handlers finish on
        their own."""
        for peer in self.peers.values():
            await peer.close()

    async def close_incoming(self) -> None:
        """Phase 2 of shutdown: stop listening and reap accepted
        connections.  Once every node ran :meth:`close_outgoing`, our
        handlers have all seen EOF — await them; cancellation is only a
        last resort for connections that never died (it trips a noisy
        ``asyncio.streams`` callback on 3.11, so avoid it on the normal
        path)."""
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if self._handlers:
            handlers = list(self._handlers)
            _, still_open = await asyncio.wait(handlers, timeout=1.0)
            for handler in still_open:
                handler.cancel()
            if still_open:
                await asyncio.gather(*still_open, return_exceptions=True)

    async def close(self) -> None:
        """Release every socket this node owns, awaiting each close.

        For whole-cluster shutdown, call :meth:`close_outgoing` on every
        node *before* any :meth:`close_incoming` — otherwise the first
        node must cancel handlers whose remote writers are still open.
        """
        await self.close_outgoing()
        await self.close_incoming()


class _TcpContext(AsyncContext):
    """AsyncContext whose sends go through a TCP node."""

    def __init__(self, network: AsyncNetwork, node: TcpProcessNode) -> None:
        super().__init__(network, node.pid)
        self._node = node

    def send(self, to: ProcessId, payload: object) -> None:
        if self._replay is not None:
            if to != self.pid:  # self-delivery is free, never billed
                self._replay.note_send()  # the network already saw it
            return
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        record = self._network.ledger.record(
            tick=self.now,
            sender=self.pid,
            receiver=to,
            payload=payload,
            scope=self.scope_path,
            sender_correct=True,
        )
        obs = self._network.observer
        if obs is not None and record is not None:
            obs.on_send(record)
        if self._network.recovery is not None and record is not None:
            # Highwater marks count billed sends only (self-delivery is
            # free), keeping replay comparable to the word ledger.
            self._network.recovery.on_send(self.pid, self.now)
        self._node.transmit(
            Envelope(
                sender=self.pid,
                receiver=to,
                payload=payload,
                sent_at=self.now,
                delivered_at=(
                    self.now + 1 if to == self.pid
                    else self._network.delivery_round(self.pid, to, self.now)
                ),
            )
        )


async def _drive_tcp_process(
    network: AsyncNetwork,
    node: TcpProcessNode,
    factory: Callable,
    start_time: float,
) -> tuple[ProcessId, Any]:
    loop = asyncio.get_running_loop()
    ctx = _TcpContext(network, node)
    generator = factory(ctx)
    recovery = network.recovery
    plan = network.fault_plan
    crashes = (
        sorted(
            (c for c in plan.crashes if c.pid == node.pid),
            key=lambda c: c.at_tick,
        )
        if plan is not None
        else []
    )
    tick_index = 0
    pending: list[Envelope] = []
    while True:
        if crashes and tick_index == crashes[0].at_tick:
            crash = crashes.pop(0)
            revived = await _crash_and_recover(
                network, node.pid, factory, crash, start_time,
                make_ctx=lambda: _TcpContext(network, node),
                pending=pending,
                on_down=node.crash,
                on_up=node.rejoin,
            )
            if revived[0] is None:  # the protocol completed during replay
                return node.pid, revived[1]
            generator, ctx = revived
            tick_index = crash.restart_tick
        if recovery is not None:
            recovery.on_inbox(node.pid, tick_index, ctx.inbox)
        try:
            next(generator)
        except StopIteration as stop:
            if recovery is not None:
                recovery.flush(node.pid)
            return node.pid, stop.value
        if recovery is not None:
            recovery.flush(node.pid)
        tick_index += 1
        delay = start_time + tick_index * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        ctx.advance(
            network.order_inbox(
                node.pid, tick_index, _drain_due(node.queue, pending, tick_index)
            )
        )


async def run_over_tcp(
    config: SystemConfig,
    factories: dict[ProcessId, Callable],
    *,
    seed: int = 0,
    tick_duration: float = 0.05,
    crashed: frozenset[ProcessId] = frozenset(),
    fault_plan: FaultPlan | None = None,
    timeout: float | None = 120.0,
    observer: "Observer | None" = None,
    recovery: "RecoveryManager | None" = None,
    synchrony: "SynchronyModel | None" = None,
) -> AsyncRunResult:
    """Run one protocol instance over localhost TCP sockets.

    ``crashed`` processes get no node at all — their peers simply never
    hear from them, exactly like a crashed machine.  ``fault_plan``
    injects deterministic message and connection faults (see
    :mod:`repro.faults`); delays must stay below the synchrony bound.
    ``recovery`` gives every process a write-ahead log and is required
    when the plan schedules crash/restart faults: the crashed node loses
    its process state (outgoing sessions, dedup table, queued inbox),
    stays silent for the down window, then replays its WAL and re-dials
    its peers under a bumped epoch.  ``timeout`` bounds the whole run in
    seconds (``None`` disables it); on expiry every task is cancelled,
    every socket is closed, and
    :class:`~repro.errors.TerminationViolation` is raised.
    """
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = AsyncNetwork(
        config, seed=seed, tick_duration=tick_duration, fault_plan=fault_plan,
        observer=observer, recovery=recovery, synchrony=synchrony,
    )
    if recovery is not None:
        recovery.describe(n=config.n, t=config.t, seed=seed)
    network.corrupted = set(crashed)
    live = [pid for pid in config.processes if pid not in crashed]
    missing = [pid for pid in live if pid not in factories]
    if missing:
        raise SchedulerError(f"processes {missing} have no protocol")

    nodes: dict[ProcessId, TcpProcessNode] = {}
    tasks: list[asyncio.Task] = []
    try:
        nodes = {pid: TcpProcessNode(network, pid) for pid in live}
        ports = {pid: await node.start_server() for pid, node in nodes.items()}
        for node in nodes.values():
            await node.connect_peers(ports)

        start_time = loop.time() + tick_duration
        tasks = [
            asyncio.create_task(
                _drive_tcp_process(network, nodes[pid], factories[pid], start_time)
            )
            for pid in live
        ]
        gathered = asyncio.gather(*tasks)
        try:
            if timeout is not None:
                results = await asyncio.wait_for(gathered, timeout)
            else:
                results = await gathered
        except asyncio.TimeoutError:
            raise TerminationViolation(
                f"TCP run exceeded timeout={timeout}s before every live "
                f"process decided"
            ) from None
    finally:
        # Guaranteed teardown on every path: success, protocol error,
        # timeout, or cancellation of this coroutine itself.
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        network.cancel_timers()
        for node in nodes.values():
            await node.close_outgoing()
        for node in nodes.values():
            await node.close_incoming()
        if recovery is not None:
            recovery.close()
            if network.observer is not None:
                network.observer.gauge(
                    "recovery.wal_bytes", recovery.wal_bytes()
                )
    return AsyncRunResult(
        config=config,
        decisions=dict(results),
        corrupted=frozenset(crashed),
        ledger=network.ledger,
        trace=network.trace,
        elapsed=loop.time() - started,
        observer=network.observer,
        recovered=frozenset(network.recovered),
    )
