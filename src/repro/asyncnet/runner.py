"""The asyncio protocol runner.

Design: each correct process is an asyncio task driving its protocol
generator.  A ``yield`` in protocol code means "end of my current
round": the task sleeps ``tick_duration`` seconds, then drains its
queue into ``ctx.inbox`` and resumes the generator.  All tasks start
together, so their round boundaries stay aligned to within scheduling
jitter — which the protocols already tolerate, because every
multi-party step reads from a :class:`~repro.runtime.pool.MessagePool`
(the same mechanism that absorbs the paper's ``delta`` skew, Lemma 18).

Messages are delivered through per-process ``asyncio.Queue``s after an
optional artificial ``latency`` (keep it under ``tick_duration``, the
synchrony bound).  Word accounting and tracing reuse the simulator's
:class:`~repro.metrics.words.WordLedger` and
:class:`~repro.runtime.trace.Trace`.

Synchrony models
----------------

A non-trivial :class:`~repro.runtime.synchrony.SynchronyModel` changes
*when messages are due*, not how rounds are paced: the wall-clock
drivers keep their absolute shared clock (one round per
``tick_duration``), and the model's delivery law — ``delta`` bounds,
GST partial synchrony with seeded pre-GST delays — is realized through
the ``delivered_at`` stamp that :func:`_drain_due` partitions on, so a
held-back message simply waits in ``pending`` for its due round.  Tick
coordinates scale by ``delta`` (round ``k`` sends at tick ``k *
delta``), which keeps the stamps numerically identical to the tick
scheduler's.  Certificate-early round advancement is a simulator
feature: over real transports rounds are paced by the shared clock
alone, which is exactly the timeout half of certificate-∨-timeout.
"""

from __future__ import annotations

import asyncio
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator

from typing import TYPE_CHECKING

from repro.config import ProcessId, SystemConfig
from repro.crypto.certificates import CryptoSuite
from repro.crypto.keys import Signer
from repro.errors import SchedulerError
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.words import WordLedger
from repro.obs.observer import Observer, active_or_none
from repro.runtime.envelope import Envelope
from repro.runtime.synchrony import LOCKSTEP, SynchronyModel
from repro.runtime.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.manager import RecoveryManager
    from repro.recovery.replay import ReplayCursor


@dataclass
class AsyncRunResult:
    """Mirror of :class:`~repro.runtime.result.RunResult` for async runs."""

    config: SystemConfig
    decisions: dict[ProcessId, Any]
    corrupted: frozenset[ProcessId]
    ledger: WordLedger
    trace: Trace
    elapsed: float
    observer: Observer | None = None
    """Telemetry observer that watched the run (``None`` = uninstrumented)."""

    recovered: frozenset[ProcessId] = frozenset()
    """Processes that crashed, replayed their WAL, and rejoined."""

    @property
    def correct_words(self) -> int:
        return self.ledger.correct_words

    # The accessors below mirror RunResult so that
    # :func:`repro.verify.checker.verify_run` audits async/TCP runs too.

    @property
    def f(self) -> int:
        """Actual number of corrupted processes in the run."""
        return len(self.corrupted)

    @property
    def correct_pids(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.corrupted]

    def fallback_was_used(self) -> bool:
        """Whether any correct process entered a fallback execution."""
        return self.trace.any("fallback_started")

    def unanimous_decision(self) -> Any:
        from repro.errors import AgreementViolation

        correct = [p for p in self.config.processes if p not in self.corrupted]
        missing = [p for p in correct if p not in self.decisions]
        if missing:
            raise AgreementViolation(f"processes {missing} did not decide")
        values = [self.decisions[p] for p in correct]
        for pid, value in zip(correct, values):
            if value != values[0]:
                raise AgreementViolation(
                    f"{correct[0]} decided {values[0]!r}, {pid} decided {value!r}"
                )
        return values[0]


class AsyncNetwork:
    """Shared state of one asyncio protocol run."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        seed: int = 0,
        tick_duration: float = 0.02,
        latency: float = 0.0,
        fault_plan: FaultPlan | None = None,
        observer: Observer | None = None,
        recovery: "RecoveryManager | None" = None,
        synchrony: SynchronyModel | None = None,
    ) -> None:
        if fault_plan is not None and fault_plan.crashes and recovery is None:
            raise SchedulerError(
                "the fault plan schedules crash/restart faults but the "
                "network has no RecoveryManager (pass recovery=...)"
            )
        self.synchrony = synchrony if synchrony is not None else LOCKSTEP
        if not isinstance(self.synchrony, SynchronyModel):
            raise SchedulerError(
                f"synchrony must be a SynchronyModel, got "
                f"{type(self.synchrony).__name__}"
            )
        if not self.synchrony.trivial and recovery is not None:
            raise SchedulerError(
                "crash recovery requires the lockstep delta=1 model: WAL "
                "replay is round-aligned and a paced delivery law is not"
            )
        if latency >= tick_duration:
            raise SchedulerError(
                f"latency ({latency}) must stay below the synchrony bound "
                f"tick_duration ({tick_duration})"
            )
        if fault_plan is not None and (
            latency + fault_plan.max_delay * tick_duration >= tick_duration
        ):
            raise SchedulerError(
                f"fault_plan.max_delay ({fault_plan.max_delay}) plus latency "
                f"({latency}) must stay below the synchrony bound "
                f"tick_duration ({tick_duration})"
            )
        self.config = config
        self.seed = seed
        self.suite = CryptoSuite(config, seed=seed)
        self.tick_duration = tick_duration
        self.latency = latency
        self.fault_plan = fault_plan
        self.injector = FaultInjector(fault_plan) if fault_plan is not None else None
        self.ledger = WordLedger()
        self.trace = Trace()
        self.observer = active_or_none(observer)
        self.recovery = recovery
        self.queues: dict[ProcessId, asyncio.Queue] = {}
        self.corrupted: set[ProcessId] = set()
        self.recovered: set[ProcessId] = set()
        self.global_tick = 0
        self._edge_seq: dict[tuple[ProcessId, ProcessId, int], int] = {}
        """Per-(edge, round) send counter: the synchrony model's seeded
        delivery draws are pure in ``(sender, receiver, sent_at, seq)``."""
        self._timers: set[asyncio.TimerHandle] = set()
        """Outstanding sub-round delivery timers (fault-plan delays).
        Cancelled by :meth:`cancel_timers` on teardown so no callback
        outlives its run."""

    def delivery_round(
        self, sender: ProcessId, to: ProcessId, tick: int
    ) -> int:
        """The round a message sent in round ``tick`` is due — ``tick +
        1`` under the trivial model, otherwise the model's delivery law
        with round coordinates scaled by ``delta`` (round ``k`` = tick
        ``k * delta``), rounded up to the boundary the delivery tick
        falls inside."""
        if self.synchrony.trivial:
            return tick + 1
        delta = self.synchrony.delta
        edge = (sender, to, tick)
        seq = self._edge_seq.get(edge, 0)
        self._edge_seq[edge] = seq + 1
        delivered_tick = self.synchrony.delivery_tick(
            sender, to, tick * delta, seq
        )
        return max(tick + 1, -(-delivered_tick // delta))

    def schedule_delivery(
        self, delay: float, deliver: Callable[[], None]
    ) -> None:
        """Run ``deliver`` after ``delay`` seconds on a tracked timer
        (immediately when the delay is zero)."""
        if delay <= 0:
            deliver()
            return
        loop = asyncio.get_running_loop()
        handle: asyncio.TimerHandle | None = None

        def fire() -> None:
            self._timers.discard(handle)
            deliver()

        handle = loop.call_later(delay, fire)
        self._timers.add(handle)

    def cancel_timers(self) -> None:
        """Teardown: cancel every outstanding delivery timer."""
        for handle in self._timers:
            handle.cancel()
        self._timers.clear()

    def queue_for(self, pid: ProcessId) -> asyncio.Queue:
        if pid not in self.queues:
            self.queues[pid] = asyncio.Queue()
        return self.queues[pid]

    def order_inbox(
        self, pid: ProcessId, tick: int, envelopes: list[Envelope]
    ) -> list[Envelope]:
        """Canonical per-round inbox order: sender sort, or the fault
        plan's seeded within-``delta`` reordering when one is active.
        Canonicalizing first makes the order independent of real arrival
        timing, which keeps same-seed runs trace-identical."""
        if self.fault_plan is not None:
            return self.fault_plan.order_inbox(pid, tick, envelopes)
        return sorted(envelopes, key=lambda e: e.sender)

    def post(
        self, sender: ProcessId, to: ProcessId, payload: object, *, tick: int,
        scope: str,
    ) -> None:
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        record = self.ledger.record(
            tick=tick,
            sender=sender,
            receiver=to,
            payload=payload,
            scope=scope,
            sender_correct=sender not in self.corrupted,
        )
        obs = self.observer
        if obs is not None and record is not None:
            obs.on_send(record)
        if (
            self.recovery is not None
            and record is not None
            and sender not in self.corrupted
        ):
            # Highwater marks count billed sends only (self-delivery is
            # free), keeping replay comparable to the word ledger.
            self.recovery.on_send(sender, tick)
        envelope = Envelope(
            sender=sender,
            receiver=to,
            payload=payload,
            sent_at=tick,
            delivered_at=(
                tick + 1 if sender == to
                else self.delivery_round(sender, to, tick)
            ),
        )
        if self.injector is None:
            copies = [0.0]
        else:  # the ledger billed the send; faults act on the wire
            copies = self.injector.copies(sender, to, tick)
            if obs is not None:
                if not copies:
                    obs.on_fault("dropped")
                else:
                    if len(copies) > 1:
                        obs.on_fault("duplicated", len(copies) - 1)
                    if any(delay > 0 for delay in copies):
                        obs.on_fault("delayed")
        queue = self.queue_for(to)
        for delay_fraction in copies:
            delay = self.latency + delay_fraction * self.tick_duration
            self.schedule_delivery(delay, lambda: queue.put_nowait(envelope))


class AsyncContext:
    """Duck-type of :class:`~repro.runtime.context.ProcessContext`.

    Protocol generators only use the attribute surface implemented
    here, so they run unmodified.
    """

    def __init__(self, network: AsyncNetwork, pid: ProcessId) -> None:
        self._network = network
        self._pid = pid
        self._tick = 0
        self._scopes: list[str] = []
        self._replay: "ReplayCursor | None" = None
        self.inbox: list[Envelope] = []
        self.rng = random.Random((network.seed * 1_000_003 + pid) & 0xFFFFFFFF)

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._network.config

    @property
    def suite(self) -> CryptoSuite:
        return self._network.suite

    @property
    def signer(self) -> Signer:
        return self._network.suite.signer(self._pid)

    @property
    def now(self) -> int:
        if self._replay is not None:
            return self._replay.tick
        return self._tick

    @property
    def scope_path(self) -> str:
        return "/".join(self._scopes) or "top"

    def send(self, to: ProcessId, payload: object) -> None:
        if self._replay is not None:
            if to != self._pid:  # self-delivery is free, never billed
                self._replay.note_send()
            return
        self._network.post(
            self._pid, to, payload, tick=self._tick, scope=self.scope_path
        )

    def broadcast(self, payload: object, include_self: bool = True) -> None:
        for to in self.config.processes:
            if to == self._pid and not include_self:
                continue
            self.send(to, payload)

    def emit(self, name: str, **data: Any) -> None:
        if self._replay is not None:
            self._replay.note_event()
            return
        self._network.trace.emit(
            tick=self._tick,
            pid=self._pid,
            scope=self.scope_path,
            name=name,
            **data,
        )
        recovery = self._network.recovery
        if recovery is not None:
            recovery.on_event(
                self._pid, self._tick, self.scope_path, name,
                tuple(sorted(data.items())),
            )

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    # -- crash recovery (see repro.recovery.replay) ----------------------

    def begin_replay(self, cursor: "ReplayCursor") -> None:
        self._replay = cursor

    def end_replay(self) -> None:
        self._replay = None

    @property
    def replaying(self) -> bool:
        return self._replay is not None

    def sleep(self, ticks: int) -> Generator[None, None, list[Envelope]]:
        collected: list[Envelope] = []
        for _ in range(ticks):
            yield
            collected.extend(self.inbox)
        return collected

    def next_round(self) -> Generator[None, None, list[Envelope]]:
        return (yield from self.sleep(1))

    # -- driver hooks ----------------------------------------------------

    def advance(self, envelopes: list[Envelope]) -> None:
        self._tick += 1
        self.inbox = envelopes

    def rejoin(self, tick: int, envelopes: list[Envelope]) -> None:
        """Pin a freshly replayed context to the live clock."""
        self._tick = tick
        self.inbox = envelopes


def _drain_due(
    queue: "asyncio.Queue[Envelope]", pending: list[Envelope], tick: int
) -> list[Envelope]:
    """Drain ``queue`` and return the envelopes due by round ``tick``.

    On a shared event loop a peer that wakes first at a round boundary
    can get its round-``tick`` sends enqueued *before* this process
    drains its inbox for round ``tick`` — wall-clock arrival order is
    not a round number, and which task wins that race varies run to run.
    Partitioning on the envelope's ``delivered_at`` stamp makes round
    membership deterministic on the early side: an early arrival waits
    in ``pending`` for its due round.  A genuine straggler (arriving
    after its due round was collected) still joins the first round after
    it lands, which only the synchrony bound can prevent.
    """
    while not queue.empty():
        pending.append(queue.get_nowait())
    due = [e for e in pending if e.delivered_at <= tick]
    pending[:] = [e for e in pending if e.delivered_at > tick]
    return due


async def _drive_process(
    network: AsyncNetwork,
    pid: ProcessId,
    factory: Callable[[AsyncContext], Generator[None, None, Any]],
    start_time: float,
) -> tuple[ProcessId, Any]:
    """Drive one protocol generator, one round per ``tick_duration``.

    Round boundaries are pinned to the *absolute* shared clock
    (``start_time + k * tick_duration``) rather than relative sleeps —
    otherwise tasks with heavier per-round work (leaders) would drift
    behind their peers and break the synchrony bound.
    """
    loop = asyncio.get_running_loop()
    ctx = AsyncContext(network, pid)
    generator = factory(ctx)
    queue = network.queue_for(pid)
    recovery = network.recovery
    plan = network.fault_plan
    crashes = (
        sorted(
            (c for c in plan.crashes if c.pid == pid),
            key=lambda c: c.at_tick,
        )
        if plan is not None
        else []
    )
    tick_index = 0
    pending: list[Envelope] = []
    while True:
        if crashes and tick_index == crashes[0].at_tick:
            crash = crashes.pop(0)
            revived = await _crash_and_recover(
                network, pid, factory, crash, start_time,
                make_ctx=lambda: AsyncContext(network, pid),
                pending=pending,
            )
            if revived[0] is None:  # the protocol completed during replay
                return pid, revived[1]
            generator, ctx = revived
            tick_index = crash.restart_tick
        if recovery is not None:
            recovery.on_inbox(pid, tick_index, ctx.inbox)
        try:
            next(generator)
        except StopIteration as stop:
            if recovery is not None:
                recovery.flush(pid)
            return pid, stop.value
        if recovery is not None:
            # One fsync batch per round, after the round's sends: the
            # inbox and the send highwater marks it produced become
            # durable together (the tick scheduler's end_tick cadence).
            recovery.flush(pid)
        tick_index += 1
        delay = start_time + tick_index * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        ctx.advance(
            network.order_inbox(
                pid, tick_index, _drain_due(queue, pending, tick_index)
            )
        )


async def _crash_and_recover(
    network: AsyncNetwork,
    pid: ProcessId,
    factory: Callable[[AsyncContext], Generator[None, None, Any]],
    crash: Any,
    start_time: float,
    *,
    make_ctx: Callable[[], AsyncContext],
    pending: list[Envelope],
    on_down: Callable[[], Any] | None = None,
    on_up: Callable[[], Any] | None = None,
):
    """Take ``pid`` down for ``[at_tick, restart_tick)`` and rejoin it.

    Deliveries that land while the process is down are discarded at each
    round boundary except the last — a message sent during round
    ``restart_tick - 1`` is due at ``restart_tick``, when the process is
    back up (matching the tick scheduler's semantics).  Rejoin replays
    the WAL with sends suppressed, then pins the fresh context to the
    live clock.

    ``make_ctx`` builds the transport-appropriate fresh context;
    ``on_down`` / ``on_up`` are optional async hooks for transports with
    machine state to tear down and re-establish (the TCP node closes its
    outgoing sessions on crash and re-dials peers with a bumped epoch on
    restart).

    Returns ``(generator, ctx)``; when the protocol completed during
    replay, returns ``(None, decision)`` instead.
    """
    from repro.recovery.replay import replay_generator

    loop = asyncio.get_running_loop()
    queue = network.queue_for(pid)
    recovery = network.recovery
    obs = network.observer
    recovery.on_crash(pid, crash.at_tick)
    network.trace.emit(
        tick=crash.at_tick, pid=pid, scope="faults", name="crashed"
    )
    if obs is not None:
        obs.event("crashed", pid=pid, tick=crash.at_tick)
        obs.on_recovery("crash")
    if on_down is not None:
        await on_down()
    pending.clear()  # held-over deliveries die with the down window
    for k in range(crash.at_tick, crash.restart_tick):
        delay = start_time + (k + 1) * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if k + 1 < crash.restart_tick:
            while not queue.empty():  # lost while down
                queue.get_nowait()
    if on_up is not None:
        await on_up()
    recovery.on_restart(pid, crash.restart_tick, crash.at_tick)
    history = recovery.load(pid)
    ctx = make_ctx()
    generator, report = replay_generator(
        factory, ctx, history, until_tick=crash.restart_tick
    )
    recovery.note_replay(report)
    network.recovered.add(pid)
    network.trace.emit(
        tick=crash.restart_tick, pid=pid, scope="faults", name="recovered",
        replayed_ticks=report.ticks_replayed,
        replayed_sends=report.sends_replayed,
    )
    if obs is not None:
        obs.event(
            "recovered", pid=pid, tick=crash.restart_tick,
            replayed_ticks=report.ticks_replayed,
        )
        obs.on_recovery("restart")
        obs.on_recovery("replayed_ticks", report.ticks_replayed)
    if report.decided:
        return None, report.decision
    ctx.rejoin(
        crash.restart_tick,
        network.order_inbox(
            pid,
            crash.restart_tick,
            _drain_due(queue, pending, crash.restart_tick),
        ),
    )
    return generator, ctx


class _AsyncByzantineApi:
    """The :class:`~repro.runtime.byzantine.ByzantineApi` surface for
    behaviors running over the asyncio transport."""

    def __init__(
        self,
        network: AsyncNetwork,
        pid: ProcessId,
        tick: int,
        inbox: list[Envelope],
    ) -> None:
        self._network = network
        self._pid = pid
        self.now = tick
        self.inbox = inbox
        self.rushed: list[Envelope] = []  # no rushing over real transports

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._network.config

    @property
    def suite(self) -> CryptoSuite:
        return self._network.suite

    @property
    def signer(self) -> Signer:
        return self._network.suite.signer(self._pid)

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        return frozenset(self._network.corrupted)

    def send(self, to: ProcessId, payload: object) -> None:
        self._network.post(
            self._pid, to, payload, tick=self.now, scope="byzantine"
        )

    def broadcast(self, payload: object) -> None:
        for to in self.config.processes:
            if to != self._pid:
                self.send(to, payload)

    def emit(self, name: str, **data: Any) -> None:
        self._network.trace.emit(
            tick=self.now, pid=self._pid, scope="byzantine", name=name, **data
        )


async def _drive_behavior(
    network: AsyncNetwork,
    pid: ProcessId,
    behavior: Any,
    start_time: float,
    stop: asyncio.Event,
) -> None:
    """Step a Byzantine behavior once per round until the run ends."""
    loop = asyncio.get_running_loop()
    queue = network.queue_for(pid)
    tick = 0
    while not stop.is_set():
        envelopes: list[Envelope] = []
        while not queue.empty():
            envelopes.append(queue.get_nowait())
        envelopes = network.order_inbox(pid, tick, envelopes)
        behavior.step(_AsyncByzantineApi(network, pid, tick, envelopes))
        tick += 1
        delay = start_time + tick * network.tick_duration - loop.time()
        if delay > 0:
            try:
                await asyncio.wait_for(stop.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass


async def run_async(
    config: SystemConfig,
    factories: dict[ProcessId, Callable],
    *,
    seed: int = 0,
    tick_duration: float = 0.02,
    latency: float = 0.0,
    crashed: frozenset[ProcessId] = frozenset(),
    byzantine: dict[ProcessId, Any] | None = None,
    fault_plan: FaultPlan | None = None,
    observer: Observer | None = None,
    recovery: "RecoveryManager | None" = None,
    synchrony: SynchronyModel | None = None,
) -> AsyncRunResult:
    """Run one protocol instance over asyncio.

    ``factories`` maps every correct pid to its protocol factory;
    ``crashed`` processes never run (silent failures); ``byzantine``
    maps corrupted pids to behavior objects with the same ``step(api)``
    interface the deterministic simulator uses (minus rushing
    visibility — real transports don't offer it); ``fault_plan``
    deterministically drops / duplicates / delays / reorders messages
    (see :mod:`repro.faults`); ``recovery`` gives every correct process
    a write-ahead log and is required when the plan schedules
    crash/restart faults (the crashed task discards its generator, goes
    silent for the down window, replays its WAL, and rejoins);
    ``synchrony`` installs a non-default delivery law (module
    docstring) — exclusive with ``recovery``.
    """
    byzantine = byzantine or {}
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = AsyncNetwork(
        config,
        seed=seed,
        tick_duration=tick_duration,
        latency=latency,
        fault_plan=fault_plan,
        observer=observer,
        recovery=recovery,
        synchrony=synchrony,
    )
    if recovery is not None:
        recovery.describe(n=config.n, t=config.t, seed=seed)
    network.corrupted = set(crashed) | set(byzantine)
    missing = [
        pid
        for pid in config.processes
        if pid not in factories and pid not in network.corrupted
    ]
    if missing:
        raise SchedulerError(f"processes {missing} have no protocol")
    start_time = loop.time() + tick_duration
    tasks = [
        asyncio.create_task(
            _drive_process(network, pid, factories[pid], start_time)
        )
        for pid in config.processes
        if pid not in network.corrupted
    ]
    stop = asyncio.Event()
    behavior_tasks = [
        asyncio.create_task(
            _drive_behavior(network, pid, behavior, start_time, stop)
        )
        for pid, behavior in byzantine.items()
    ]
    try:
        results = await asyncio.gather(*tasks)
    finally:
        stop.set()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, *behavior_tasks, return_exceptions=True)
        network.cancel_timers()
        if recovery is not None:
            recovery.close()
            if network.observer is not None:
                network.observer.gauge(
                    "recovery.wal_bytes", recovery.wal_bytes()
                )
    return AsyncRunResult(
        config=config,
        decisions=dict(results),
        corrupted=frozenset(network.corrupted),
        ledger=network.ledger,
        trace=network.trace,
        elapsed=loop.time() - started,
        observer=network.observer,
        recovered=frozenset(network.recovered),
    )
