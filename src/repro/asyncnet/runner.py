"""The asyncio protocol runner.

Design: each correct process is an asyncio task driving its protocol
generator.  A ``yield`` in protocol code means "end of my current
round": the task sleeps ``tick_duration`` seconds, then drains its
queue into ``ctx.inbox`` and resumes the generator.  All tasks start
together, so their round boundaries stay aligned to within scheduling
jitter — which the protocols already tolerate, because every
multi-party step reads from a :class:`~repro.runtime.pool.MessagePool`
(the same mechanism that absorbs the paper's ``delta`` skew, Lemma 18).

Messages are delivered through per-process ``asyncio.Queue``s after an
optional artificial ``latency`` (keep it under ``tick_duration``, the
synchrony bound).  Word accounting and tracing reuse the simulator's
:class:`~repro.metrics.words.WordLedger` and
:class:`~repro.runtime.trace.Trace`.
"""

from __future__ import annotations

import asyncio
import random
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterator

from repro.config import ProcessId, SystemConfig
from repro.crypto.certificates import CryptoSuite
from repro.crypto.keys import Signer
from repro.errors import SchedulerError
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.words import WordLedger
from repro.obs.observer import Observer, active_or_none
from repro.runtime.envelope import Envelope
from repro.runtime.trace import Trace


@dataclass
class AsyncRunResult:
    """Mirror of :class:`~repro.runtime.result.RunResult` for async runs."""

    config: SystemConfig
    decisions: dict[ProcessId, Any]
    corrupted: frozenset[ProcessId]
    ledger: WordLedger
    trace: Trace
    elapsed: float
    observer: Observer | None = None
    """Telemetry observer that watched the run (``None`` = uninstrumented)."""

    @property
    def correct_words(self) -> int:
        return self.ledger.correct_words

    # The accessors below mirror RunResult so that
    # :func:`repro.verify.checker.verify_run` audits async/TCP runs too.

    @property
    def f(self) -> int:
        """Actual number of corrupted processes in the run."""
        return len(self.corrupted)

    @property
    def correct_pids(self) -> list[ProcessId]:
        return [p for p in self.config.processes if p not in self.corrupted]

    def fallback_was_used(self) -> bool:
        """Whether any correct process entered a fallback execution."""
        return self.trace.any("fallback_started")

    def unanimous_decision(self) -> Any:
        from repro.errors import AgreementViolation

        correct = [p for p in self.config.processes if p not in self.corrupted]
        missing = [p for p in correct if p not in self.decisions]
        if missing:
            raise AgreementViolation(f"processes {missing} did not decide")
        values = [self.decisions[p] for p in correct]
        for pid, value in zip(correct, values):
            if value != values[0]:
                raise AgreementViolation(
                    f"{correct[0]} decided {values[0]!r}, {pid} decided {value!r}"
                )
        return values[0]


class AsyncNetwork:
    """Shared state of one asyncio protocol run."""

    def __init__(
        self,
        config: SystemConfig,
        *,
        seed: int = 0,
        tick_duration: float = 0.02,
        latency: float = 0.0,
        fault_plan: FaultPlan | None = None,
        observer: Observer | None = None,
    ) -> None:
        if latency >= tick_duration:
            raise SchedulerError(
                f"latency ({latency}) must stay below the synchrony bound "
                f"tick_duration ({tick_duration})"
            )
        if fault_plan is not None and (
            latency + fault_plan.max_delay * tick_duration >= tick_duration
        ):
            raise SchedulerError(
                f"fault_plan.max_delay ({fault_plan.max_delay}) plus latency "
                f"({latency}) must stay below the synchrony bound "
                f"tick_duration ({tick_duration})"
            )
        self.config = config
        self.seed = seed
        self.suite = CryptoSuite(config, seed=seed)
        self.tick_duration = tick_duration
        self.latency = latency
        self.fault_plan = fault_plan
        self.injector = FaultInjector(fault_plan) if fault_plan is not None else None
        self.ledger = WordLedger()
        self.trace = Trace()
        self.observer = active_or_none(observer)
        self.queues: dict[ProcessId, asyncio.Queue] = {}
        self.corrupted: set[ProcessId] = set()
        self.global_tick = 0

    def queue_for(self, pid: ProcessId) -> asyncio.Queue:
        if pid not in self.queues:
            self.queues[pid] = asyncio.Queue()
        return self.queues[pid]

    def order_inbox(
        self, pid: ProcessId, tick: int, envelopes: list[Envelope]
    ) -> list[Envelope]:
        """Canonical per-round inbox order: sender sort, or the fault
        plan's seeded within-``delta`` reordering when one is active.
        Canonicalizing first makes the order independent of real arrival
        timing, which keeps same-seed runs trace-identical."""
        if self.fault_plan is not None:
            return self.fault_plan.order_inbox(pid, tick, envelopes)
        return sorted(envelopes, key=lambda e: e.sender)

    def post(
        self, sender: ProcessId, to: ProcessId, payload: object, *, tick: int,
        scope: str,
    ) -> None:
        if to not in self.config.processes:
            raise SchedulerError(f"send to unknown process {to}")
        record = self.ledger.record(
            tick=tick,
            sender=sender,
            receiver=to,
            payload=payload,
            scope=scope,
            sender_correct=sender not in self.corrupted,
        )
        obs = self.observer
        if obs is not None and record is not None:
            obs.on_send(record)
        envelope = Envelope(
            sender=sender,
            receiver=to,
            payload=payload,
            sent_at=tick,
            delivered_at=tick + 1,
        )
        if self.injector is None:
            copies = [0.0]
        else:  # the ledger billed the send; faults act on the wire
            copies = self.injector.copies(sender, to, tick)
            if obs is not None:
                if not copies:
                    obs.on_fault("dropped")
                else:
                    if len(copies) > 1:
                        obs.on_fault("duplicated", len(copies) - 1)
                    if any(delay > 0 for delay in copies):
                        obs.on_fault("delayed")
        queue = self.queue_for(to)
        for delay_fraction in copies:
            delay = self.latency + delay_fraction * self.tick_duration
            if delay > 0:
                loop = asyncio.get_running_loop()
                loop.call_later(delay, queue.put_nowait, envelope)
            else:
                queue.put_nowait(envelope)


class AsyncContext:
    """Duck-type of :class:`~repro.runtime.context.ProcessContext`.

    Protocol generators only use the attribute surface implemented
    here, so they run unmodified.
    """

    def __init__(self, network: AsyncNetwork, pid: ProcessId) -> None:
        self._network = network
        self._pid = pid
        self._tick = 0
        self._scopes: list[str] = []
        self.inbox: list[Envelope] = []
        self.rng = random.Random((network.seed * 1_000_003 + pid) & 0xFFFFFFFF)

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._network.config

    @property
    def suite(self) -> CryptoSuite:
        return self._network.suite

    @property
    def signer(self) -> Signer:
        return self._network.suite.signer(self._pid)

    @property
    def now(self) -> int:
        return self._tick

    @property
    def scope_path(self) -> str:
        return "/".join(self._scopes) or "top"

    def send(self, to: ProcessId, payload: object) -> None:
        self._network.post(
            self._pid, to, payload, tick=self._tick, scope=self.scope_path
        )

    def broadcast(self, payload: object, include_self: bool = True) -> None:
        for to in self.config.processes:
            if to == self._pid and not include_self:
                continue
            self.send(to, payload)

    def emit(self, name: str, **data: Any) -> None:
        self._network.trace.emit(
            tick=self._tick,
            pid=self._pid,
            scope=self.scope_path,
            name=name,
            **data,
        )

    @contextmanager
    def scope(self, name: str) -> Iterator[None]:
        self._scopes.append(name)
        try:
            yield
        finally:
            self._scopes.pop()

    def sleep(self, ticks: int) -> Generator[None, None, list[Envelope]]:
        collected: list[Envelope] = []
        for _ in range(ticks):
            yield
            collected.extend(self.inbox)
        return collected

    def next_round(self) -> Generator[None, None, list[Envelope]]:
        return (yield from self.sleep(1))

    # -- driver hooks ----------------------------------------------------

    def advance(self, envelopes: list[Envelope]) -> None:
        self._tick += 1
        self.inbox = envelopes


async def _drive_process(
    network: AsyncNetwork,
    pid: ProcessId,
    factory: Callable[[AsyncContext], Generator[None, None, Any]],
    start_time: float,
) -> tuple[ProcessId, Any]:
    """Drive one protocol generator, one round per ``tick_duration``.

    Round boundaries are pinned to the *absolute* shared clock
    (``start_time + k * tick_duration``) rather than relative sleeps —
    otherwise tasks with heavier per-round work (leaders) would drift
    behind their peers and break the synchrony bound.
    """
    loop = asyncio.get_running_loop()
    ctx = AsyncContext(network, pid)
    generator = factory(ctx)
    queue = network.queue_for(pid)
    tick_index = 0
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return pid, stop.value
        tick_index += 1
        delay = start_time + tick_index * network.tick_duration - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        envelopes: list[Envelope] = []
        while not queue.empty():
            envelopes.append(queue.get_nowait())
        ctx.advance(network.order_inbox(pid, tick_index, envelopes))


class _AsyncByzantineApi:
    """The :class:`~repro.runtime.byzantine.ByzantineApi` surface for
    behaviors running over the asyncio transport."""

    def __init__(
        self,
        network: AsyncNetwork,
        pid: ProcessId,
        tick: int,
        inbox: list[Envelope],
    ) -> None:
        self._network = network
        self._pid = pid
        self.now = tick
        self.inbox = inbox
        self.rushed: list[Envelope] = []  # no rushing over real transports

    @property
    def pid(self) -> ProcessId:
        return self._pid

    @property
    def config(self) -> SystemConfig:
        return self._network.config

    @property
    def suite(self) -> CryptoSuite:
        return self._network.suite

    @property
    def signer(self) -> Signer:
        return self._network.suite.signer(self._pid)

    @property
    def corrupted(self) -> frozenset[ProcessId]:
        return frozenset(self._network.corrupted)

    def send(self, to: ProcessId, payload: object) -> None:
        self._network.post(
            self._pid, to, payload, tick=self.now, scope="byzantine"
        )

    def broadcast(self, payload: object) -> None:
        for to in self.config.processes:
            if to != self._pid:
                self.send(to, payload)

    def emit(self, name: str, **data: Any) -> None:
        self._network.trace.emit(
            tick=self.now, pid=self._pid, scope="byzantine", name=name, **data
        )


async def _drive_behavior(
    network: AsyncNetwork,
    pid: ProcessId,
    behavior: Any,
    start_time: float,
    stop: asyncio.Event,
) -> None:
    """Step a Byzantine behavior once per round until the run ends."""
    loop = asyncio.get_running_loop()
    queue = network.queue_for(pid)
    tick = 0
    while not stop.is_set():
        envelopes: list[Envelope] = []
        while not queue.empty():
            envelopes.append(queue.get_nowait())
        envelopes = network.order_inbox(pid, tick, envelopes)
        behavior.step(_AsyncByzantineApi(network, pid, tick, envelopes))
        tick += 1
        delay = start_time + tick * network.tick_duration - loop.time()
        if delay > 0:
            try:
                await asyncio.wait_for(stop.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass


async def run_async(
    config: SystemConfig,
    factories: dict[ProcessId, Callable],
    *,
    seed: int = 0,
    tick_duration: float = 0.02,
    latency: float = 0.0,
    crashed: frozenset[ProcessId] = frozenset(),
    byzantine: dict[ProcessId, Any] | None = None,
    fault_plan: FaultPlan | None = None,
    observer: Observer | None = None,
) -> AsyncRunResult:
    """Run one protocol instance over asyncio.

    ``factories`` maps every correct pid to its protocol factory;
    ``crashed`` processes never run (silent failures); ``byzantine``
    maps corrupted pids to behavior objects with the same ``step(api)``
    interface the deterministic simulator uses (minus rushing
    visibility — real transports don't offer it); ``fault_plan``
    deterministically drops / duplicates / delays / reorders messages
    (see :mod:`repro.faults`).
    """
    byzantine = byzantine or {}
    loop = asyncio.get_running_loop()
    started = loop.time()
    network = AsyncNetwork(
        config,
        seed=seed,
        tick_duration=tick_duration,
        latency=latency,
        fault_plan=fault_plan,
        observer=observer,
    )
    network.corrupted = set(crashed) | set(byzantine)
    missing = [
        pid
        for pid in config.processes
        if pid not in factories and pid not in network.corrupted
    ]
    if missing:
        raise SchedulerError(f"processes {missing} have no protocol")
    start_time = loop.time() + tick_duration
    tasks = [
        asyncio.create_task(
            _drive_process(network, pid, factories[pid], start_time)
        )
        for pid in config.processes
        if pid not in network.corrupted
    ]
    stop = asyncio.Event()
    behavior_tasks = [
        asyncio.create_task(
            _drive_behavior(network, pid, behavior, start_time, stop)
        )
        for pid, behavior in byzantine.items()
    ]
    try:
        results = await asyncio.gather(*tasks)
    finally:
        stop.set()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, *behavior_tasks, return_exceptions=True)
    return AsyncRunResult(
        config=config,
        decisions=dict(results),
        corrupted=frozenset(network.corrupted),
        ledger=network.ledger,
        trace=network.trace,
        elapsed=loop.time() - started,
        observer=network.observer,
    )
