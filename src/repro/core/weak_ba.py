"""Adaptive weak Byzantine Agreement — the paper's Algorithms 3 and 4.

Resilience ``n = 2t + 1``, synchronous, ``O(n(f+1))`` words when
``f < (n-t-1)/2`` and ``O(n^2)`` otherwise (Section 6.1).

Structure (Algorithm 3):

1. **Phases** — ``num_phases`` rotating-leader phases (Algorithm 4).  A
   leader that has already decided keeps its phase *silent*; a
   non-silent phase costs ``O(n)`` words thanks to threshold
   signatures.  Within a phase the leader gathers either ``vote``
   shares on its proposal or an existing ``commit`` certificate, relays
   a ``commit`` certificate at the phase's level, collects ``decide``
   shares, and publishes a ``finalized`` certificate — all with the
   intersecting quorum ``⌈(n+t+1)/2⌉``.
2. **Help** — undecided processes broadcast signed ``help_req``;
   decided processes answer with their decision and its finalize
   certificate.  ``t + 1`` help requests batch into a fallback
   certificate (proof that ``f = Θ(t)``).
3. **Fallback** — a process receiving a fallback certificate echoes it
   once and, after a ``2δ`` safety window in which it adopts any proven
   decision as its fallback input, runs ``Afallback`` with round length
   ``δ' = 2δ`` (Lemmas 17/18).  The fallback's output is checked
   against the validity predicate; an invalid output means no unanimous
   valid value existed, and ``⊥`` is decided (unique validity).

Termination note (simulation vs. paper): the paper's processes never
halt, so a fallback certificate released arbitrarily late by the
adversary would still be served.  A simulation must terminate; after
the help rounds we keep listening for ``GRACE_TICKS`` extra ticks.  By
then every correct process has either decided or set its fallback
timer (see ``_help_and_fallback``), so the only certificates that can
arrive later are adversary-delayed ones addressed to processes that
have all already decided the *same* value — running the paper's
pointless unanimous fallback then would change nothing, and skipping
it is behaviorally equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.validity import ValidityPredicate
from repro.core.values import BOTTOM, UNDECIDED
from repro.crypto.certificates import (
    CertificateCollector,
    QuorumCertificate,
)
from repro.crypto.threshold import PartialSignature
from repro.fallback.recursive_ba import FALLBACK_ROUND_TICKS, fallback_ba
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

GRACE_TICKS = 3
"""Extra listening ticks for late fallback certificates (see module doc)."""


# ----------------------------------------------------------------------
# Wire payloads (constant signatures/values each -> 1 word)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WbaPropose:
    """Alg. 4 line 32: the leader's proposal for phase ``phase``."""

    session: str
    phase: int
    value: object

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the leader's own signature on the proposal


@dataclass(frozen=True)
class WbaVote:
    """Alg. 4 line 34: a share toward ``QC_commit(value)`` at this level."""

    session: str
    phase: int
    value: object
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class WbaCommitInfo:
    """Alg. 4 line 36: a previously committed value + proof + level."""

    session: str
    phase: int
    value: object
    proof: QuorumCertificate
    level: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class WbaCommitCert:
    """Alg. 4 lines 39/42: the leader's relayed/formed commit certificate."""

    session: str
    phase: int
    value: object
    proof: QuorumCertificate
    level: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class WbaDecideShare:
    """Alg. 4 line 44: a share toward ``QC_finalized(value)``."""

    session: str
    phase: int
    value: object
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class WbaFinalize:
    """Alg. 4 line 51: the finalize certificate — decisions follow it."""

    session: str
    phase: int
    value: object
    proof: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class WbaHelpReq:
    """Alg. 3 line 6: a signed help request (share of ``QC_fallback``)."""

    session: str
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class WbaHelp:
    """Alg. 3 line 8: a decided process's answer to a help request."""

    session: str
    value: object
    proof: QuorumCertificate
    proof_phase: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class WbaFallbackCert:
    """Alg. 3 lines 11/22: the fallback certificate, echoed once, with
    the sender's decision (and proof) attached when it has one."""

    session: str
    certificate: QuorumCertificate
    value: object
    proof: QuorumCertificate | None
    proof_phase: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        total = self.certificate.signatures()
        if self.proof is not None:
            total += self.proof.signatures()
        return total


# ----------------------------------------------------------------------
# Certificate labels
# ----------------------------------------------------------------------


def commit_label(session: str) -> str:
    return f"wba-commit:{session}"


def finalize_label(session: str) -> str:
    return f"wba-fin:{session}"


def fallback_label(session: str) -> str:
    return f"wba-fb:{session}"


FALLBACK_STATEMENT = "start-fallback"


@dataclass
class _State:
    """Algorithm 3's process-local variables."""

    value: object  # v_i
    decision: object = UNDECIDED
    decide_proof: QuorumCertificate | None = None
    decide_phase: int = 0
    commit: object = None
    commit_proof: QuorumCertificate | None = None
    commit_level: int = 0
    bu_decision: object = None
    bu_proof: QuorumCertificate | None = None
    fallback_start: float = field(default=float("inf"))


class _Crypto:
    """Bundles the per-session labels and quorums for Algorithm 3/4."""

    def __init__(
        self, ctx: ProcessContext, session: str, commit_quorum: int | None
    ) -> None:
        self.ctx = ctx
        self.session = session
        self.config = ctx.config
        self.commit_quorum = (
            commit_quorum
            if commit_quorum is not None
            else ctx.config.commit_quorum
        )
        self.commit_label = commit_label(session)
        self.finalize_label = finalize_label(session)
        self.fallback_label = fallback_label(session)

    # -- statement payloads -------------------------------------------------
    def commit_statement(self, value: object, level: int) -> tuple:
        return ("commit", value, level)

    def finalize_statement(self, value: object, phase: int) -> tuple:
        return ("finalized", value, phase)

    # -- verification (never raises on adversarial garbage) ----------------
    def valid_commit_proof(
        self, proof: object, value: object, level: int
    ) -> bool:
        try:
            return (
                isinstance(proof, QuorumCertificate)
                and proof.payload == self.commit_statement(value, level)
                and self.ctx.suite.verify_certificate(
                    proof, self.commit_label, self.commit_quorum
                )
            )
        except Exception:
            return False

    def valid_finalize_proof(
        self, proof: object, value: object, phase: int
    ) -> bool:
        try:
            return (
                isinstance(proof, QuorumCertificate)
                and proof.payload == self.finalize_statement(value, phase)
                and self.ctx.suite.verify_certificate(
                    proof, self.finalize_label, self.commit_quorum
                )
            )
        except Exception:
            return False

    def valid_fallback_cert(self, certificate: object) -> bool:
        try:
            return (
                isinstance(certificate, QuorumCertificate)
                and certificate.payload == FALLBACK_STATEMENT
                and self.ctx.suite.verify_certificate(
                    certificate,
                    self.fallback_label,
                    self.config.small_quorum,
                )
            )
        except Exception:
            return False


def _take_phase(
    pool: MessagePool, payload_type: type, session: str, phase: int
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session
        and getattr(e.payload, "phase", None) == phase,
    )


def _take_session(
    pool: MessagePool, payload_type: type, session: str
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session,
    )


def _invoke_phase(
    ctx: ProcessContext,
    pool: MessagePool,
    crypto: _Crypto,
    state: _State,
    phase: int,
    validity: ValidityPredicate,
) -> Generator[None, None, None]:
    """Algorithm 4 (``invokePhase``), six synchronous rounds.

    Updates ``state`` in place: ``decision``/``decide_proof`` if a
    finalize certificate is observed, and the commit triple when a
    commit certificate of sufficient level is observed.
    """
    session = crypto.session
    leader = ctx.config.leader_of_phase(phase)
    is_leader = ctx.pid == leader

    # Round 1 (lines 31-32): an undecided leader proposes its value.
    if is_leader and state.decision == UNDECIDED:
        ctx.emit("phase_non_silent", phase=phase, leader=leader)
        ctx.broadcast(WbaPropose(session=session, phase=phase, value=state.value))
    pool.extend((yield from ctx.sleep(1)))

    # Round 2 (lines 33-36): vote, or report an existing commitment.
    proposals = [
        e
        for e in _take_phase(pool, WbaPropose, session, phase)
        if e.sender == leader
    ]
    if proposals:
        proposal = proposals[0]  # "for the first time" (line 33)
        value = proposal.payload.value
        if state.commit is None and validity.validate(value):
            partial = ctx.suite.partial_for_certificate(
                ctx.pid,
                crypto.commit_label,
                crypto.commit_quorum,
                crypto.commit_statement(value, phase),
            )
            ctx.send(
                leader,
                WbaVote(session=session, phase=phase, value=value, partial=partial),
            )
        elif state.commit is not None:
            ctx.send(
                leader,
                WbaCommitInfo(
                    session=session,
                    phase=phase,
                    value=state.commit,
                    proof=state.commit_proof,
                    level=state.commit_level,
                ),
            )
    pool.extend((yield from ctx.sleep(1)))

    # Round 3 (lines 37-42): the leader relays a commit certificate.
    if is_leader:
        best_info: WbaCommitInfo | None = None
        for envelope in _take_phase(pool, WbaCommitInfo, session, phase):
            info = envelope.payload
            if not crypto.valid_commit_proof(info.proof, info.value, info.level):
                continue
            if best_info is None or info.level > best_info.level:
                best_info = info
        if best_info is not None:
            # Line 39: relay the maximal-level commitment heard.
            ctx.broadcast(
                WbaCommitCert(
                    session=session,
                    phase=phase,
                    value=best_info.value,
                    proof=best_info.proof,
                    level=best_info.level,
                )
            )
        else:
            votes = _take_phase(pool, WbaVote, session, phase)
            by_value: dict[object, CertificateCollector] = {}
            for envelope in votes:
                vote = envelope.payload
                try:
                    collector = by_value.get(vote.value)
                    if collector is None:
                        collector = CertificateCollector(
                            ctx.suite,
                            crypto.commit_label,
                            crypto.commit_quorum,
                            crypto.commit_statement(vote.value, phase),
                        )
                        by_value[vote.value] = collector
                    collector.add(vote.partial)
                except Exception:
                    continue
            for vote_value, collector in by_value.items():
                if collector.complete:
                    # Lines 40-42: new commit certificate at level = phase.
                    ctx.broadcast(
                        WbaCommitCert(
                            session=session,
                            phase=phase,
                            value=vote_value,
                            proof=collector.certificate(),
                            level=phase,
                        )
                    )
                    break
    pool.extend((yield from ctx.sleep(1)))

    # Round 4 (lines 43-47): adopt the commit, send a decide share.
    commit_certs = [
        e
        for e in _take_phase(pool, WbaCommitCert, session, phase)
        if e.sender == leader
    ]
    for envelope in commit_certs[:1]:  # at most one per leader per phase
        cert = envelope.payload
        if cert.level < state.commit_level:
            continue
        if not crypto.valid_commit_proof(cert.proof, cert.value, cert.level):
            continue
        partial = ctx.suite.partial_for_certificate(
            ctx.pid,
            crypto.finalize_label,
            crypto.commit_quorum,
            crypto.finalize_statement(cert.value, phase),
        )
        ctx.send(
            leader,
            WbaDecideShare(
                session=session, phase=phase, value=cert.value, partial=partial
            ),
        )
        state.commit = cert.value
        state.commit_proof = cert.proof
        state.commit_level = cert.level
    pool.extend((yield from ctx.sleep(1)))

    # Round 5 (lines 48-51): the leader publishes a finalize certificate.
    if is_leader:
        by_value: dict[object, CertificateCollector] = {}
        for envelope in _take_phase(pool, WbaDecideShare, session, phase):
            share = envelope.payload
            try:
                collector = by_value.get(share.value)
                if collector is None:
                    collector = CertificateCollector(
                        ctx.suite,
                        crypto.finalize_label,
                        crypto.commit_quorum,
                        crypto.finalize_statement(share.value, phase),
                    )
                    by_value[share.value] = collector
                collector.add(share.partial)
            except Exception:
                continue
        for share_value, collector in by_value.items():
            if collector.complete:
                ctx.broadcast(
                    WbaFinalize(
                        session=session,
                        phase=phase,
                        value=share_value,
                        proof=collector.certificate(),
                    )
                )
                break
    pool.extend((yield from ctx.sleep(1)))

    # Round 6 (lines 52-54): act on the finalize certificate.
    for envelope in _take_phase(pool, WbaFinalize, session, phase):
        final = envelope.payload
        if not crypto.valid_finalize_proof(final.proof, final.value, phase):
            continue
        if state.decision == UNDECIDED:
            state.decision = final.value
            state.decide_proof = final.proof
            state.decide_phase = phase
            ctx.emit("wba_decided_in_phase", phase=phase, value=repr(final.value))
        break
    pool.extend((yield from ctx.sleep(1)))


def _help_and_fallback(
    ctx: ProcessContext,
    pool: MessagePool,
    crypto: _Crypto,
    state: _State,
    validity: ValidityPredicate,
    session: str,
    echo_fallback_certificate: bool = True,
) -> Generator[None, None, None]:
    """Algorithm 3 lines 5-29: help rounds, fallback sync, ``Afallback``."""
    config = ctx.config

    # Round 1 (lines 5-6): undecided processes ask for help.
    if state.decision == UNDECIDED:
        partial = ctx.suite.partial_for_certificate(
            ctx.pid,
            crypto.fallback_label,
            config.small_quorum,
            FALLBACK_STATEMENT,
        )
        ctx.broadcast(WbaHelpReq(session=session, partial=partial))
        ctx.emit("help_req_sent")
    pool.extend((yield from ctx.sleep(1)))

    # Round 2 (lines 7-12): answer help requests; form fallback certs.
    requests = _take_session(pool, WbaHelpReq, session)
    requesters: dict[ProcessId, WbaHelpReq] = {}
    for envelope in requests:
        requesters.setdefault(envelope.sender, envelope.payload)
    if state.decision != UNDECIDED:
        for requester in requesters:
            if requester != ctx.pid:
                ctx.send(
                    requester,
                    WbaHelp(
                        session=session,
                        value=state.decision,
                        proof=state.decide_proof,
                        proof_phase=state.decide_phase,
                    ),
                )
    collector = CertificateCollector(
        ctx.suite, crypto.fallback_label, config.small_quorum, FALLBACK_STATEMENT
    )
    for request in requesters.values():
        try:
            collector.add(request.partial)
        except Exception:
            continue
    if collector.complete:
        certificate = collector.certificate()
        ctx.emit("fallback_cert_formed")
        ctx.broadcast(
            WbaFallbackCert(
                session=session,
                certificate=certificate,
                value=state.decision,
                proof=state.decide_proof,
                proof_phase=state.decide_phase,
            )
        )
        state.fallback_start = ctx.now + 2  # now + 2*delta (line 12)
    pool.extend((yield from ctx.sleep(1)))

    # Round 3 (lines 13-15): adopt helped decisions.
    for envelope in _take_session(pool, WbaHelp, session):
        help_msg = envelope.payload
        if state.decision != UNDECIDED:
            break
        if validity.validate(help_msg.value) and crypto.valid_finalize_proof(
            help_msg.proof, help_msg.value, help_msg.proof_phase
        ):
            state.decision = help_msg.value
            state.decide_proof = help_msg.proof
            state.decide_phase = help_msg.proof_phase
            ctx.emit("wba_decided_by_help", value=repr(help_msg.value))
    if state.decision != UNDECIDED:
        state.bu_decision = state.decision  # line 15 (see module doc)
        state.bu_proof = state.decide_proof

    # Lines 16-23: the safety window.  Listen for fallback certificates,
    # echoing the first one; adopt any proven decision as the fallback
    # input.  Keep listening up to GRACE_TICKS past the help rounds.
    grace_deadline = ctx.now + GRACE_TICKS

    def still_waiting() -> bool:
        if state.fallback_start == float("inf"):
            return ctx.now < grace_deadline
        return ctx.now < state.fallback_start

    while still_waiting():
        for envelope in _take_session(pool, WbaFallbackCert, session):
            fb = envelope.payload
            if not crypto.valid_fallback_cert(fb.certificate):
                continue
            if (
                state.decision == UNDECIDED
                and fb.proof is not None
                and validity.validate(fb.value)
                and crypto.valid_finalize_proof(fb.proof, fb.value, fb.proof_phase)
            ):
                state.bu_decision = fb.value  # lines 18-20
                state.bu_proof = fb.proof
            if state.fallback_start == float("inf"):
                # Lines 21-23: echo once, then start the safety window.
                # (The echo is the paper's synchronization device; it
                # can be ablated to measure what it buys — see
                # benchmarks/bench_ablation_fallback_sync.py.)
                if echo_fallback_certificate:
                    ctx.broadcast(
                        WbaFallbackCert(
                            session=session,
                            certificate=fb.certificate,
                            value=state.bu_decision
                            if state.bu_decision is not None
                            else state.decision,
                            proof=state.bu_proof,
                            proof_phase=state.decide_phase,
                        )
                    )
                state.fallback_start = ctx.now + 2
        if still_waiting():
            pool.extend((yield from ctx.sleep(1)))
        else:
            break

    if state.fallback_start == float("inf"):
        return  # no fallback in this run (the common, adaptive case)

    # Lines 24-29: the fallback itself, with round length 2*delta.
    if state.bu_decision is None:
        state.bu_decision = state.value
    fallback_value = yield from fallback_ba(
        ctx,
        state.bu_decision,
        session=f"{session}/afb",
        round_ticks=FALLBACK_ROUND_TICKS,
        pool=pool,
    )
    if state.decision == UNDECIDED:
        if validity.validate(fallback_value):
            state.decision = fallback_value  # line 27
        else:
            state.decision = BOTTOM  # line 29
        ctx.emit("wba_decided_by_fallback", value=repr(state.decision))


def weak_ba_protocol(
    ctx: ProcessContext,
    initial_value: object,
    validity: ValidityPredicate,
    *,
    session: str = "wba",
    num_phases: int | None = None,
    commit_quorum: int | None = None,
    pool: MessagePool | None = None,
    echo_fallback_certificate: bool = True,
) -> Generator[None, None, object]:
    """Algorithm 3: weak BA with unique validity for ``validate``.

    Parameters
    ----------
    initial_value:
        The process's proposal ``v_i``; correct processes must propose
        *valid* values (the weak-BA precondition, Section 3).
    validity:
        The unique-validity predicate.
    num_phases:
        Number of rotating-leader phases; ``None`` means ``n`` (the
        prose/Lemma 6 reading — DESIGN.md fidelity note 1).  Pass
        ``config.t + 1`` for the pseudocode-literal variant.
    commit_quorum:
        Override for the ``⌈(n+t+1)/2⌉`` quorum — **ablation use only**
        (``benchmarks/bench_ablation_quorum.py``); the default is the
        paper's safe choice.
    pool:
        The caller's message pool, when weak BA runs as a sub-protocol
        (BB passes its own) — a message delivered one scheduling beat
        early on a real transport must not be stranded in the outer
        protocol's pool.
    """
    with ctx.scope("weak_ba"):
        config = ctx.config
        phases = num_phases if num_phases is not None else config.n
        crypto = _Crypto(ctx, session, commit_quorum)
        state = _State(value=initial_value, bu_decision=initial_value)
        if pool is None:
            pool = MessagePool()

        for phase in range(1, phases + 1):
            yield from _invoke_phase(ctx, pool, crypto, state, phase, validity)

        yield from _help_and_fallback(
            ctx,
            pool,
            crypto,
            state,
            validity,
            session,
            echo_fallback_certificate=echo_fallback_certificate,
        )

        decision = state.decision if state.decision != UNDECIDED else BOTTOM
        ctx.emit("decided", value=repr(decision), session=session)
        return decision


def run_weak_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, Any],
    validity_factory,
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver for weak BA over the simulator.

    ``validity_factory(suite, config)`` builds the shared predicate (it
    usually needs the deployment's crypto suite); ``inputs`` maps every
    correct pid to its (valid) proposal.
    """
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    validity = validity_factory(simulation.suite, config)
    if params.recovery is not None:
        params.recovery.describe(
            protocol="weak_ba", num_phases=params.num_phases
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            if params.recovery is not None:
                params.recovery.describe_process(pid, input=value)
            simulation.add_process(
                pid,
                lambda ctx, v=value: weak_ba_protocol(
                    ctx, v, validity, num_phases=params.num_phases
                ),
            )
    return simulation.run()
