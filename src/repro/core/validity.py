"""Validity predicates — the paper's *unique validity* machinery.

Definition 3 (weak BA) is parameterized by an arbitrary locally
computable predicate ``validate(v)``.  This module provides the
predicate interface plus the instances the paper discusses:

* :class:`BroadcastValidity` — the ``BB_valid`` predicate of Section 5:
  a value is valid iff it is **signed by the designated sender** or
  carries an **idk certificate signed by t+1 processes**;
* :class:`SignedInputsValidity` — Section 3's example: valid iff signed
  by ``t+1`` processes *stating it was their initial value* (this makes
  unique validity collapse to strong unanimity on the signed values);
* :class:`ExternalValidity` — wraps any user-supplied callable, giving
  plain external validity [5].

Predicates must be safe to evaluate on arbitrary adversary-supplied
objects: they return ``False`` for garbage rather than raising.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.config import ProcessId, SystemConfig
from repro.core.values import BOTTOM
from repro.crypto.certificates import CryptoSuite, QuorumCertificate
from repro.crypto.signatures import SignedValue

IDK_LABEL = "idk"
"""Certificate label for Algorithm 2's ``QC_idk`` (t+1 idk messages)."""

INPUT_LABEL = "my_input"
"""Certificate label for :class:`SignedInputsValidity` statements."""


class ValidityPredicate(ABC):
    """A locally computable ``validate(v) -> bool`` (Definition 3)."""

    @abstractmethod
    def validate(self, value: object) -> bool:
        """Whether ``value`` is valid.  Must not raise on garbage."""

    def __call__(self, value: object) -> bool:
        return self.validate(value)


class BroadcastValidity(ValidityPredicate):
    """``BB_valid`` (Section 5): sender-signed, or a t+1 idk certificate.

    *"BB_valid(v) = true if and only if v is signed by either the sender
    or by t + 1 processes."*  The only way t+1 processes sign in the BB
    protocol is the idk quorum certificate of Algorithm 2 line 26.
    """

    def __init__(
        self, suite: CryptoSuite, config: SystemConfig, sender: ProcessId
    ) -> None:
        self._suite = suite
        self._config = config
        self._sender = sender

    @property
    def sender(self) -> ProcessId:
        return self._sender

    def validate(self, value: object) -> bool:
        if isinstance(value, SignedValue):
            return value.signer == self._sender and value.verify(
                self._suite.registry
            )
        if isinstance(value, QuorumCertificate):
            return self._suite.verify_certificate(
                value, IDK_LABEL, self._config.small_quorum
            )
        return False


class SignedInputsValidity(ValidityPredicate):
    """Valid iff ``t+1`` processes certified "this was my initial value".

    With this predicate, unique validity yields strong unanimity on the
    underlying values (Section 3): if all correct processes propose the
    same ``v``, no other value can gather ``t+1`` input statements.
    """

    def __init__(self, suite: CryptoSuite, config: SystemConfig) -> None:
        self._suite = suite
        self._config = config

    def validate(self, value: object) -> bool:
        if not isinstance(value, QuorumCertificate):
            return False
        if value.label != INPUT_LABEL:
            return False
        return self._suite.verify_certificate(
            value, INPUT_LABEL, self._config.small_quorum
        )


class ExternalValidity(ValidityPredicate):
    """External validity [5]: any user-supplied local predicate."""

    def __init__(self, predicate: Callable[[object], bool]) -> None:
        self._predicate = predicate

    def validate(self, value: object) -> bool:
        try:
            return bool(self._predicate(value))
        except Exception:
            return False


class AlwaysValid(ValidityPredicate):
    """Trivial predicate (every value valid) — tests and examples."""

    def validate(self, value: object) -> bool:
        return value is not None and value != BOTTOM
