"""Distinguished values of the agreement protocols.

The paper uses two distinct "empty" notions that its pseudocode
occasionally conflates (see DESIGN.md fidelity note 2):

* :data:`BOTTOM` — the *decidable* default value ``⊥``.  Weak BA may
  legitimately output it (Definition 3: if ``⊥`` is decided, more than
  one valid value exists in the run), and BB outputs it when the sender
  is Byzantine and no sender-signed value won.
* :data:`UNDECIDED` — the *local* "no decision yet" marker of
  Algorithm 3.  It is never a protocol output.

Both are singletons with value semantics so they survive equality
checks across process boundaries and canonical encoding.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Bottom:
    """The decidable default value ``⊥``."""

    def words(self) -> int:
        return 1

    def __repr__(self) -> str:
        return "⊥"


@dataclass(frozen=True)
class Undecided:
    """Local sentinel: this process has not yet decided (Alg. 3 init)."""

    def __repr__(self) -> str:
        return "<undecided>"


BOTTOM = Bottom()
UNDECIDED = Undecided()
