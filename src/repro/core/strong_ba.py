"""Strong binary BA, linear in the failure-free case — Algorithm 5.

Section 7: optimal resilience ``n = 2t + 1``, binary values, ``O(n)``
words when ``f = 0`` and ``O(n^2)`` otherwise.

Failure-free fast path (4 leader rounds, Lemma 8):

1. everyone sends its signed input to the fixed leader ``p_0``;
2. since values are binary, some value has ``t + 1`` signatures — the
   leader batches them into ``QC_propose(v)`` and broadcasts it;
3. everyone answers with a ``decide`` share;
4. the leader batches **all n** of them into ``QC_decide(v)`` and
   broadcasts; whoever receives it decides.

A process that does not decide broadcasts a ``fallback`` message;
fallback messages are echoed at most once, decisions (with their
``n``-of-``n`` proofs) are adopted during the ``2δ`` safety window, and
``Afallback`` runs with ``δ' = 2δ`` — exactly the machinery of
Section 6 (Lemmas 25-29 mirror Lemmas 17-19).

Agreement with only ``t+1``-quorum proposals is safe here because the
*decide* certificate requires all ``n`` signatures: correct processes
sign at most one decide message, so at most one ``QC_decide`` can ever
exist (Lemma 26), and its value is carried into the fallback by every
correct process (strong unanimity does the rest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.values import BOTTOM
from repro.crypto.certificates import CertificateCollector, QuorumCertificate
from repro.crypto.threshold import PartialSignature
from repro.errors import ConfigurationError
from repro.fallback.recursive_ba import FALLBACK_ROUND_TICKS, fallback_ba
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

GRACE_TICKS = 3
"""Post-fast-path listening window (same rationale as weak BA's)."""

BINARY_VALUES = (0, 1)


def propose_label(session: str) -> str:
    return f"sba-prop:{session}"


def decide_label(session: str) -> str:
    return f"sba-dec:{session}"


# ----------------------------------------------------------------------
# Wire payloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SbaInput:
    """Line 2: ``⟨v_i⟩_{p_i}`` — a share toward ``QC_propose(v_i)``."""

    session: str
    value: int
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class SbaPropose:
    """Line 6: the leader's ``t+1``-signed proposal certificate."""

    session: str
    value: int
    proof: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class SbaDecideShare:
    """Line 8: ``⟨decide, v⟩_{p_i}`` — a share toward ``QC_decide(v)``."""

    session: str
    value: int
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class SbaDecideCert:
    """Line 12: the ``n``-of-``n`` decide certificate."""

    session: str
    value: int
    proof: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures()


@dataclass(frozen=True)
class SbaFallback:
    """Lines 17/26: ``⟨fallback, v, proof⟩`` (``v``/``proof`` optional)."""

    session: str
    value: object
    proof: QuorumCertificate | None

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.proof.signatures() if self.proof is not None else 1


def _take_session(
    pool: MessagePool, payload_type: type, session: str
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session,
    )


def strong_ba_protocol(
    ctx: ProcessContext,
    initial_value: int,
    *,
    session: str = "sba",
    leader: ProcessId = 0,
) -> Generator[None, None, object]:
    """Algorithm 5: binary strong BA; returns the decision (0 or 1)."""
    if initial_value not in BINARY_VALUES:
        raise ConfigurationError(
            f"strong BA is binary; got initial value {initial_value!r}"
        )
    with ctx.scope("strong_ba"):
        config = ctx.config
        suite = ctx.suite
        pool = MessagePool()
        is_leader = ctx.pid == leader

        decision: object = None
        proof: QuorumCertificate | None = None

        def propose_statement(v: int) -> tuple:
            return ("propose", v)

        def decide_statement(v: int) -> tuple:
            return ("decide", v)

        def valid_decide_cert(candidate: object, v: object) -> bool:
            try:
                return (
                    isinstance(candidate, QuorumCertificate)
                    and v in BINARY_VALUES
                    and candidate.payload == decide_statement(v)
                    and suite.verify_certificate(
                        candidate, decide_label(session), config.full_quorum
                    )
                )
            except Exception:
                return False

        # Round 1 (line 2): send the signed input to the leader.
        ctx.send(
            leader,
            SbaInput(
                session=session,
                value=initial_value,
                partial=suite.partial_for_certificate(
                    ctx.pid,
                    propose_label(session),
                    config.small_quorum,
                    propose_statement(initial_value),
                ),
            ),
        )
        pool.extend((yield from ctx.sleep(1)))

        # Round 2 (lines 3-6): the leader proposes a t+1-backed value.
        if is_leader:
            collectors = {
                v: CertificateCollector(
                    suite,
                    propose_label(session),
                    config.small_quorum,
                    propose_statement(v),
                )
                for v in BINARY_VALUES
            }
            for envelope in _take_session(pool, SbaInput, session):
                message = envelope.payload
                if message.value in collectors:
                    collectors[message.value].add(message.partial)
            for v in BINARY_VALUES:
                if collectors[v].complete:
                    ctx.broadcast(
                        SbaPropose(
                            session=session,
                            value=v,
                            proof=collectors[v].certificate(),
                        )
                    )
                    break
        pool.extend((yield from ctx.sleep(1)))

        # Round 3 (lines 7-8): answer a valid proposal with a decide share.
        for envelope in _take_session(pool, SbaPropose, session):
            if envelope.sender != leader:
                continue
            message = envelope.payload
            try:
                ok = message.value in BINARY_VALUES and suite.verify_certificate(
                    message.proof, propose_label(session), config.small_quorum
                ) and message.proof.payload == propose_statement(message.value)
            except Exception:
                ok = False
            if ok:
                ctx.send(
                    leader,
                    SbaDecideShare(
                        session=session,
                        value=message.value,
                        partial=suite.partial_for_certificate(
                            ctx.pid,
                            decide_label(session),
                            config.full_quorum,
                            decide_statement(message.value),
                        ),
                    ),
                )
                break  # correct processes sign one decide message
        pool.extend((yield from ctx.sleep(1)))

        # Round 4 (lines 9-12): the leader publishes the n-of-n decision.
        if is_leader:
            collectors = {
                v: CertificateCollector(
                    suite,
                    decide_label(session),
                    config.full_quorum,
                    decide_statement(v),
                )
                for v in BINARY_VALUES
            }
            for envelope in _take_session(pool, SbaDecideShare, session):
                message = envelope.payload
                if message.value in collectors:
                    collectors[message.value].add(message.partial)
            for v in BINARY_VALUES:
                if collectors[v].complete:
                    ctx.broadcast(
                        SbaDecideCert(
                            session=session,
                            value=v,
                            proof=collectors[v].certificate(),
                        )
                    )
                    break
        pool.extend((yield from ctx.sleep(1)))

        # Round 5 (lines 13-18): decide, or raise the fallback alarm.
        fallback_start = float("inf")
        for envelope in _take_session(pool, SbaDecideCert, session):
            message = envelope.payload
            if valid_decide_cert(message.proof, message.value):
                decision = message.value
                proof = message.proof
                ctx.emit("sba_decided_fast", value=message.value)
                break
        if decision is None:
            ctx.broadcast(SbaFallback(session=session, value=None, proof=None))
            fallback_start = ctx.now + 2  # line 18

        # Lines 19-27: safety window — adopt proven decisions, echo once.
        bu_decision: object = decision if decision is not None else initial_value
        bu_proof: QuorumCertificate | None = proof
        grace_deadline = ctx.now + GRACE_TICKS
        echoed = fallback_start != float("inf")

        def still_waiting() -> bool:
            if fallback_start == float("inf"):
                return ctx.now < grace_deadline
            return ctx.now < fallback_start

        while still_waiting():
            pool.extend((yield from ctx.sleep(1)))
            for envelope in _take_session(pool, SbaFallback, session):
                message = envelope.payload
                if decision is None and valid_decide_cert(
                    message.proof, message.value
                ):
                    bu_decision = message.value  # lines 22-24
                    bu_proof = message.proof
                if not echoed:
                    # Lines 25-27: echo at most once.
                    ctx.broadcast(
                        SbaFallback(
                            session=session, value=bu_decision, proof=bu_proof
                        )
                    )
                    echoed = True
                    fallback_start = ctx.now + 2

        if fallback_start == float("inf"):
            ctx.emit("decided", value=repr(decision), session=session)
            return decision  # failure-free path: no fallback ever raised

        # Line 28: the quadratic fallback with delta' = 2*delta.
        fallback_value = yield from fallback_ba(
            ctx,
            bu_decision,
            session=f"{session}/afb",
            round_ticks=FALLBACK_ROUND_TICKS,
            pool=pool,
        )
        if decision is None:
            decision = (
                fallback_value if fallback_value in BINARY_VALUES else BOTTOM
            )
        ctx.emit("decided", value=repr(decision), session=session)
        return decision


def run_strong_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, int],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver: run Algorithm 5 over the simulator."""
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(protocol="strong_ba")
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            if params.recovery is not None:
                params.recovery.describe_process(pid, input=value)
            simulation.add_process(
                pid,
                lambda ctx, v=value: strong_ba_protocol(ctx, v),
            )
    return simulation.run()
