"""Strong-unanimity BA from weak BA — Section 3's observation, realized.

**Extension beyond the paper's algorithms** (clearly marked as such):
the paper notes that instantiating weak BA's unique validity with the
predicate *"v is signed by at least t+1 processes stating that this
value was their initial value"* makes unique validity *"yield exactly
the common strong unanimity property on the underlying signed values"*
(Section 3).  This module turns that remark into a protocol:

1. **Certificate phases** (rotating leaders, silent-phase discipline
   exactly like Algorithm 2): a leader that holds no input certificate
   asks for help; every process answers with its threshold share on
   ``("input", v_i)``; the leader combines any value's ``t+1`` shares
   into an input certificate and broadcasts it.
2. **Weak BA** (Algorithm 3, unmodified) under
   :class:`~repro.core.validity.SignedInputsValidity`, proposing the
   certificate.
3. The decision is the certified underlying value, or ``⊥``.

Guarantees (Definition 2): agreement and termination from weak BA;
**strong unanimity** because when all correct processes propose the
same ``v``, (a) the first correct leader's phase yields a certificate
for ``v`` (``n - f >= t + 1`` matching shares), and (b) no other value
can ever be certified (it would need a share from a correct process),
so ``v``'s certificate is the run's *only* valid value and unique
validity forces it.

Complexity: ``O(n(f+1))`` words in unanimous runs (the certificate
phases obey the silent-phase argument; the weak BA is adaptive).  In
*non-unanimous* runs no certificate may be combinable, every correct
leader probes, and the cost degrades to ``O(n^2)`` — matching the
fallback regime, never worse.  The decision may then be ``⊥``, which
Definition 2 permits (strong unanimity only constrains unanimous
runs); the paper's open question — fully adaptive strong BA with a
*non-trivial* outcome in every run — remains open, and this module
does not claim to close it (Elsheimy et al. [11] later did).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.validity import INPUT_LABEL, SignedInputsValidity
from repro.core.values import BOTTOM
from repro.core.weak_ba import weak_ba_protocol
from repro.crypto.certificates import CertificateCollector, QuorumCertificate
from repro.crypto.threshold import PartialSignature
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

CERT_PHASE_ROUNDS = 3
"""Ticks per certificate phase: request, shares, leader broadcast."""


def input_statement(session: str, value: object) -> tuple:
    return ("input", value)


@dataclass(frozen=True)
class SbaCertRequest:
    """A certificate-less leader asks for input shares."""

    session: str
    phase: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the leader signs its request


@dataclass(frozen=True)
class SbaInputShare:
    """A process's share on its own input statement (plus the value)."""

    session: str
    phase: int
    value: object
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class SbaInputCert:
    """A combined input certificate: ``t+1`` processes claimed ``value``."""

    session: str
    phase: int
    value: object
    certificate: QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.certificate.signatures()


def _take_phase(
    pool: MessagePool, payload_type: type, session: str, phase: int
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session
        and getattr(e.payload, "phase", None) == phase,
    )


def adaptive_strong_ba_protocol(
    ctx: ProcessContext,
    initial_value: object,
    *,
    session: str = "asba",
    num_phases: int | None = None,
) -> Generator[None, None, object]:
    """Run the extension protocol; returns the decision (a value or ⊥)."""
    with ctx.scope("adaptive_strong_ba"):
        config = ctx.config
        suite = ctx.suite
        phases = num_phases if num_phases is not None else config.n
        validity = SignedInputsValidity(suite, config)
        pool = MessagePool()
        quorum = config.small_quorum
        certificate: QuorumCertificate | None = None

        def valid_input_cert(payload: object) -> bool:
            try:
                return (
                    isinstance(payload, SbaInputCert)
                    and suite.verify_certificate(
                        payload.certificate, INPUT_LABEL, quorum
                    )
                    and payload.certificate.payload
                    == input_statement(session, payload.value)
                )
            except Exception:
                return False

        for phase in range(1, phases + 1):
            leader = config.leader_of_phase(phase)
            is_leader = ctx.pid == leader

            # Round 1: a certificate-less leader asks for input shares.
            if is_leader and certificate is None:
                ctx.emit("asba_phase_non_silent", phase=phase, leader=leader)
                ctx.broadcast(SbaCertRequest(session=session, phase=phase))
            pool.extend((yield from ctx.sleep(1)))

            # Round 2: everyone answers with its own input share.
            requests = [
                e
                for e in _take_phase(pool, SbaCertRequest, session, phase)
                if e.sender == leader
            ]
            if requests:
                partial = suite.partial_for_certificate(
                    ctx.pid,
                    INPUT_LABEL,
                    quorum,
                    input_statement(session, initial_value),
                )
                ctx.send(
                    leader,
                    SbaInputShare(
                        session=session,
                        phase=phase,
                        value=initial_value,
                        partial=partial,
                    ),
                )
            pool.extend((yield from ctx.sleep(1)))

            # Round 3: the leader combines and broadcasts a certificate.
            if is_leader and certificate is None:
                collectors: dict[object, CertificateCollector] = {}
                for envelope in _take_phase(
                    pool, SbaInputShare, session, phase
                ):
                    share = envelope.payload
                    try:
                        collector = collectors.get(share.value)
                        if collector is None:
                            collector = CertificateCollector(
                                suite,
                                INPUT_LABEL,
                                quorum,
                                input_statement(session, share.value),
                            )
                            collectors[share.value] = collector
                        collector.add(share.partial)
                    except Exception:
                        continue
                for share_value, collector in collectors.items():
                    if collector.complete:
                        ctx.broadcast(
                            SbaInputCert(
                                session=session,
                                phase=phase,
                                value=share_value,
                                certificate=collector.certificate(),
                            )
                        )
                        break
            pool.extend((yield from ctx.sleep(1)))

            # Adopt any valid certificate seen (delivered next tick; the
            # shared pool catches it in the following phase too).
            if certificate is None:
                for envelope in pool.take_payloads(
                    SbaInputCert,
                    lambda e: getattr(e.payload, "session", None) == session,
                ):
                    if valid_input_cert(envelope.payload):
                        certificate = envelope.payload.certificate
                        ctx.emit("asba_certified", phase=phase)
                        break

        # Weak BA over the certificates (Algorithm 3, unmodified).
        ba_decision = yield from weak_ba_protocol(
            ctx,
            certificate,
            validity,
            session=f"{session}/wba",
            num_phases=phases,
            pool=pool,
        )

        if (
            isinstance(ba_decision, QuorumCertificate)
            and validity.validate(ba_decision)
            and isinstance(ba_decision.payload, tuple)
            and len(ba_decision.payload) == 2
        ):
            decision = ba_decision.payload[1]
        else:
            decision = BOTTOM
        ctx.emit("decided", value=repr(decision), session=session)
        return decision


def run_adaptive_strong_ba(
    config: SystemConfig,
    inputs: dict[ProcessId, Any],
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver for the extension protocol."""
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(
            protocol="adaptive_strong_ba", num_phases=params.num_phases
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            value = inputs[pid]
            if params.recovery is not None:
                params.recovery.describe_process(pid, input=value)
            simulation.add_process(
                pid,
                lambda ctx, v=value: adaptive_strong_ba_protocol(
                    ctx, v, num_phases=params.num_phases
                ),
            )
    return simulation.run()
