"""The paper's protocols: adaptive BB, adaptive weak BA, fast strong BA."""

from repro.core.values import BOTTOM, UNDECIDED, Bottom, Undecided
from repro.core.validity import (
    AlwaysValid,
    BroadcastValidity,
    ExternalValidity,
    SignedInputsValidity,
    ValidityPredicate,
)
from repro.core.adaptive_strong_ba import (
    adaptive_strong_ba_protocol,
    run_adaptive_strong_ba,
)
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import run_strong_ba, strong_ba_protocol
from repro.core.weak_ba import run_weak_ba, weak_ba_protocol

__all__ = [
    "BOTTOM",
    "UNDECIDED",
    "Bottom",
    "Undecided",
    "ValidityPredicate",
    "AlwaysValid",
    "BroadcastValidity",
    "ExternalValidity",
    "SignedInputsValidity",
    "byzantine_broadcast_protocol",
    "run_byzantine_broadcast",
    "weak_ba_protocol",
    "run_weak_ba",
    "strong_ba_protocol",
    "run_strong_ba",
    "adaptive_strong_ba_protocol",
    "run_adaptive_strong_ba",
]
