"""Adaptive Byzantine Broadcast — the paper's Algorithms 1 and 2.

``O(n(f+1))`` words, resilience ``n = 2t + 1``, built by reduction to
weak BA (Section 5):

1. **Dissemination** (Alg. 1 lines 1-4): the designated sender signs its
   value and broadcasts; receivers adopt ``⟨v⟩_sender`` as their weak-BA
   input.
2. **Vetting** (Alg. 1 lines 5-8, Alg. 2): ``num_phases``
   rotating-leader phases.  A leader *without* an input broadcasts a
   ``help_req``; processes answer with their sender-signed value or a
   signed ``idk``; the leader relays the sender-signed value, or an
   ``idk`` certificate batched from ``t + 1`` idk signatures.  After the
   first non-silent phase with a correct leader every correct process
   holds a valid input, so later correct leaders stay silent — the
   number of non-silent phases is ``O(f + 1)`` (Section 5.1).
3. **Agreement** (lines 9-13): weak BA under ``BB_valid`` (a value is
   valid iff sender-signed or ``t+1``-signed).  A sender-signed decision
   maps to the sender's raw value; anything else (the idk certificate)
   maps to ``⊥``.

Why the predicate works (Section 5): if the sender is *correct*, no
correct process ever says ``idk`` (everyone holds ``⟨v⟩_sender`` by the
first round), so no ``t+1``-signed value can exist (Lemma 10) and the
only valid value — hence the only possible weak-BA output — is the
sender's.  If the sender is Byzantine, every correct process still
enters the weak BA with *some* valid value (Lemma 11), so agreement on
a common output is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.config import ProcessId, RunParameters, SystemConfig
from repro.core.validity import IDK_LABEL, BroadcastValidity
from repro.core.values import BOTTOM
from repro.core.weak_ba import weak_ba_protocol
from repro.crypto.certificates import CertificateCollector, QuorumCertificate
from repro.crypto.signatures import SignedValue, sign_value
from repro.crypto.threshold import PartialSignature
from repro.runtime.context import ProcessContext
from repro.runtime.envelope import Envelope
from repro.runtime.pool import MessagePool

BB_PHASE_ROUNDS = 3
"""Ticks per vetting phase: help_req, replies, leader relay.  The
relayed value is delivered on the next phase's first tick and consumed
from the message pool there."""


def idk_statement(session: str) -> str:
    """The statement ``t+1`` processes threshold-sign to certify "no
    correct process holds the sender's value was withheld from us"."""
    return f"idk:{session}"


# ----------------------------------------------------------------------
# Wire payloads
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BbSenderValue:
    """Round 1 (Alg. 1 line 2): the sender-signed value ``⟨v⟩_sender``."""

    session: str
    signed: SignedValue

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.signed.signatures()


@dataclass(frozen=True)
class BbHelpReq:
    """Alg. 2 line 16: a valueless leader asks for help."""

    session: str
    phase: int

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return 1  # the leader signs its request


@dataclass(frozen=True)
class BbValueReply:
    """Alg. 2 line 19: ``⟨v_i, j⟩`` — the responder's current input."""

    session: str
    phase: int
    value: object  # SignedValue or idk QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        if isinstance(self.value, QuorumCertificate):
            return self.value.signatures()
        return 1


@dataclass(frozen=True)
class BbIdkReply:
    """Alg. 2 line 21: a signed ``idk`` (a share of ``QC_idk``)."""

    session: str
    phase: int
    partial: PartialSignature

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        return self.partial.signatures()


@dataclass(frozen=True)
class BbPhaseResult:
    """Alg. 2 lines 24/27: the leader's relayed value or idk certificate."""

    session: str
    phase: int
    value: object  # SignedValue or idk QuorumCertificate

    def words(self) -> int:
        return 1

    def signatures(self) -> int:
        if isinstance(self.value, QuorumCertificate):
            return self.value.signatures()
        return 1


def _take_phase(
    pool: MessagePool, payload_type: type, session: str, phase: int
) -> list[Envelope]:
    return pool.take_payloads(
        payload_type,
        lambda e: getattr(e.payload, "session", None) == session
        and getattr(e.payload, "phase", None) == phase,
    )


def _vetting_phase(
    ctx: ProcessContext,
    pool: MessagePool,
    session: str,
    phase: int,
    current_value: object,
    validity: BroadcastValidity,
) -> Generator[None, None, object]:
    """Algorithm 2 (``invokePhase``): returns a valid value or ``None``.

    ``None`` plays the role of the pseudocode's ``⊥`` return (line 31):
    the caller keeps its previous input.
    """
    config = ctx.config
    leader = config.leader_of_phase(phase)
    is_leader = ctx.pid == leader

    # Round 1 (lines 15-16): a leader with no input asks for help.
    if is_leader and current_value is None:
        ctx.emit("bb_phase_non_silent", phase=phase, leader=leader)
        ctx.broadcast(BbHelpReq(session=session, phase=phase))
    pool.extend((yield from ctx.sleep(1)))

    # Round 2 (lines 17-21): answer the leader.
    help_reqs = [
        e
        for e in _take_phase(pool, BbHelpReq, session, phase)
        if e.sender == leader
    ]
    if help_reqs:
        if current_value is not None:
            ctx.send(
                leader,
                BbValueReply(session=session, phase=phase, value=current_value),
            )
        else:
            partial = ctx.suite.partial_for_certificate(
                ctx.pid,
                IDK_LABEL,
                config.small_quorum,
                idk_statement(session),
            )
            ctx.send(
                leader, BbIdkReply(session=session, phase=phase, partial=partial)
            )
    pool.extend((yield from ctx.sleep(1)))

    # Round 3 (lines 22-27): the leader relays a valid value, or batches
    # t+1 idk signatures into QC_idk.
    if is_leader and current_value is None:
        relayed = None
        for envelope in _take_phase(pool, BbValueReply, session, phase):
            reply = envelope.payload
            if validity.validate(reply.value):
                relayed = reply.value
                if (
                    isinstance(reply.value, SignedValue)
                    and reply.value.signer == validity.sender
                ):
                    break  # prefer a sender-signed value (line 23)
        if relayed is not None:
            ctx.broadcast(BbPhaseResult(session=session, phase=phase, value=relayed))
        else:
            collector = CertificateCollector(
                ctx.suite,
                IDK_LABEL,
                config.small_quorum,
                idk_statement(session),
            )
            for envelope in _take_phase(pool, BbIdkReply, session, phase):
                try:
                    collector.add(envelope.payload.partial)
                except Exception:
                    continue
            if collector.complete:
                ctx.broadcast(
                    BbPhaseResult(
                        session=session, phase=phase, value=collector.certificate()
                    )
                )
    pool.extend((yield from ctx.sleep(1)))

    # Round 4 (lines 28-31): accept the leader's value if BB_valid.
    for envelope in _take_phase(pool, BbPhaseResult, session, phase):
        if envelope.sender != leader:
            continue
        if validity.validate(envelope.payload.value):
            return envelope.payload.value
        break
    return None


def byzantine_broadcast_protocol(
    ctx: ProcessContext,
    sender: ProcessId,
    value: object = None,
    *,
    session: str = "bb",
    num_phases: int | None = None,
    pool: MessagePool | None = None,
) -> Generator[None, None, object]:
    """Algorithm 1: adaptive BB; ``value`` is used only by the sender.

    Returns the broadcast decision: the sender's raw value, or ``⊥``
    (only possible when the sender is Byzantine).  ``pool`` lets a
    caller (e.g. the SMR app, chaining BB instances) share one message
    pool across instances so early-delivered messages are never
    stranded.
    """
    with ctx.scope("bb"):
        config = ctx.config
        phases = num_phases if num_phases is not None else config.n
        validity = BroadcastValidity(ctx.suite, config, sender)
        if pool is None:
            pool = MessagePool()

        # Round 1 (lines 1-4): dissemination.
        if ctx.pid == sender:
            ctx.broadcast(
                BbSenderValue(session=session, signed=sign_value(ctx.signer, value))
            )
        pool.extend((yield from ctx.sleep(1)))

        current_value: object = None
        for envelope in pool.take_payloads(
            BbSenderValue,
            lambda e: e.payload.session == session and e.sender == sender,
        ):
            signed = envelope.payload.signed
            if validity.validate(signed):
                current_value = signed  # line 4: v_i <- ⟨v⟩_sender
                break

        # Lines 5-8: the vetting phases.
        for phase in range(1, phases + 1):
            returned = yield from _vetting_phase(
                ctx, pool, session, phase, current_value, validity
            )
            if returned is not None:
                current_value = returned  # line 8

        # Line 9: the weak BA under BB_valid.
        ba_decision = yield from weak_ba_protocol(
            ctx,
            current_value,
            validity,
            session=f"{session}/wba",
            num_phases=phases,
            pool=pool,
        )

        # Lines 10-13: map the weak-BA output to the BB decision.
        if (
            isinstance(ba_decision, SignedValue)
            and ba_decision.signer == sender
            and ba_decision.verify(ctx.suite.registry)
        ):
            decision = ba_decision.payload
        else:
            decision = BOTTOM
        ctx.emit("decided", value=repr(decision), session=session)
        return decision


def run_byzantine_broadcast(
    config: SystemConfig,
    sender: ProcessId,
    value: object,
    *,
    seed: int = 0,
    byzantine: dict[ProcessId, Any] | None = None,
    params: RunParameters | None = None,
):
    """Standalone driver: run adaptive BB over the simulator."""
    from repro.runtime.scheduler import Simulation

    byzantine = byzantine or {}
    params = params or RunParameters()
    simulation = Simulation(
        config, seed=seed, max_ticks=params.max_ticks,
        fault_plan=params.fault_plan, observer=params.observer,
        recovery=params.recovery,
        synchrony=params.synchrony,
    )
    if params.recovery is not None:
        params.recovery.describe(
            protocol="bb", sender=sender, input=value,
            num_phases=params.num_phases,
        )
    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            simulation.add_process(
                pid,
                lambda ctx: byzantine_broadcast_protocol(
                    ctx, sender, value, num_phases=params.num_phases
                ),
            )
    return simulation.run()
