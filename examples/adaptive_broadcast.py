#!/usr/bin/env python3
"""The headline result, visually: communication adapts to real failures.

Sweeps the actual failure count f for a fixed deployment and plots the
word bill of adaptive BB next to the classical Dolev–Strong baseline.
The three regimes of the paper are visible in one chart:

* f = 0 ........... linear in n, ~2 orders below the baseline,
* 0 < f < (n-t-1)/2 gentle linear growth in f (silent phases at work),
* f >= (n-t-1)/2 ... the quadratic fallback engages — still at or
                     below the baseline's worst case.

Run:  python examples/adaptive_broadcast.py
"""

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import BbVettingHelpSpammer
from repro.analysis.tables import ascii_series_plot, format_table
from repro.config import SystemConfig
from repro.core import run_byzantine_broadcast
from repro.fallback.dolev_strong import run_dolev_strong


def words_for(config, f, spam=True, seed=0):
    byzantine = {}
    for pid in range(1, f + 1):
        byzantine[pid] = BbVettingHelpSpammer() if spam else SilentBehavior()
    result = run_byzantine_broadcast(
        config, sender=0, value="v", byzantine=byzantine, seed=seed
    )
    assert result.unanimous_decision() == "v"
    return result


def main() -> None:
    n = 13
    config = SystemConfig.with_optimal_resilience(n)
    baseline = run_dolev_strong(config, sender=0, value="v").correct_words

    fs = list(range(config.t + 1))
    adaptive_words = []
    rows = []
    for f in fs:
        result = words_for(config, f)
        adaptive_words.append(result.correct_words)
        regime = (
            "failure-free" if f == 0
            else "adaptive" if not result.fallback_was_used()
            else "fallback"
        )
        rows.append([f, result.correct_words, baseline, regime])

    print(f"n={n}, t={config.t}; fallback threshold (n-t-1)/2 = "
          f"{config.fallback_failure_threshold}")
    print()
    print(format_table(
        ["f", "adaptive BB words", "Dolev-Strong words (f=0)", "regime"],
        rows,
    ))
    print()
    print(ascii_series_plot(
        fs,
        {"adaptive": adaptive_words,
         "baseline": [baseline] * len(fs)},
        title=f"words vs actual failures f (n={n})",
    ))

    threshold = config.fallback_failure_threshold
    cheap = [w for f, w in zip(fs, adaptive_words) if f < threshold]
    assert max(cheap) < baseline, "adaptive regime must beat the baseline"


if __name__ == "__main__":
    main()
