#!/usr/bin/env python3
"""The same protocols on a real asyncio transport.

The protocol implementations are transport-independent generators; here
they run as concurrent asyncio tasks exchanging messages through
latency-bearing queues with a wall-clock synchrony bound, instead of
the deterministic tick simulator.  Word bills match the simulator
exactly.

Run:  python examples/asyncio_cluster.py
"""

import asyncio

from repro.asyncnet import run_async
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import (
    byzantine_broadcast_protocol,
    run_byzantine_broadcast,
)
from repro.core.strong_ba import strong_ba_protocol


async def main() -> None:
    config = SystemConfig.with_optimal_resilience(5)
    tick = 0.02  # the synchrony bound delta, in wall-clock seconds

    print(f"cluster: n={config.n}, delta={tick * 1000:.0f} ms, "
          f"link latency={tick * 500:.0f} ms")

    result = await run_async(
        config,
        {
            pid: (lambda ctx: byzantine_broadcast_protocol(ctx, 0, "wire-value"))
            for pid in config.processes
        },
        tick_duration=tick,
        latency=tick / 2,
    )
    print(f"\nByzantine Broadcast over asyncio: "
          f"decided {result.unanimous_decision()!r} in "
          f"{result.elapsed:.2f}s, {result.correct_words} words")

    simulated = run_byzantine_broadcast(config, sender=0, value="wire-value")
    print(f"tick simulator, same run:          "
          f"decided {simulated.unanimous_decision()!r}, "
          f"{simulated.correct_words} words")
    assert result.correct_words == simulated.correct_words
    print("word bills identical — the transports are interchangeable")

    crashed = frozenset({3})
    result = await run_async(
        config,
        {
            pid: (lambda ctx: strong_ba_protocol(ctx, 1))
            for pid in config.processes
            if pid not in crashed
        },
        tick_duration=tick,
        crashed=crashed,
    )
    print(f"\nstrong BA with replica 3 down: decided "
          f"{result.unanimous_decision()!r} "
          f"({'fallback' if result.trace.any('fallback_started') else 'fast path'}, "
          f"{result.correct_words} words)")


if __name__ == "__main__":
    asyncio.run(main())
