#!/usr/bin/env python3
"""Unique validity as a design tool (the paper's Section 3 pitch).

Weak BA is parameterized by *any* locally computable predicate, and the
guarantee is: decisions are valid, and ``⊥`` appears only when several
valid values existed.  This example runs the same weak BA engine under
three different predicates to show the knob doing real work:

1. an **external allow-list** — only values from an application-defined
   set are decidable;
2. **signed-inputs** — a value counts only with t+1 processes certifying
   it as their input, which turns weak BA into strong-unanimity BA
   (`repro.core.adaptive_strong_ba` packages this);
3. an **authorization predicate** — a value must be signed by one of
   two authorized issuer processes: nobody else, not even t colluding
   Byzantine processes, can mint a decidable value.

Run:  python examples/unique_validity_playground.py
"""

from repro.adversary.behaviors import GarbageSpammer
from repro.config import SystemConfig
from repro.core import run_weak_ba
from repro.core.adaptive_strong_ba import run_adaptive_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM
from repro.crypto.signatures import SignedValue, sign_value

CONFIG = SystemConfig.with_optimal_resilience(7)


def scenario_allow_list() -> None:
    print("=== 1. external allow-list predicate ===")
    allowed = {"commit", "abort"}
    validity = lambda suite, cfg: ExternalValidity(lambda v: v in allowed)

    result = run_weak_ba(
        CONFIG, {p: "commit" for p in CONFIG.processes}, validity
    )
    print(f"  all propose 'commit'      -> {result.unanimous_decision()!r}")

    mixed = {p: ("commit" if p % 2 else "abort") for p in CONFIG.processes}
    result = run_weak_ba(CONFIG, mixed, validity, seed=1)
    decision = result.unanimous_decision()
    print(f"  split commit/abort        -> {decision!r} "
          f"({'a valid value won' if decision != BOTTOM else '⊥: several valid values existed — allowed by unique validity'})")


def scenario_signed_inputs() -> None:
    print("\n=== 2. signed-inputs predicate (strong unanimity) ===")
    result = run_adaptive_strong_ba(
        CONFIG, {p: "unanimous!" for p in CONFIG.processes}
    )
    print(f"  unanimous inputs          -> {result.unanimous_decision()!r} "
          f"({result.correct_words} words, adaptive)")

    result = run_adaptive_strong_ba(
        CONFIG, {p: f"plan-{p}" for p in CONFIG.processes}
    )
    print(f"  seven different inputs    -> {result.unanimous_decision()!r} "
          "(no value had t+1 backers; ⊥ is the honest answer)")


def scenario_authorized_issuers() -> None:
    print("\n=== 3. authorization predicate (issuer-signed values) ===")
    issuers = {0, 1}

    def validity_factory(suite, config):
        def authorized(value):
            return (
                isinstance(value, SignedValue)
                and value.signer in issuers
                and value.verify(suite.registry)
            )

        return ExternalValidity(authorized)

    # Build inputs: everyone proposes a token signed by issuer 0.  Three
    # Byzantine processes spam garbage; they cannot forge issuer keys.
    from repro.runtime.scheduler import Simulation
    from repro.core.weak_ba import weak_ba_protocol

    simulation = Simulation(CONFIG, seed=0)
    token = sign_value(simulation.suite.signer(0), ("grant", "alice", 42))
    validity = validity_factory(simulation.suite, CONFIG)
    byzantine_pids = (3, 5, 6)
    for pid in byzantine_pids:
        simulation.add_byzantine(pid, GarbageSpammer())
    for pid in CONFIG.processes:
        if pid in byzantine_pids:
            continue
        simulation.add_process(
            pid, lambda ctx: weak_ba_protocol(ctx, token, validity)
        )
    result = simulation.run()
    decision = result.unanimous_decision()
    print(f"  issuer-signed grant       -> {decision.payload!r} "
          f"(f={result.f} spammers could not mint a competing value)")
    assert decision == token


def main() -> None:
    scenario_allow_list()
    scenario_signed_inputs()
    scenario_authorized_issuers()


if __name__ == "__main__":
    main()
