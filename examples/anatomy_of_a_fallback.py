#!/usr/bin/env python3
"""Anatomy of a fallback: one degraded run, dissected tick by tick.

Runs weak BA with enough silent failures to block the ⌈(n+t+1)/2⌉
commit quorum, then uses the analysis toolkit to show the whole story:
the silent phases, the help round, the fallback certificate forming,
the quadratic recursion — and a verifier report plus a JSON export at
the end.

Run:  python examples/anatomy_of_a_fallback.py
"""

import tempfile
from pathlib import Path

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.export import save_run
from repro.analysis.flows import activity_timeline, silent_ticks, words_per_tick
from repro.config import SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.runtime.scheduler import Simulation
from repro.verify import quadratic_word_budget, verify_run


def main() -> None:
    config = SystemConfig.with_optimal_resilience(7)
    validity = ExternalValidity(lambda v: isinstance(v, str))
    failed = (1, 3, 5)  # f = t = 3 >= (n-t-1)/2: the fallback must engage

    print(f"n={config.n}, t={config.t}, silent failures: {failed}")
    print(f"commit quorum {config.commit_quorum} needs "
          f"{config.commit_quorum} of {config.n - len(failed)} live "
          "processes — unreachable, so no phase can finalize.\n")

    simulation = Simulation(config, seed=0, record_envelopes=True)
    for pid in failed:
        simulation.add_byzantine(pid, SilentBehavior())
    for pid in config.processes:
        if pid not in failed:
            simulation.add_process(
                pid, lambda ctx: weak_ba_protocol(ctx, "survive", validity)
            )
    result = simulation.run()

    print("timeline (words per tick, payload types, protocol events):")
    print(activity_timeline(result, width=32))

    quiet = len(silent_ticks(result))
    print(f"\n{quiet} of {result.ticks} ticks were completely silent "
          "(phases whose Byzantine leaders never spoke).")

    per_tick = words_per_tick(result.ledger)
    burst = max(per_tick, key=per_tick.get)
    print(f"the busiest tick was t={burst} with {per_tick[burst]} words — "
          "deep inside the quadratic fallback recursion.")

    print("\nper-layer bill:")
    for scope, words in sorted(result.ledger.words_by_scope().items()):
        print(f"  {scope:<20} {words:5d} words")

    decision = result.unanimous_decision()
    report = verify_run(
        result,
        expected_decision="survive",
        word_budget=quadratic_word_budget(),
        check_lemma6=True,
    )
    print(f"\ndecision: {decision!r}")
    print(f"verifier: {report.summary()}")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_run(result, Path(tmp) / "fallback_run.json")
        size = path.stat().st_size
        print(f"full run exported to JSON ({size:,} bytes) for offline "
              "analysis — see repro.analysis.export.load_run")

    assert report.ok
    assert result.fallback_was_used()


if __name__ == "__main__":
    main()
