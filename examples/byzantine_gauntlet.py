#!/usr/bin/env python3
"""The gauntlet: every protocol versus a roster of Byzantine attacks.

Runs adaptive BB, weak BA, and fast strong BA against silence, crash,
garbage spam, sender equivocation, teasing leaders, split-finalize
leaders, and chain-stretchers — and prints a scoreboard showing that
agreement and the protocol-specific validity property survive every
one of them.

Run:  python examples/byzantine_gauntlet.py
"""

from repro.adversary.behaviors import (
    EquivocatingSender,
    GarbageSpammer,
    SilentBehavior,
)
from repro.adversary.protocol_attacks import (
    WeakBaSplitFinalizeLeader,
    WeakBaTeasingLeader,
)
from repro.analysis.tables import format_table
from repro.config import SystemConfig
from repro.core import run_byzantine_broadcast, run_strong_ba, run_weak_ba
from repro.core.byzantine_broadcast import BbSenderValue
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM

CONFIG = SystemConfig.with_optimal_resilience(7)
STRING_VALIDITY = lambda suite, cfg: ExternalValidity(
    lambda v: isinstance(v, str)
)


def gauntlet() -> list[list[str]]:
    rows = []

    def record(protocol, attack, result, check):
        decision = result.unanimous_decision()  # raises on disagreement
        ok = check(decision)
        rows.append([
            protocol,
            attack,
            repr(decision),
            "fallback" if result.fallback_was_used() else "adaptive",
            f"{result.correct_words} w",
            "PASS" if ok else "FAIL",
        ])

    # --- adaptive BB -----------------------------------------------------
    record(
        "bb", "2 silent",
        run_byzantine_broadcast(
            CONFIG, 0, "v",
            byzantine={2: SilentBehavior(), 5: SilentBehavior()},
        ),
        lambda d: d == "v",
    )
    record(
        "bb", "3 garbage spammers",
        run_byzantine_broadcast(
            CONFIG, 0, "v",
            byzantine={p: GarbageSpammer() for p in (1, 4, 6)},
        ),
        lambda d: d == "v",
    )
    record(
        "bb", "equivocating sender",
        run_byzantine_broadcast(
            CONFIG, 0, None,
            byzantine={0: EquivocatingSender(
                "A", "B",
                make_payload=lambda s, api: BbSenderValue("bb", s),
            )},
        ),
        lambda d: d in ("A", "B", BOTTOM),
    )
    record(
        "bb", "silent sender",
        run_byzantine_broadcast(
            CONFIG, 0, None, byzantine={0: SilentBehavior()}
        ),
        lambda d: d == BOTTOM,
    )

    # --- weak BA ---------------------------------------------------------
    record(
        "weak_ba", "teasing leaders",
        run_weak_ba(
            CONFIG,
            {p: "v" for p in CONFIG.processes if p not in (1, 2)},
            STRING_VALIDITY,
            byzantine={p: WeakBaTeasingLeader(value="bait") for p in (1, 2)},
        ),
        lambda d: d == "v",
    )
    record(
        "weak_ba", "split finalize",
        run_weak_ba(
            CONFIG,
            {p: "v" for p in CONFIG.processes if p != 1},
            STRING_VALIDITY,
            byzantine={1: WeakBaSplitFinalizeLeader(
                value="v", recipients=frozenset({2, 4}),
            )},
        ),
        lambda d: d == "v",
    )
    record(
        "weak_ba", "f = t silence",
        run_weak_ba(
            CONFIG,
            {p: "v" for p in CONFIG.processes if p not in (1, 3, 5)},
            STRING_VALIDITY,
            byzantine={p: SilentBehavior() for p in (1, 3, 5)},
        ),
        lambda d: d == "v",
    )

    # --- strong BA -------------------------------------------------------
    record(
        "strong_ba", "silent leader",
        run_strong_ba(
            CONFIG,
            {p: 1 for p in CONFIG.processes if p != 0},
            byzantine={0: SilentBehavior()},
        ),
        lambda d: d == 1,  # strong unanimity
    )
    record(
        "strong_ba", "garbage + silence",
        run_strong_ba(
            CONFIG,
            {p: 0 for p in CONFIG.processes if p not in (2, 5)},
            byzantine={2: GarbageSpammer(), 5: SilentBehavior()},
        ),
        lambda d: d == 0,
    )
    return rows


def forensics_demo() -> None:
    """Bonus: catch an equivocator red-handed from the recorded traffic."""
    from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
    from repro.runtime.scheduler import Simulation
    from repro.verify.forensics import audit_envelopes

    simulation = Simulation(CONFIG, seed=0, record_envelopes=True)
    simulation.add_byzantine(
        0,
        EquivocatingSender(
            "A", "B", make_payload=lambda s, api: BbSenderValue("bb", s)
        ),
    )
    for pid in range(1, CONFIG.n):
        simulation.add_process(
            pid, lambda ctx: byzantine_broadcast_protocol(ctx, 0, None)
        )
    result = simulation.run()
    report = audit_envelopes(result)
    print("\nforensics on the equivocating-sender run:")
    print(report.summary())
    assert report.culprits == {0}


def main() -> None:
    rows = gauntlet()
    print(format_table(
        ["protocol", "attack", "decision", "path", "cost", "verdict"], rows
    ))
    failures = [r for r in rows if r[-1] != "PASS"]
    print(f"\n{len(rows)} attacks, {len(rows) - len(failures)} survived, "
          f"{len(failures)} failed")
    assert not failures
    forensics_demo()


if __name__ == "__main__":
    main()
