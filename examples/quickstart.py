#!/usr/bin/env python3
"""Quickstart: one adaptive Byzantine Broadcast, end to end.

Seven processes (n = 2t + 1 with t = 3), process 0 broadcasts a value,
everyone agrees on it — and the whole thing costs O(n) words because
nothing failed.  Run:

    python examples/quickstart.py
"""

from repro.config import SystemConfig
from repro.core import run_byzantine_broadcast


def main() -> None:
    # A deployment: n = 7 processes tolerating t = 3 Byzantine ones.
    config = SystemConfig.with_optimal_resilience(7)
    print(f"deployment: n={config.n}, t={config.t}, "
          f"commit quorum ⌈(n+t+1)/2⌉ = {config.commit_quorum}")

    # Process 0 broadcasts; the simulator runs all 7 processes.
    result = run_byzantine_broadcast(config, sender=0, value="hello, PODC")

    decision = result.unanimous_decision()
    print(f"\nall {len(result.correct_pids)} correct processes decided: "
          f"{decision!r}")

    # The paper's complexity measure: words sent by correct processes.
    print(f"communication bill: {result.correct_words} words "
          f"({result.ledger.correct_messages} messages, "
          f"{result.ledger.signature_count()} signatures inside)")
    print(f"fallback executed: {result.fallback_was_used()} "
          "(failure-free runs never need it)")
    print(f"simulated rounds: {result.ticks}")

    print("\nwho paid what, per protocol layer (Figure 1's nesting):")
    for scope, words in sorted(result.ledger.words_by_scope().items()):
        print(f"  {scope:<16} {words:4d} words")

    assert decision == "hello, PODC"


if __name__ == "__main__":
    main()
