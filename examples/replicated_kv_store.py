#!/usr/bin/env python3
"""A replicated key-value store on adaptive Byzantine Broadcast.

Five replicas totally order client commands by running one BB instance
per log slot with a rotating sender — the paper's protocols doing the
job they were motivated by.  Midway, one replica crashes; the cluster
keeps committing, and every surviving replica ends with the identical
store.

Run:  python examples/replicated_kv_store.py
"""

from repro.adversary.behaviors import SilentBehavior
from repro.apps.smr import run_smr
from repro.config import SystemConfig


def main() -> None:
    config = SystemConfig.with_optimal_resilience(5)
    commands = {
        0: [("set", "account:alice", 100), ("set", "account:carol", 7)],
        1: [("set", "account:bob", 250)],
        2: [("del", "account:bob")],       # replica 2 will crash instead
        3: [("set", "account:dave", 40)],
        4: [("set", "account:alice", 160)],
    }

    print("=== healthy cluster, 5 slots ===")
    result = run_smr(config, commands, num_slots=5)
    outcome = result.unanimous_decision()
    for index, command in enumerate(outcome.log):
        print(f"  slot {index}: {command}")
    print(f"  final state: {dict(outcome.state)}")
    print(f"  cost: {result.correct_words} words for "
          f"{len(outcome.log)} commits")

    print("\n=== replica 2 crashed from the start ===")
    byzantine = {2: SilentBehavior()}
    degraded_commands = {p: c for p, c in commands.items() if p != 2}
    result = run_smr(
        config, degraded_commands, num_slots=5, byzantine=byzantine
    )
    outcome = result.unanimous_decision()
    for index, command in enumerate(outcome.log):
        print(f"  slot {index}: {command}")
    empty = result.trace.count("smr_empty_slot") // len(result.correct_pids)
    print(f"  empty slots (crashed sender's turn): {empty}")
    print(f"  final state: {dict(outcome.state)}")
    print(f"  cost: {result.correct_words} words — the dead replica's "
          "slot decided ⊥ and was skipped, everything else committed")

    surviving_states = {
        result.decisions[pid].state for pid in result.correct_pids
    }
    assert len(surviving_states) == 1, "replicas must agree on the state"
    assert dict(outcome.state)["account:alice"] == 160

    print("\n=== same workload, pipelined (5 slots in flight) ===")
    from repro.apps.clients import ClientWorkload
    from repro.apps.pipelined import run_pipelined_smr

    workloads = [
        ClientWorkload(
            client=f"client-{pid}",
            ops=tuple(commands[pid]),
            replicas=(pid, (pid + 1) % 5),  # fan-out for fault tolerance
        )
        for pid in commands
    ]
    sequential_ticks = result.ticks
    result = run_pipelined_smr(
        config, workloads, num_slots=5, window=5, byzantine={2: SilentBehavior()}
    )
    outcome = result.unanimous_decision()
    print(f"  commits: {len(outcome.log)} — batching + fan-out commit "
          "*every* queued command this time, including the crashed "
          "replica's (its fan-out partner proposed them) and the "
          "delete of bob's account")
    print(f"  latency: {result.ticks} rounds vs {sequential_ticks} "
          f"sequential ({sequential_ticks / result.ticks:.1f}x faster)")
    print(f"  final state: {dict(outcome.state)}")


if __name__ == "__main__":
    main()
