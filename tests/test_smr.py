"""Tests for the SMR application built on adaptive BB."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.apps.smr import KeyValueStore, run_smr
from repro.config import SystemConfig


class TestKeyValueStore:
    def test_set_and_del(self):
        store = KeyValueStore()
        store.apply(("set", "a", 1))
        store.apply(("set", "b", 2))
        store.apply(("del", "a"))
        assert store.data == {"b": 2}
        assert store.applied == 3

    def test_garbage_commands_are_noops(self):
        store = KeyValueStore()
        for garbage in (None, 42, ("set",), ("set", 7, 1), ("unknown", 1), ()):
            store.apply(garbage)
        assert store.data == {}
        assert store.applied == 6

    def test_snapshot_deterministic(self):
        a, b = KeyValueStore(), KeyValueStore()
        a.apply(("set", "x", 1))
        a.apply(("set", "y", 2))
        b.apply(("set", "y", 2))
        b.apply(("set", "x", 1))
        assert a.snapshot() == b.snapshot()


class TestReplication:
    def test_logs_identical_failure_free(self, config5):
        commands = {
            pid: [("set", f"k{pid}", pid)] for pid in config5.processes
        }
        result = run_smr(config5, commands, num_slots=5)
        outcome = result.unanimous_decision()
        assert len(outcome.log) == 5
        assert dict(outcome.state) == {f"k{p}": p for p in range(5)}

    def test_rotating_senders_commit_in_slot_order(self, config5):
        commands = {pid: [("set", "slot", pid)] for pid in config5.processes}
        result = run_smr(config5, commands, num_slots=5)
        outcome = result.unanimous_decision()
        assert [c[2] for c in outcome.log] == [0, 1, 2, 3, 4]

    def test_noop_fills_empty_queues(self, config5):
        result = run_smr(config5, {0: [("set", "a", 1)]}, num_slots=5)
        outcome = result.unanimous_decision()
        assert outcome.log[0] == ("set", "a", 1)
        assert all(c == ("noop",) for c in outcome.log[1:])

    def test_crashed_replica_slot_commits_bottom(self, config5):
        byzantine = {2: SilentBehavior()}
        commands = {
            pid: [("set", f"k{pid}", pid)]
            for pid in config5.processes
            if pid != 2
        }
        result = run_smr(config5, commands, num_slots=5, byzantine=byzantine)
        outcome = result.unanimous_decision()
        # Slot 2's sender is dead: its slot is empty, the rest commit.
        assert len(outcome.log) == 4
        assert dict(outcome.state) == {
            f"k{p}": p for p in range(5) if p != 2
        }
        assert result.trace.count("smr_empty_slot") >= 1

    def test_states_agree_under_max_failures(self):
        config = SystemConfig.with_optimal_resilience(5)
        byzantine = {1: SilentBehavior(), 3: SilentBehavior()}
        commands = {
            pid: [("set", "winner", pid)]
            for pid in config.processes
            if pid not in byzantine
        }
        result = run_smr(config, commands, num_slots=3, byzantine=byzantine)
        result.unanimous_decision()

    def test_word_cost_linear_per_failure_free_slot(self, config5):
        one = run_smr(config5, {0: [("noop",)]}, num_slots=1)
        three = run_smr(config5, {0: [("noop",)]}, num_slots=3)
        per_slot_one = one.correct_words
        per_slot_three = three.correct_words / 3
        assert per_slot_three == pytest.approx(per_slot_one, rel=0.2)
