"""Recovery conformance battery (ISSUE satellite 1).

Crash each protocol *role* — phase leader, follower, designated BB
sender, strong-BA fixed leader, fallback participant — at every phase
boundary of its protocol under a seeded :class:`FaultPlan`, restart it
from its WAL, and assert the full contract every time:

* **agreement** — every correct process (including the recovered one)
  returns the same decision;
* **validity** — the decision is the expected protocol output;
* **word bounds** — :func:`verify_under_plan` accepts the run with the
  crashed pid counted toward the effective ``f``;
* **recovery accounting** — the crashed pid (and only it) appears in
  ``result.recovered``, and offline replay of its WAL reproduces the
  same decision.

Phase boundaries are structural, not guessed: weak BA spends exactly
:data:`WBA_PHASE_TICKS` ticks per Algorithm-4 phase before the
help/fallback epilogue, BB prefixes a vetting phase, and strong BA's
failure-free fast path is 4 leader rounds — crashing inside it is what
*forces* the Section-7 fallback, which is the role the battery wants
crashed too.
"""

from __future__ import annotations

import pytest

from repro.config import RunParameters, SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.faults import FaultPlan, ProcessCrash
from repro.recovery import RecoveryManager, replay_wal
from repro.verify.checker import verify_under_plan

CONFIG4 = SystemConfig(n=4, t=1)
CONFIG3 = SystemConfig(n=3, t=1)  # strong BA wants n = 2t + 1

WBA_PHASE_TICKS = 6
"""One Algorithm-4 phase: propose, vote, commit-info, commit-cert,
decide-share, finalize — six one-tick rounds."""

DOWN_TICKS = 3
"""Crash-to-restart window used throughout the battery."""


def _crash_plan(pid: int, at_tick: int, *, seed: int) -> FaultPlan:
    return FaultPlan(
        crashes=(
            ProcessCrash(
                pid=pid, at_tick=at_tick, restart_tick=at_tick + DOWN_TICKS
            ),
        ),
        seed=seed,
    )


def _assert_contract(result, plan, recovery, wal_dir, *, pid, expected):
    decisions = set(map(repr, result.decisions.values()))
    assert decisions == {repr(expected)}, (
        f"agreement/validity broken: {result.decisions}"
    )
    assert result.recovered == frozenset({pid})
    assert result.corrupted == frozenset()
    report = verify_under_plan(result, plan)
    assert report.ok, report.summary()
    assert recovery.stats.crashes == 1
    assert recovery.stats.restarts == 1
    # The WAL alone reproduces the crashed process's decision.
    offline = replay_wal(wal_dir / f"p{pid}")
    assert offline.decided
    assert repr(offline.decision) == repr(expected)


def validity_factory(suite, config):
    return ExternalValidity(lambda v: isinstance(v, str))


class TestWeakBaRoles:
    """num_phases=2: phase-1 leader is pid 1, phase-2 leader pid 2,
    pids 0 and 3 never lead.  Phases end at ticks 6 and 12; the
    help/fallback epilogue runs ticks 12-18."""

    BOUNDARIES = (1, WBA_PHASE_TICKS, 2 * WBA_PHASE_TICKS)

    def _run(self, pid, at_tick, tmp_path, seed):
        plan = _crash_plan(pid, at_tick, seed=seed)
        recovery = RecoveryManager(tmp_path)
        result = run_weak_ba(
            CONFIG4,
            {p: "v" for p in CONFIG4.processes},
            validity_factory,
            seed=seed,
            params=RunParameters(
                seed=seed, num_phases=2, fault_plan=plan, recovery=recovery
            ),
        )
        _assert_contract(
            result, plan, recovery, tmp_path, pid=pid, expected="v"
        )

    @pytest.mark.parametrize("at_tick", BOUNDARIES)
    def test_phase_leader_crashes(self, at_tick, tmp_path, test_seed):
        self._run(CONFIG4.leader_of_phase(1), at_tick, tmp_path, test_seed)

    @pytest.mark.parametrize("at_tick", BOUNDARIES)
    def test_follower_crashes(self, at_tick, tmp_path, test_seed):
        self._run(3, at_tick, tmp_path, test_seed)

    def test_fallback_participant_crashes(self, tmp_path, test_seed):
        """Crash inside the help/fallback epilogue (ticks 12-18): the
        process is mid-``Afallback`` when it dies."""
        self._run(3, 2 * WBA_PHASE_TICKS + 3, tmp_path, test_seed)


class TestByzantineBroadcastRoles:
    """Adaptive BB = vetting phase + embedded weak BA.  With
    num_phases=2 the vetting phase occupies the first ~7 ticks and the
    embedded BA's phases follow."""

    BOUNDARIES = (1, 7, 13)

    def _run(self, pid, at_tick, tmp_path, seed):
        plan = _crash_plan(pid, at_tick, seed=seed)
        recovery = RecoveryManager(tmp_path)
        result = run_byzantine_broadcast(
            CONFIG4,
            1,
            "payload",
            seed=seed,
            params=RunParameters(
                seed=seed, num_phases=2, fault_plan=plan, recovery=recovery
            ),
        )
        _assert_contract(
            result, plan, recovery, tmp_path, pid=pid, expected="payload"
        )

    @pytest.mark.parametrize("at_tick", BOUNDARIES)
    def test_designated_sender_crashes(self, at_tick, tmp_path, test_seed):
        """The sender's value is already signed and broadcast at tick 0,
        so even its crash cannot un-send it — BB still delivers."""
        self._run(1, at_tick, tmp_path, test_seed)

    @pytest.mark.parametrize("at_tick", BOUNDARIES)
    def test_follower_crashes(self, at_tick, tmp_path, test_seed):
        self._run(3, at_tick, tmp_path, test_seed)

    def test_fallback_participant_crashes(self, tmp_path, test_seed):
        self._run(3, 20, tmp_path, test_seed)


class TestStrongBaRoles:
    """Algorithm 5: fixed leader p0, 4-round fast path.  Crashing
    *anyone* during the fast path kills the n-of-n decide certificate,
    so these runs exercise the Section-7 fallback; a crash after the
    fast path (tick 5+) recovers into an already-decided cluster."""

    FAST_PATH = (1, 2, 3)

    def _run(self, pid, at_tick, tmp_path, seed, *, expect_fallback):
        plan = _crash_plan(pid, at_tick, seed=seed)
        recovery = RecoveryManager(tmp_path)
        result = run_strong_ba(
            CONFIG3,
            {p: 1 for p in CONFIG3.processes},
            seed=seed,
            params=RunParameters(seed=seed, fault_plan=plan, recovery=recovery),
        )
        _assert_contract(result, plan, recovery, tmp_path, pid=pid, expected=1)
        fast_path_ticks = 8  # 4 leader rounds + GRACE_TICKS + decide
        if expect_fallback:
            assert result.ticks > fast_path_ticks + DOWN_TICKS
        return result

    @pytest.mark.parametrize("at_tick", FAST_PATH)
    def test_leader_crashes_forces_fallback(self, at_tick, tmp_path, test_seed):
        self._run(0, at_tick, tmp_path, test_seed, expect_fallback=True)

    @pytest.mark.parametrize("at_tick", FAST_PATH)
    def test_follower_crashes_forces_fallback(
        self, at_tick, tmp_path, test_seed
    ):
        self._run(2, at_tick, tmp_path, test_seed, expect_fallback=True)

    def test_late_crash_recovers_into_decided_cluster(
        self, tmp_path, test_seed
    ):
        self._run(2, 5, tmp_path, test_seed, expect_fallback=False)
