"""Section 8 extension: resilience beyond n = 2t + 1.

"Note that this remains true for any resilience of n = αt + β, for
α > 1, β > 0 without compromising the intersection property required
for safety."  The implementation accepts any n >= 2t + 1; these tests
exercise the protocols at sub-optimal t (more processes than strictly
necessary) and verify both correctness and the *wider* adaptive regime
the larger gap buys.
"""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


class TestQuorumGeneralization:
    @pytest.mark.parametrize("n,t", [(7, 3), (10, 3), (13, 3), (9, 2), (16, 5)])
    def test_intersection_property_holds(self, n, t):
        """Two commit quorums intersect in > t processes for any
        n >= 2t + 1 (the Section 8 remark)."""
        config = SystemConfig(n=n, t=t)
        assert 2 * config.commit_quorum - n >= t + 1

    @pytest.mark.parametrize("n,t", [(10, 3), (13, 3), (16, 3)])
    def test_adaptive_regime_widens_with_n(self, n, t):
        base = SystemConfig(n=2 * t + 1, t=t)
        wide = SystemConfig(n=n, t=t)
        assert (
            wide.fallback_failure_threshold > base.fallback_failure_threshold
        )


class TestProtocolsAtHigherResilience:
    @pytest.mark.parametrize("n,t", [(10, 3), (13, 4), (16, 5)])
    def test_bb_failure_free(self, n, t):
        config = SystemConfig(n=n, t=t)
        result = run_byzantine_broadcast(config, sender=0, value="v")
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()

    @pytest.mark.parametrize("n,t", [(10, 3), (13, 4)])
    def test_bb_with_max_failures(self, n, t):
        config = SystemConfig(n=n, t=t)
        byzantine = {p: SilentBehavior() for p in range(1, t + 1)}
        result = run_byzantine_broadcast(
            config, sender=0, value="v", byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"

    def test_weak_ba_stays_adaptive_at_f_where_optimal_falls_back(self):
        """n=13, t=3: threshold (13-3-1)/2 = 4.5, so even f = 3 = t is
        adaptive — whereas at n=7, t=3 the same f forces the fallback."""
        wide = SystemConfig(n=13, t=3)
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        inputs = {p: "v" for p in wide.processes if p not in byzantine}
        result = run_weak_ba(wide, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()

        tight = SystemConfig(n=7, t=3)
        inputs = {p: "v" for p in tight.processes if p not in byzantine}
        result = run_weak_ba(tight, inputs, VALIDITY, byzantine=byzantine)
        assert result.unanimous_decision() == "v"
        assert result.fallback_was_used()

    @pytest.mark.parametrize("n,t", [(10, 3), (13, 4)])
    def test_strong_ba_failure_free_and_degraded(self, n, t):
        config = SystemConfig(n=n, t=t)
        quiet = run_strong_ba(config, {p: 1 for p in config.processes})
        assert quiet.unanimous_decision() == 1
        assert not quiet.fallback_was_used()

        byzantine = {0: SilentBehavior()}
        degraded = run_strong_ba(
            config,
            {p: 1 for p in config.processes if p != 0},
            byzantine=byzantine,
        )
        assert degraded.unanimous_decision() == 1

    def test_even_n_is_supported(self):
        """Optimal-resilience helper requires odd n, but the general
        constructor takes any n >= 2t + 1 — including even."""
        config = SystemConfig(n=8, t=3)
        result = run_byzantine_broadcast(config, sender=0, value="v")
        assert result.unanimous_decision() == "v"
