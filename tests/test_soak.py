"""The chaos-soak fleet: derivation, worker, auditor, artifacts, fleet.

The auditor's job is to catch accounting and agreement bugs across
thousands of instances, so its own tests work both directions: honest
instances must audit clean, and instances sabotaged with a *known*
accounting bug (the worker's ``inject`` tags) must trip the *specific*
invariant that models the bug — caught within that one instance, and
reproducing from the written artifact.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.soak import (
    INJECT_DOUBLE_BILL,
    INJECT_SKIP_REJOIN_DEDUP,
    PROFILES,
    SoakAuditor,
    SoakSettings,
    derive_instance,
    render_outcome,
    replay_artifact,
    run_fleet,
    run_instance,
    soak_result_doc,
    spec_from_json,
    spec_to_json,
    with_inject,
    write_artifact,
)
from repro.soak.worker import InstanceFacts

MIXED = PROFILES["mixed"]
CALM = PROFILES["calm"]


def _first_crash_spec(master_seed: int = 11):
    """The first derived weak-BA instance whose plan crashes a process
    (scanned, not hard-coded, so derivation changes cannot silently
    turn this into a crash-free test)."""
    for index in range(500):
        spec = derive_instance(master_seed, index, MIXED)
        if (
            spec.plan is not None
            and spec.plan.crashes
            and spec.protocol == "weak_ba"
        ):
            return spec
    raise AssertionError("no crash-bearing weak_ba instance in 500 derivations")


class TestDerivation:
    def test_derivation_is_a_pure_function(self):
        a = derive_instance(7, 3, MIXED)
        b = derive_instance(7, 3, MIXED)
        assert a == b

    def test_consecutive_indices_decorrelate(self):
        seeds = {derive_instance(7, i, MIXED).seed for i in range(50)}
        assert len(seeds) == 50

    def test_fault_budget_never_exceeds_t(self):
        for index in range(200):
            spec = derive_instance(3, index, PROFILES["heavy"])
            if spec.plan is not None:
                assert len(spec.plan.faulty) <= spec.t

    def test_calm_profile_derives_no_fault_plan(self):
        assert all(
            derive_instance(7, i, CALM).plan is None for i in range(30)
        )

    def test_spec_json_round_trip(self):
        spec = _first_crash_spec()
        assert spec.plan is not None and spec.plan.crashes
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_with_inject_only_toggles_sabotage(self):
        spec = derive_instance(7, 0, MIXED)
        injected = with_inject(spec, INJECT_DOUBLE_BILL)
        assert injected.inject == INJECT_DOUBLE_BILL
        assert dataclasses.replace(injected, inject=None) == spec


class TestAuditorUnit:
    """Pure auditor logic over fabricated facts (no clusters run)."""

    @staticmethod
    def _honest(index: int, billed: int = 10) -> InstanceFacts:
        return InstanceFacts(
            index=index,
            decision="d",
            predicted_decision="d",
            verify_ok=True,
            words_billed=billed,
            words_predicted=billed,
            ledger_recount=billed,
        )

    def test_honest_facts_audit_clean(self):
        auditor = SoakAuditor()
        assert auditor.submit(self._honest(0)) == []
        assert auditor.cumulative_billed == 10

    def test_out_of_order_facts_are_buffered_then_audited_in_order(self):
        auditor = SoakAuditor()
        assert auditor.submit(self._honest(1)) == []
        assert auditor.backlog == 1
        assert auditor.instances_audited == 0
        assert auditor.submit(self._honest(0)) == []
        assert auditor.backlog == 0
        assert auditor.instances_audited == 2

    def test_duplicate_instance_is_a_sequence_violation(self):
        auditor = SoakAuditor()
        auditor.submit(self._honest(0))
        found = auditor.submit(self._honest(0))
        assert [v.kind for v in found] == ["instance-sequence"]

    def test_billed_vs_predicted_mismatch_is_double_billing(self):
        facts = self._honest(0)
        facts.words_billed += 1
        facts.ledger_recount += 1
        found = SoakAuditor().submit(facts)
        assert [v.kind for v in found] == ["double-billing"]

    def test_recount_mismatch_is_ledger_drift(self):
        facts = self._honest(0)
        facts.ledger_recount -= 2
        found = SoakAuditor().submit(facts)
        assert [v.kind for v in found] == ["ledger-drift"]

    def test_negative_bill_breaks_ledger_monotonicity(self):
        facts = self._honest(0, billed=-1)
        kinds = {v.kind for v in SoakAuditor().submit(facts)}
        assert "ledger-monotonicity" in kinds

    def test_wal_ledger_disagreement_is_flagged_per_pid(self):
        facts = self._honest(0)
        facts.ledger_sends = {0: 4, 1: 5}
        facts.wal_sends = {0: 4, 1: 7}
        found = SoakAuditor().submit(facts)
        assert [v.kind for v in found] == ["wal-highwater"]
        assert "p1" in found[0].detail

    def test_decision_divergence_is_flagged(self):
        facts = self._honest(0)
        facts.decision = "other"
        found = SoakAuditor().submit(facts)
        assert [v.kind for v in found] == ["decision-divergence"]

    def test_worker_error_short_circuits_the_other_checks(self):
        facts = InstanceFacts(index=0, error="boom")
        found = SoakAuditor().submit(facts)
        assert [v.kind for v in found] == ["instance-error"]


class TestWorkerAndArtifacts:
    def test_honest_instance_audits_clean(self):
        facts = run_instance(derive_instance(7, 0, CALM))
        assert facts.error is None
        assert SoakAuditor().submit(facts) == []
        assert facts.words_billed == facts.words_predicted > 0

    def test_injected_double_bill_is_caught_within_the_instance(self):
        spec = with_inject(derive_instance(7, 0, CALM), INJECT_DOUBLE_BILL)
        found = SoakAuditor().submit(run_instance(spec))
        assert [v.kind for v in found] == ["double-billing"]

    def test_skipped_rejoin_dedup_trips_wal_highwater_and_replays(
        self, tmp_path
    ):
        """A crash-rejoin instance with the dedup window sabotaged must
        trip the WAL-highwater invariant, and the written artifact must
        replay to the same verdict."""
        spec = with_inject(_first_crash_spec(), INJECT_SKIP_REJOIN_DEDUP)
        facts = run_instance(spec)
        assert facts.error is None
        assert facts.crashes >= 1 and facts.rejoins >= 1
        found = SoakAuditor(start_index=spec.index).submit(facts)
        kinds = sorted(v.kind for v in found)
        assert "wal-highwater" in kinds and "double-billing" in kinds

        path = write_artifact(tmp_path, spec, facts, found)
        verdict = replay_artifact(path)
        assert verdict["reproduced"], verdict
        assert not verdict["derivation_drift"]
        assert sorted(verdict["fresh_kinds"]) == kinds


class TestFleet:
    def test_settings_reject_unknown_profile_and_missing_targets(self):
        with pytest.raises(ValueError, match="unknown chaos profile"):
            SoakSettings(profile="nope").chaos_profile()
        with pytest.raises(ValueError, match="instances, duration"):
            run_fleet(SoakSettings(instances=None, duration=None))

    def test_small_fleet_catches_an_injected_violation(self, tmp_path):
        """A 3-instance fleet with one sabotaged instance: the auditor
        flags exactly that instance, writes its artifact immediately,
        and the trend document still validates against the schema."""
        settings = SoakSettings(
            master_seed=7,
            profile="calm",
            workers=2,
            instances=3,
            artifacts_dir=tmp_path,
            inject={1: INJECT_DOUBLE_BILL},
        )
        outcome = run_fleet(settings)
        assert outcome.instances == 3
        assert not outcome.ok
        assert {v.index for v in outcome.violations} == {1}
        assert {v.kind for v in outcome.violations} == {"double-billing"}
        assert [p.name for p in outcome.artifacts] == [
            "soak-violation-i1.json"
        ]
        document = soak_result_doc(outcome)
        assert document["scenario"]["violations"] == 1
        assert document["scenario"]["violation_kinds"] == ["double-billing"]
        assert "double-billing" in render_outcome(outcome)

    @pytest.mark.soak
    def test_sustained_mixed_chaos_soak_is_violation_free(self, tmp_path):
        """A multi-minute mixed-chaos campaign across 3 worker processes
        must commit every instance with zero invariant violations."""
        outcome = run_fleet(
            SoakSettings(
                master_seed=31,
                profile="mixed",
                workers=3,
                instances=120,
                artifacts_dir=tmp_path,
            )
        )
        assert outcome.instances >= 120
        assert outcome.ok, render_outcome(outcome)
        assert outcome.crashes > 0 and outcome.rejoins > 0
        assert outcome.words_billed == outcome.words_predicted


class TestCivitBackendDerivation:
    """The civit backend rides into the soak behind ``civit_weight``:
    the ``backends`` profile mixes it in, derivation stays a pure
    function of ``(master_seed, index, profile)``, and — the
    stream-compatibility pin — profiles with ``civit_weight == 0``
    derive exactly what they derived before the field existed."""

    BACKENDS = PROFILES["backends"]

    def _first_civit_spec(self, master_seed=11, need_crash=False):
        for index in range(500):
            spec = derive_instance(master_seed, index, self.BACKENDS)
            if spec.protocol != "civit_strong_ba":
                continue
            if need_crash and not (spec.plan and spec.plan.crashes):
                continue
            return spec
        raise AssertionError("no civit instance in 500 derivations")

    def test_backends_profile_mixes_in_civit(self):
        protocols = {
            derive_instance(7, i, self.BACKENDS).protocol for i in range(40)
        }
        assert "civit_strong_ba" in protocols
        assert "weak_ba" in protocols

    def test_civit_spec_rederives_identically(self):
        spec = self._first_civit_spec()
        assert (
            derive_instance(spec.master_seed, spec.index, self.BACKENDS)
            == spec
        )
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_zero_weight_profiles_unperturbed(self):
        """The extra protocol draw happens only when civit_weight > 0,
        so the pre-existing profiles' derivation streams are untouched —
        their replay artifacts stay valid across this change."""
        for profile in (CALM, MIXED, PROFILES["heavy"]):
            assert profile.civit_weight == 0.0

    def test_extra_draw_gated_on_weak_ba_branch(self):
        """Zeroing civit_weight must leave every instance that did not
        draw weak BA (hence never consumed the extra random) identical
        — the gating that makes the field stream-compatible."""
        twin = dataclasses.replace(self.BACKENDS, civit_weight=0.0)
        smr_seen = 0
        for index in range(60):
            original = derive_instance(7, index, self.BACKENDS)
            zeroed = derive_instance(7, index, twin)
            if original.protocol == "smr":
                assert original == zeroed
                smr_seen += 1
        assert smr_seen > 0

    def test_civit_crash_instance_audits_clean(self):
        spec = self._first_civit_spec(need_crash=True)
        facts = run_instance(spec)
        assert facts.error is None
        assert facts.crashes >= 1
        assert SoakAuditor(start_index=spec.index).submit(facts) == []
        assert facts.words_billed == facts.words_predicted > 0
