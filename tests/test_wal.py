"""Unit tests for the write-ahead log layer (:mod:`repro.recovery.wal`).

Covers CRC framing, fsync policies, buffered-append/flush semantics,
``drop_unflushed`` (the crash itself), snapshot compaction, and the
damage policy the recovery subsystem promises: a *torn tail* — the
signature of a crash mid-append — is tolerated and replay resumes from
the last valid record, while silent corruption of a complete frame
(bit flips, bogus lengths) raises :class:`~repro.errors.RecoveryError`
naming the offset instead of loading corrupt state.
"""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.errors import RecoveryError
from repro.recovery import (
    ProcessHistory,
    ProcessWal,
    load_history,
    load_snapshot,
    load_wal,
    scan_wal,
    write_snapshot,
)

_HEADER = struct.Struct(">II")


@pytest.fixture
def wals():
    """Track every ProcessWal a test opens and close them at teardown
    (the suite escalates ResourceWarning to an error)."""
    opened: list[ProcessWal] = []
    yield opened
    for wal in opened:
        wal.close()


def track(wals, wal: ProcessWal) -> ProcessWal:
    wals.append(wal)
    return wal


def make_wal(wals, tmp_path, *, fsync="batch") -> ProcessWal:
    return track(wals, ProcessWal(tmp_path / "p0", fsync=fsync))


def populated(wals, tmp_path, *, fsync="batch") -> ProcessWal:
    wal = make_wal(wals, tmp_path, fsync=fsync)
    wal.log_meta({"n": 4, "t": 1, "seed": 0, "pid": 0, "protocol": "weak_ba"})
    wal.log_inbox(0, ["e0", "e1"])
    wal.log_sends(0, 3)
    wal.log_event(0, "weak_ba", "acquired", (("value", "v"),))
    wal.log_inbox(1, ["e2"])
    wal.log_sends(1, 1)
    wal.flush()
    return wal


class TestFraming:
    def test_roundtrip(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        history = wal.load()
        assert history.meta["protocol"] == "weak_ba"
        assert history.inboxes == {0: ["e0", "e1"], 1: ["e2"]}
        assert history.sends == {0: 3, 1: 1}
        assert history.events == [(0, "weak_ba", "acquired", (("value", "v"),))]
        assert history.through_tick == 1
        assert history.total_sends() == 4
        assert history.damage is None

    def test_empty_inbox_and_zero_sends_not_logged(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path)
        wal.log_meta({"pid": 0})
        wal.log_inbox(0, [])
        wal.log_sends(0, 0)
        wal.flush()
        scan = scan_wal(wal.wal_path)
        assert [r[0] for r in scan.records] == ["meta"]

    def test_meta_merges_across_records(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path)
        wal.log_meta({"n": 4, "t": 1})
        wal.log_meta({"input": "v"})
        wal.flush()
        history = wal.load()
        assert history.meta["n"] == 4
        assert history.meta["input"] == "v"

    def test_unknown_record_kind_is_skipped(self, wals, tmp_path):
        history = ProcessHistory()
        history.absorb(
            [("meta", {"pid": 3}), ("hologram", 1, 2, 3), ("sends", 2, 5)]
        )
        assert history.meta["pid"] == 3
        assert history.sends == {2: 5}

    def test_missing_stem_raises(self, wals, tmp_path):
        with pytest.raises(RecoveryError, match="no WAL or snapshot"):
            load_history(tmp_path / "absent")


class TestFsyncAndBuffering:
    def test_batch_policy_buffers_until_flush(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path, fsync="batch")
        wal.log_meta({"pid": 0})
        assert not wal.wal_path.exists()
        wal.flush()
        assert wal.wal_path.exists()

    def test_always_policy_lands_each_record(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path, fsync="always")
        wal.log_meta({"pid": 0})
        assert wal.wal_path.exists()
        size_after_meta = wal.wal_path.stat().st_size
        wal.log_sends(0, 1)
        assert wal.wal_path.stat().st_size > size_after_meta

    def test_never_policy_still_writes(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path, fsync="never")
        wal.log_meta({"pid": 0})
        wal.flush()
        assert len(wal.load().meta) > 0

    def test_bad_policy_rejected(self, wals, tmp_path):
        with pytest.raises(RecoveryError, match="fsync policy"):
            ProcessWal(tmp_path / "p0", fsync="usually")

    def test_drop_unflushed_loses_only_the_tail(self, wals, tmp_path):
        wal = make_wal(wals, tmp_path)
        wal.log_meta({"pid": 0})
        wal.log_sends(0, 2)
        wal.flush()
        wal.log_sends(1, 9)  # the crash happens before this flushes
        lost = wal.drop_unflushed()
        assert lost > 0
        wal.flush()
        history = wal.load()
        assert history.sends == {0: 2}
        assert wal.drop_unflushed() == 0  # nothing buffered now


class TestSnapshots:
    def test_snapshot_roundtrip(self, wals, tmp_path):
        path = tmp_path / "state.snap"
        payload = {"meta": {"pid": 1}, "sends": {0: 4}}
        size = write_snapshot(path, payload)
        assert size == path.stat().st_size
        assert load_snapshot(path) == payload

    def test_snapshot_compacts_and_truncates_wal(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        live_before = wal.wal_path.stat().st_size
        wal.snapshot({"n": 4, "t": 1, "pid": 0, "protocol": "weak_ba"})
        assert wal.snap_path.exists()
        assert wal.wal_path.stat().st_size < live_before
        # The merged history is unchanged by compaction.
        history = wal.load()
        assert history.sends == {0: 3, 1: 1}
        assert history.inboxes[0] == ["e0", "e1"]
        assert history.through_tick == 1

    def test_appends_after_snapshot_merge(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        wal.snapshot({"n": 4, "t": 1, "pid": 0, "protocol": "weak_ba"})
        wal.log_inbox(2, ["e3"])
        wal.log_sends(2, 2)
        wal.flush()
        history = wal.load()
        assert history.sends == {0: 3, 1: 1, 2: 2}
        assert history.through_tick == 2

    def test_corrupt_snapshot_always_fatal(self, wals, tmp_path):
        path = tmp_path / "state.snap"
        write_snapshot(path, {"meta": {}})
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(RecoveryError, match="CRC32"):
            load_snapshot(path)


class TestDamagePolicy:
    """Satellite: torn writes are tolerated, silent corruption is not."""

    def test_torn_tail_truncation_tolerated(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = wal.wal_path.read_bytes()
        # Truncate mid-frame: the classic crash-during-append signature.
        wal.wal_path.write_bytes(data[: len(data) - 7])
        history = load_history(wal.stem)
        assert history.damage is not None
        assert history.damage.kind == "torn-tail"
        assert history.damage.tolerable
        # Everything before the tear is intact; the torn record is gone.
        assert history.sends[0] == 3
        assert 1 not in history.sends

    def test_torn_header_tolerated(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = wal.wal_path.read_bytes()
        wal.wal_path.write_bytes(data + b"\x00\x01")  # partial next header
        scan = scan_wal(wal.wal_path)
        assert scan.damage is not None and scan.damage.kind == "torn-tail"
        assert len(scan.records) == 6

    def test_strict_mode_rejects_torn_tail(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = wal.wal_path.read_bytes()
        wal.wal_path.write_bytes(data[: len(data) - 7])
        with pytest.raises(RecoveryError, match="torn-tail"):
            load_wal(wal.wal_path, strict=True)

    def test_bit_flip_in_body_is_fatal_and_names_offset(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = bytearray(wal.wal_path.read_bytes())
        # Flip one bit inside the FIRST record's body: a complete frame
        # whose CRC no longer matches — silent corruption, not a crash.
        data[_HEADER.size + 2] ^= 0x40
        wal.wal_path.write_bytes(bytes(data))
        with pytest.raises(RecoveryError) as excinfo:
            load_history(wal.stem)
        message = str(excinfo.value)
        assert "crc-mismatch" in message
        assert "byte 0" in message  # the offset of the damaged frame
        assert "refusing to load past it" in message

    def test_bit_flip_scan_stops_at_last_valid_record(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = bytearray(wal.wal_path.read_bytes())
        # Corrupt the THIRD frame's body; the first two must survive.
        offset = 0
        for _ in range(2):
            length, _crc = _HEADER.unpack_from(data, offset)
            offset += _HEADER.size + length
        data[offset + _HEADER.size + 1] ^= 0x01
        wal.wal_path.write_bytes(bytes(data))
        scan = scan_wal(wal.wal_path)
        assert len(scan.records) == 2
        assert scan.damage is not None
        assert scan.damage.kind == "crc-mismatch"
        assert scan.damage.offset == offset
        assert not scan.damage.tolerable

    def test_bogus_length_header_is_fatal(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = bytearray(wal.wal_path.read_bytes())
        body = pickle.dumps(("sends", 9, 9))
        data.extend(_HEADER.pack(1 << 31, 0) + body)
        wal.wal_path.write_bytes(bytes(data))
        scan = scan_wal(wal.wal_path)
        assert scan.damage is not None
        assert scan.damage.kind == "bad-length"
        assert not scan.damage.tolerable
        with pytest.raises(RecoveryError, match="bad-length"):
            load_history(wal.stem)

    def test_valid_record_count_reported(self, wals, tmp_path):
        wal = populated(wals, tmp_path)
        data = bytearray(wal.wal_path.read_bytes())
        data[_HEADER.size + 2] ^= 0x40
        wal.wal_path.write_bytes(bytes(data))
        with pytest.raises(RecoveryError, match=r"0 valid record\(s\)"):
            load_wal(wal.wal_path)
