"""Tests for the schedule-space explorer (``repro.mc.explore``).

The headline test is the bounded-space *proof*: exhaustive DFS over the
n=4, t=1, <=12-tick weak-BA space with an adaptively chosen silenced
process finds no violation of agreement, validity, adaptive silence, or
the word budget — and because the space is exhausted (``complete``),
that is a theorem about the bounded space, not a sample.  The fast
always-on variant caps inbox permutations at 2 per choice point; the
``mc_exhaustive``-marked variant widens to 3 (the full cap-6 space is
154k schedules, ~5 minutes — run it via ``repro mc explore``).
"""

import pytest

from repro.mc.explore import explore_exhaustive, explore_random, run_schedule
from repro.mc.scenario import make_scenario


def _proof_scenario(perm_cap: int):
    return make_scenario("weak-ba", n=4, t=1, max_ticks=12, perm_cap=perm_cap)


class TestRunSchedule:
    def test_empty_script_runs_the_canonical_schedule(self):
        outcome = run_schedule(_proof_scenario(perm_cap=2))
        assert not outcome.pruned
        assert outcome.result is not None
        assert outcome.report is not None
        # The canonical schedule logs every open decision it met.
        assert outcome.decisions == [entry.chosen for entry in outcome.log]

    def test_scripted_run_is_deterministic(self):
        scenario = _proof_scenario(perm_cap=2)
        first = run_schedule(scenario, (1,))
        second = run_schedule(scenario, (1,))
        assert first.decisions == second.decisions
        assert first.result.trace.canonical() == second.result.trace.canonical()


class TestExhaustive:
    def test_bounded_space_proof_n4(self):
        """Agreement + validity + word budget over the full bounded
        space (n=4, t=1, <=12 ticks, perm_cap=2): no counterexample,
        space exhausted."""
        result = explore_exhaustive(_proof_scenario(perm_cap=2), max_runs=10_000)
        assert result.complete, "space not exhausted - not a proof"
        assert result.ok, result.counterexamples
        stats = result.stats
        assert stats.terminal > 0
        assert stats.pruned > 0
        assert stats.distinct_states > 0
        assert stats.runs == stats.terminal + stats.pruned

    @pytest.mark.mc_exhaustive
    def test_bounded_space_proof_n4_wide(self):
        """The same proof over the wider perm_cap=3 space (~1.1k
        schedules); excluded from tier-1 by the marker."""
        result = explore_exhaustive(_proof_scenario(perm_cap=3), max_runs=100_000)
        assert result.complete
        assert result.ok, result.counterexamples
        print(
            f"\nexplored {result.stats.runs} schedules "
            f"({result.stats.terminal} terminal, {result.stats.pruned} pruned, "
            f"{result.stats.distinct_states} distinct states)"
        )

    def test_prune_modes_agree_on_verdict(self):
        # A tiny space (no reordering: the only open decisions are the
        # adversary's) where pruned and unpruned search must coincide.
        def scenario():
            return make_scenario(
                "weak-ba", n=4, t=1, max_ticks=12, reorder=False
            )

        unpruned = explore_exhaustive(scenario(), prune=None)
        behavior = explore_exhaustive(scenario(), prune="behavior")
        history = explore_exhaustive(scenario(), prune="history")
        assert unpruned.complete and behavior.complete and history.complete
        assert unpruned.ok == behavior.ok == history.ok
        # Pruning may drop runs but never terminal verdicts' union:
        # every adversary branch still reaches a terminal run somewhere.
        assert behavior.stats.terminal >= 1
        assert unpruned.stats.terminal >= behavior.stats.terminal

    def test_max_runs_marks_incomplete(self):
        result = explore_exhaustive(_proof_scenario(perm_cap=2), max_runs=3)
        assert result.stats.runs == 3
        assert not result.complete

    def test_mutated_scenario_yields_counterexample(self):
        scenario = make_scenario(
            "weak-ba",
            n=4,
            t=1,
            adversary="equivocating-leader",
            max_ticks=24,
            reorder=False,
            quorum_delta=-1,
        )
        result = explore_exhaustive(scenario, stop_at_first=True)
        assert not result.ok
        (ce,) = result.counterexamples
        assert "agreement" in ce.kinds
        assert ce.params["quorum_delta"] == -1

    def test_bad_prune_mode_rejected(self):
        from repro.errors import ModelCheckError

        with pytest.raises(ModelCheckError):
            explore_exhaustive(_proof_scenario(perm_cap=2), prune="turbo")


class TestRandomWalk:
    def test_sound_scenario_survives_random_walks(self):
        result = explore_random(_proof_scenario(perm_cap=2), runs=20, seed=5)
        assert result.ok
        assert result.stats.runs == 20
        assert not result.complete  # sampling is never a proof

    def test_walk_counterexample_replays_as_script(self):
        scenario = make_scenario(
            "weak-ba",
            n=4,
            t=1,
            adversary="equivocating-leader",
            max_ticks=24,
            quorum_delta=-1,
        )
        result = explore_random(scenario, runs=10, seed=0)
        assert not result.ok
        ce = result.counterexamples[0]
        outcome = run_schedule(scenario, ce.decisions)
        assert {v.kind for v in outcome.report.violations} >= set(ce.kinds)

class TestParallelExploration:
    """The sharded explorer must prove the same theorem as the serial
    DFS: identical run counts, identical verdict, regardless of the
    worker count or the shard boundaries."""

    def test_parallel_matches_serial(self):
        from repro.mc.explore import explore_exhaustive_parallel

        serial = explore_exhaustive(_proof_scenario(perm_cap=2), max_runs=50_000)
        for jobs in (1, 2, 3):
            parallel = explore_exhaustive_parallel(
                _proof_scenario(perm_cap=2), jobs=jobs, max_runs=50_000
            )
            assert parallel.complete and parallel.ok
            assert parallel.stats.runs == serial.stats.runs
            assert parallel.stats.terminal == serial.stats.terminal
            assert parallel.stats.max_depth == serial.stats.max_depth
            assert parallel.counterexamples == serial.counterexamples

    def test_shard_roots_partition_the_space(self):
        from repro.mc.explore import _shard_roots, explore_exhaustive

        roots = _shard_roots(_proof_scenario(perm_cap=2), 4)
        assert len(roots) >= 2
        # Every root explores a disjoint subtree; together they cover
        # exactly the serial space.
        total = 0
        for root in roots:
            result = explore_exhaustive(
                _proof_scenario(perm_cap=2), max_runs=50_000, roots=(root,)
            )
            assert result.complete and result.ok
            total += result.stats.runs
        serial = explore_exhaustive(_proof_scenario(perm_cap=2), max_runs=50_000)
        assert total == serial.stats.runs

    def test_parallel_counterexample_detection(self):
        from repro.mc.explore import explore_exhaustive_parallel

        scenario = make_scenario(
            "weak-ba",
            n=4,
            t=1,
            adversary="equivocating-leader",
            max_ticks=24,
            reorder=False,
            quorum_delta=-1,
        )
        result = explore_exhaustive_parallel(scenario, jobs=2, max_runs=50_000)
        assert not result.ok
        assert result.counterexamples
        assert any("agreement" in ce.kinds for ce in result.counterexamples)
