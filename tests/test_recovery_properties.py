"""Property tests for the invariants recovery leans on (ISSUE satellite 2).

Replay's correctness argument rests on two facts:

* **Quorum intersection** — the paper's commit quorum ``⌈(n+t+1)/2⌉``
  guarantees any two quorums share a *correct* process, so a recovered
  process adopting a logged certificate can never contradict a quorum
  the live cluster assembled while it was down.
* **Deterministic crypto reconstruction** — a deployment rebuilt from a
  WAL's ``(n, t, seed)`` metadata produces *byte-identical* keys,
  shares, and certificates, so replayed certificates verify against the
  live run's and vice versa.

Both are checked over a seeded-random grid of ``(n, t)`` deployments
(the grid seed follows ``REPRO_TEST_SEED``, so CI's seed matrix walks
different grids).
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.crypto.certificates import CryptoSuite, QuorumCertificate
from repro.faults import FaultPlan, ProcessCrash
from repro.recovery import RecoveryManager, load_history, replay_wal

GRID_SIZE = 12


def deployment_grid(seed: int, *, max_n: int = 9) -> list[tuple[int, int]]:
    """Seeded-random sample of legal ``(n, t)`` deployments."""
    rng = random.Random(seed * 0x9E3779B1)
    grid = []
    for _ in range(GRID_SIZE):
        t = rng.randint(0, (max_n - 1) // 2)
        n = rng.randint(2 * t + 1, max_n)
        grid.append((n, t))
    return grid


class TestQuorumIntersection:
    def test_commit_quorum_is_the_papers_ceiling(self, test_seed):
        for n, t in deployment_grid(test_seed):
            config = SystemConfig(n=n, t=t)
            assert config.commit_quorum == math.ceil((n + t + 1) / 2)

    def test_any_two_quorums_share_a_correct_process(self, test_seed):
        """Worst case *and* random case: two commit quorums always
        overlap in ≥ t+1 processes, so at least one is correct even if
        every Byzantine process sits in the intersection."""
        rng = random.Random(test_seed)
        for n, t in deployment_grid(test_seed):
            config = SystemConfig(n=n, t=t)
            q = config.commit_quorum
            assert 2 * q - n >= t + 1
            # Adversarial placement: maximally disjoint quorums, with
            # every Byzantine process inside their intersection.
            first = set(range(q))
            second = set(range(n - q, n))
            overlap = first & second
            assert len(overlap) >= t + 1
            byzantine = set(list(overlap)[:t])
            assert overlap - byzantine, "no correct process in overlap"
            # Random placement can only overlap more.
            for _ in range(4):
                a = set(rng.sample(range(n), q))
                b = set(rng.sample(range(n), q))
                assert len(a & b) >= 2 * q - n

    def test_quorum_unreachable_when_too_many_crash(self, test_seed):
        """The battery's crash faults count toward ``f``: once more than
        ``n - commit_quorum`` processes are down, no new certificate can
        form — recovery must replay old ones, never mint new ones."""
        for n, t in deployment_grid(test_seed):
            config = SystemConfig(n=n, t=t)
            q = config.commit_quorum
            assert config.commit_quorum_reachable(0)
            assert config.commit_quorum_reachable(n - q)
            assert not config.commit_quorum_reachable(n - q + 1)


class TestCertificateReconstruction:
    """A replayed deployment (rebuilt from WAL meta) must reproduce the
    live deployment's certificates bit-for-bit."""

    def test_same_seed_suites_make_byte_identical_certificates(self, test_seed):
        rng = random.Random(test_seed + 1)
        for n, t in deployment_grid(test_seed):
            config = SystemConfig(n=n, t=t)
            suite_seed = rng.randint(0, 2**31)
            live = CryptoSuite(config, seed=suite_seed)
            rebuilt = CryptoSuite(config, seed=suite_seed)
            q = config.commit_quorum
            signers = rng.sample(range(n), q)
            payload = ("commit", rng.randint(0, 999), "v")
            certs = [
                suite.combine_certificate(
                    "prop:qc", q, payload,
                    [
                        suite.partial_for_certificate(pid, "prop:qc", q, payload)
                        for pid in signers
                    ],
                )
                for suite in (live, rebuilt)
            ]
            assert pickle.dumps(certs[0]) == pickle.dumps(certs[1])
            # Cross-verification: each deployment accepts the other's.
            assert certs[0].verify(rebuilt)
            assert certs[1].verify(live)
            assert rebuilt.verify_certificate(certs[0], "prop:qc", q)

    def test_different_seed_suites_reject_each_other(self, test_seed):
        config = SystemConfig(n=4, t=1)
        a = CryptoSuite(config, seed=test_seed)
        b = CryptoSuite(config, seed=test_seed + 1)
        q = config.commit_quorum
        cert = a.combine_certificate(
            "prop:qc", q, "v",
            [a.partial_for_certificate(pid, "prop:qc", q, "v") for pid in range(q)],
        )
        assert cert.verify(a)
        assert not cert.verify(b)


def _wal_certificates(history) -> list[QuorumCertificate]:
    """Every quorum certificate a process durably received: bare ones
    and the ``proof`` fields of protocol payloads."""
    certs = []
    for envelopes in history.inboxes.values():
        for envelope in envelopes:
            payload = envelope.payload
            if isinstance(payload, QuorumCertificate):
                certs.append(payload)
            proof = getattr(payload, "proof", None)
            if isinstance(proof, QuorumCertificate):
                certs.append(proof)
    return certs


class TestReplayedCertificates:
    """End to end: certificates pulled out of a crash-run's WALs verify
    under the deployment rebuilt from that WAL's metadata, and the two
    survivors' copies of each broadcast certificate are byte-identical."""

    @pytest.fixture(scope="class")
    def crash_run(self, tmp_path_factory, test_seed):
        wal_dir = tmp_path_factory.mktemp("wal")
        config = SystemConfig(n=4, t=1)
        plan = FaultPlan(
            crashes=(ProcessCrash(pid=2, at_tick=3, restart_tick=6),),
            seed=test_seed,
        )
        recovery = RecoveryManager(wal_dir)
        result = run_weak_ba(
            config,
            {p: "v" for p in config.processes},
            lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str)),
            seed=test_seed,
            params=RunParameters(
                seed=test_seed, num_phases=2, fault_plan=plan, recovery=recovery
            ),
        )
        return config, wal_dir, result

    def test_wal_certificates_verify_under_rebuilt_deployment(self, crash_run):
        config, wal_dir, result = crash_run
        checked = 0
        for pid in config.processes:
            history = load_history(wal_dir / f"p{pid}")
            meta = history.meta
            rebuilt = CryptoSuite(
                SystemConfig(n=meta["n"], t=meta["t"]), seed=meta["seed"]
            )
            for cert in _wal_certificates(history):
                assert cert.verify(rebuilt)
                checked += 1
        assert checked > 0, "no certificates crossed the wire?"

    def test_broadcast_certificates_byte_identical_across_wals(self, crash_run):
        config, wal_dir, result = crash_run
        by_key: dict[bytes, set[int]] = {}
        for pid in config.processes:
            history = load_history(wal_dir / f"p{pid}")
            for cert in _wal_certificates(history):
                by_key.setdefault(pickle.dumps(cert), set()).add(pid)
        # At least one certificate was broadcast: several processes hold
        # byte-identical copies (dict keying by pickled bytes merged them).
        assert any(len(holders) >= 2 for holders in by_key.values())

    def test_replay_reports_are_deterministic(self, crash_run):
        config, wal_dir, result = crash_run
        for pid in config.processes:
            first = replay_wal(wal_dir / f"p{pid}")
            second = replay_wal(wal_dir / f"p{pid}")
            assert first.summary() | {"duration_seconds": 0} == (
                second.summary() | {"duration_seconds": 0}
            )
            assert repr(first.decision) == repr(result.decisions[pid])
