"""Unit tests for the PKI registry, signatures, and equivocation proofs."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import (
    EquivocationProof,
    Signature,
    SignedValue,
    sign_value,
)
from repro.errors import UnknownSignerError


@pytest.fixture
def registry() -> KeyRegistry:
    return KeyRegistry(5, master_seed=b"test")


class TestSigning:
    def test_sign_verify_roundtrip(self, registry):
        signature = registry.sign(2, ("hello", 42))
        assert registry.verify(signature, ("hello", 42))

    def test_wrong_payload_rejected(self, registry):
        signature = registry.sign(2, ("hello", 42))
        assert not registry.verify(signature, ("hello", 43))

    def test_wrong_signer_claim_rejected(self, registry):
        signature = registry.sign(2, "msg")
        forged = Signature(signer=3, tag=signature.tag)
        assert not registry.verify(forged, "msg")

    def test_random_tag_rejected(self, registry):
        forged = Signature(signer=1, tag=b"\x00" * 32)
        assert not registry.verify(forged, "msg")

    def test_unknown_signer_raises(self, registry):
        with pytest.raises(UnknownSignerError):
            registry.sign(99, "msg")
        with pytest.raises(UnknownSignerError):
            registry.verify(Signature(signer=99, tag=b"x"), "msg")

    def test_registries_with_different_seeds_are_independent(self):
        a = KeyRegistry(3, master_seed=b"a")
        b = KeyRegistry(3, master_seed=b"b")
        signature = a.sign(0, "msg")
        assert not b.verify(signature, "msg")

    def test_signature_is_one_word(self, registry):
        assert registry.sign(0, "m").words() == 1


class TestSigner:
    def test_signer_signs_as_its_pid(self, registry):
        signer = registry.signer_for(3)
        signature = signer.sign("payload")
        assert signature.signer == 3
        assert registry.verify(signature, "payload")

    def test_signer_for_unknown_pid_raises(self, registry):
        with pytest.raises(UnknownSignerError):
            registry.signer_for(7)


class TestSignedValue:
    def test_roundtrip(self, registry):
        signed = sign_value(registry.signer_for(1), ("v", 9))
        assert signed.signer == 1
        assert signed.verify(registry)

    def test_tampered_payload_fails(self, registry):
        signed = sign_value(registry.signer_for(1), "original")
        tampered = SignedValue(payload="changed", signature=signed.signature)
        assert not tampered.verify(registry)


class TestEquivocationProof:
    def test_valid_proof(self, registry):
        signer = registry.signer_for(2)
        proof = EquivocationProof(
            slot=("propose", 1),
            first=sign_value(signer, "a"),
            second=sign_value(signer, "b"),
        )
        assert proof.verify(registry)
        assert proof.culprit == 2

    def test_same_payload_is_not_equivocation(self, registry):
        signer = registry.signer_for(2)
        proof = EquivocationProof(
            slot="s", first=sign_value(signer, "a"), second=sign_value(signer, "a")
        )
        assert not proof.verify(registry)

    def test_different_signers_is_not_equivocation(self, registry):
        proof = EquivocationProof(
            slot="s",
            first=sign_value(registry.signer_for(1), "a"),
            second=sign_value(registry.signer_for(2), "b"),
        )
        assert not proof.verify(registry)

    def test_forged_half_fails(self, registry):
        signer = registry.signer_for(2)
        good = sign_value(signer, "a")
        forged = SignedValue(payload="b", signature=good.signature)
        proof = EquivocationProof(slot="s", first=good, second=forged)
        assert not proof.verify(registry)
