"""Adversarial tests for the recursive fallback's case analysis.

The recursion's correctness argument (see
``repro/fallback/recursive_ba.py``) splits on which half of a committee
has an honest majority and on whether any honest member graded 2.
These tests drive the hard branches with targeted attacks:

* committee members lying in their **reports** (different decisions to
  different receivers);
* equivocating claims inside the graded consensus of a *sub*-committee;
* Byzantine concentration in one half (the other half must carry the
  run);
* all of the above while the fallback runs embedded in weak BA with
  ``δ' = 2δ`` rounds.
"""

from dataclasses import dataclass

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.fallback.recursive_ba import CommitteeReport, run_fallback_ba
from repro.runtime.byzantine import ByzantineApi


@dataclass
class LyingReporter:
    """Replays every CommitteeReport slot it observes with *different*
    fabricated values per receiver — attacking the majority-of-reports
    adoption rule."""

    def step(self, api: ByzantineApi) -> None:
        sessions = {
            e.payload.session
            for e in api.inbox
            if isinstance(e.payload, CommitteeReport)
        }
        for session in sessions:
            for index, pid in enumerate(api.config.processes):
                if pid == api.pid:
                    continue
                api.send(
                    pid,
                    CommitteeReport(session=session, value=f"lie-{index % 3}"),
                )


@dataclass
class SplitReporter:
    """A committee member that reports value A to even pids and value B
    to odd pids in *every* report round (it shadows the protocol's own
    schedule by reacting to observed reports)."""

    def step(self, api: ByzantineApi) -> None:
        sessions = {
            e.payload.session
            for e in api.inbox
            if isinstance(e.payload, CommitteeReport)
        }
        for session in sessions:
            for pid in api.config.processes:
                if pid == api.pid:
                    continue
                value = "split-A" if pid % 2 == 0 else "split-B"
                api.send(pid, CommitteeReport(session=session, value=value))


class TestReportAttacks:
    @pytest.mark.parametrize("seed", range(3))
    def test_lying_reporters_cannot_split(self, seed, config7):
        byzantine = {2: LyingReporter(), 5: LyingReporter()}
        inputs = {
            p: "honest" for p in config7.processes if p not in byzantine
        }
        result = run_fallback_ba(
            config7, inputs, byzantine=byzantine, seed=seed
        )
        assert result.unanimous_decision() == "honest"

    @pytest.mark.parametrize("seed", range(3))
    def test_split_reporters_with_mixed_inputs(self, seed, config7):
        """Mixed honest inputs + report-splitting Byzantine members:
        agreement must hold and the decision must be an honest input
        (fabricated report values can never be *certified* values, and
        with honest-majority committees they never reach a majority of
        reports either)."""
        byzantine = {1: SplitReporter(), 4: SplitReporter()}
        inputs = {
            p: f"v{p % 2}" for p in config7.processes if p not in byzantine
        }
        result = run_fallback_ba(
            config7, inputs, byzantine=byzantine, seed=seed
        )
        decision = result.unanimous_decision()
        assert decision in set(inputs.values())


class TestByzantineConcentration:
    def test_first_half_fully_byzantine(self):
        """n=9, t=4: corrupt processes 0-3 — the A-half of the top-level
        split is almost entirely Byzantine, so the B-half's phase must
        deliver agreement (the pigeonhole case of the proof)."""
        config = SystemConfig.with_optimal_resilience(9)
        byzantine = {p: GarbageSpammer() for p in range(4)}
        inputs = {
            p: "survive" for p in config.processes if p not in byzantine
        }
        result = run_fallback_ba(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "survive"

    def test_second_half_fully_byzantine(self):
        config = SystemConfig.with_optimal_resilience(9)
        byzantine = {p: GarbageSpammer() for p in range(5, 9)}
        inputs = {
            p: "survive" for p in config.processes if p not in byzantine
        }
        result = run_fallback_ba(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "survive"

    @pytest.mark.parametrize("seed", range(3))
    def test_concentration_with_mixed_inputs(self, seed):
        config = SystemConfig.with_optimal_resilience(9)
        byzantine = {p: SilentBehavior() for p in range(4)}
        inputs = {
            p: f"v{p % 3}" for p in config.processes if p not in byzantine
        }
        result = run_fallback_ba(
            config, inputs, byzantine=byzantine, seed=seed
        )
        assert result.unanimous_decision() in set(inputs.values())


class TestEmbeddedFallbackUnderAttack:
    def test_weak_ba_fallback_with_lying_reporters(self, config7):
        """End to end: quorum blocked (f = t via two silents + one
        liar), the fallback runs with 2δ rounds inside weak BA, and the
        liar attacks its committee reports."""
        from repro.core.validity import ExternalValidity
        from repro.core.weak_ba import run_weak_ba

        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        byzantine = {
            1: SilentBehavior(),
            3: SilentBehavior(),
            5: LyingReporter(),
        }
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = run_weak_ba(
            config7, inputs, validity, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
        assert result.fallback_was_used()
