"""Order-independence: protocols survive arbitrary within-tick delivery
order (the synchronous model never promised sender-sorted inboxes)."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.core.strong_ba import strong_ba_protocol
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import weak_ba_protocol
from repro.errors import SchedulerError
from repro.runtime.scheduler import Simulation

VALIDITY = ExternalValidity(lambda v: isinstance(v, str))


def run_ordered(config, factory, order, seed=0, byzantine=None):
    simulation = Simulation(config, seed=seed, inbox_order=order)
    byzantine = byzantine or {}
    for pid, behavior in byzantine.items():
        simulation.add_byzantine(pid, behavior)
    for pid in config.processes:
        if pid not in byzantine:
            simulation.add_process(pid, factory)
    return simulation.run()


class TestOrderIndependence:
    def test_invalid_order_rejected(self, config5):
        with pytest.raises(SchedulerError):
            Simulation(config5, inbox_order="chaotic")

    @pytest.mark.parametrize("seed", range(4))
    def test_bb_decision_unchanged_under_shuffle(self, seed, config7):
        factory = lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
        sorted_run = run_ordered(config7, factory, "sender", seed)
        shuffled_run = run_ordered(config7, factory, "random", seed)
        assert (
            sorted_run.unanimous_decision()
            == shuffled_run.unanimous_decision()
            == "v"
        )
        assert sorted_run.correct_words == shuffled_run.correct_words

    @pytest.mark.parametrize("seed", range(4))
    def test_weak_ba_safe_under_shuffle_with_failures(self, seed, config7):
        factory = lambda ctx: weak_ba_protocol(ctx, "v", VALIDITY)
        byzantine = {p: SilentBehavior() for p in (1, 4)}
        result = run_ordered(
            config7, factory, "random", seed, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"

    @pytest.mark.parametrize("seed", range(4))
    def test_strong_ba_safe_under_shuffle(self, seed, config7):
        factory = lambda ctx: strong_ba_protocol(ctx, 1)
        result = run_ordered(config7, factory, "random", seed)
        assert result.unanimous_decision() == 1

    def test_shuffle_is_seed_deterministic(self, config7):
        factory = lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")

        def fingerprint(seed):
            result = run_ordered(config7, factory, "random", seed)
            return [
                (r.tick, r.sender, r.receiver) for r in result.ledger.records
            ]

        assert fingerprint(3) == fingerprint(3)
