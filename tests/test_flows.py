"""Tests for the message-flow analysis helpers."""

from repro.analysis.flows import (
    activity_timeline,
    flow_matrix,
    leader_centrality,
    render_flow_matrix,
    sequence_diagram,
    silent_ticks,
    words_per_tick,
)
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import byzantine_broadcast_protocol
from repro.runtime.scheduler import Simulation


def run_bb_recorded(n=5, seed=0):
    config = SystemConfig.with_optimal_resilience(n)
    simulation = Simulation(config, seed=seed, record_envelopes=True)
    for pid in config.processes:
        simulation.add_process(
            pid, lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
        )
    return simulation.run()


class TestLedgerFlows:
    def test_words_per_tick_sums_to_total(self):
        result = run_bb_recorded()
        assert sum(words_per_tick(result.ledger).values()) == result.correct_words

    def test_flow_matrix_sums_and_diagonal(self):
        result = run_bb_recorded()
        matrix = flow_matrix(result.ledger, result.config.n)
        assert sum(sum(row) for row in matrix) == result.correct_words
        assert all(matrix[i][i] == 0 for i in range(result.config.n))

    def test_leader_centrality_highlights_phase_leader(self):
        """In a failure-free BB, phase 1's leader (p1) handles the most
        traffic after the weak-BA exchange."""
        result = run_bb_recorded()
        centrality = leader_centrality(result.ledger, result.config.n)
        assert centrality[1] == max(centrality.values())
        assert abs(sum(centrality.values()) - 1.0) < 1e-9

    def test_silent_ticks_dominate_adaptive_runs(self):
        """Most of a failure-free run is literally silent — that is the
        adaptivity story in one number."""
        result = run_bb_recorded()
        assert len(silent_ticks(result)) > result.ticks / 2


class TestRendering:
    def test_timeline_mentions_payloads_and_events(self):
        result = run_bb_recorded()
        text = activity_timeline(result)
        assert "BbSenderValue" in text
        assert "phase_non_silent" in text
        assert "decided" in text

    def test_flow_matrix_render_shape(self):
        result = run_bb_recorded()
        text = render_flow_matrix(flow_matrix(result.ledger, result.config.n))
        assert text.count("\n") == result.config.n  # header + n rows

    def test_sequence_diagram_lists_messages(self):
        result = run_bb_recorded()
        text = sequence_diagram(result.envelopes, max_messages=10)
        assert "p0 -> p1" in text
        assert "truncated" in text  # more than 10 messages exist

    def test_envelope_recording_off_by_default(self):
        config = SystemConfig.with_optimal_resilience(5)
        simulation = Simulation(config, seed=0)
        for pid in config.processes:
            simulation.add_process(
                pid, lambda ctx: byzantine_broadcast_protocol(ctx, 0, "v")
            )
        result = simulation.run()
        assert result.envelopes == ()
