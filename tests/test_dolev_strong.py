"""Tests for the Dolev–Strong baseline broadcast."""

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import DolevStrongEquivocatingSender
from repro.config import SystemConfig
from repro.core.values import BOTTOM
from repro.fallback.dolev_strong import (
    SignatureChain,
    initial_chain,
    run_dolev_strong,
)


class TestChains:
    def test_initial_chain_verifies(self, config7, suite7):
        chain = initial_chain(suite7.signer(2), "v")
        assert chain.verify(suite7.registry, sender=2)
        assert chain.words() == 1
        assert chain.signatures() == 1

    def test_extension_verifies_and_grows_words(self, config7, suite7):
        chain = initial_chain(suite7.signer(2), "v")
        chain = chain.extended(suite7.signer(3)).extended(suite7.signer(4))
        assert chain.verify(suite7.registry, sender=2)
        assert chain.words() == 3
        assert chain.signers == (2, 3, 4)

    def test_wrong_sender_rejected(self, suite7):
        chain = initial_chain(suite7.signer(2), "v")
        assert not chain.verify(suite7.registry, sender=1)

    def test_duplicate_signer_rejected(self, suite7):
        chain = initial_chain(suite7.signer(2), "v").extended(suite7.signer(2))
        assert not chain.verify(suite7.registry, sender=2)

    def test_tampered_value_rejected(self, suite7):
        chain = initial_chain(suite7.signer(2), "v")
        tampered = SignatureChain(value="w", chain=chain.chain)
        assert not tampered.verify(suite7.registry, sender=2)

    def test_empty_chain_rejected(self, suite7):
        assert not SignatureChain(value="v", chain=()).verify(
            suite7.registry, sender=0
        )


class TestBroadcast:
    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_correct_sender_failure_free(self, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = run_dolev_strong(config, sender=0, value="hello")
        assert result.unanimous_decision() == "hello"

    def test_correct_sender_with_silent_failures(self, config7):
        byzantine = {2: SilentBehavior(), 5: SilentBehavior()}
        result = run_dolev_strong(
            config7, sender=0, value="msg", byzantine=byzantine
        )
        assert result.unanimous_decision() == "msg"

    def test_silent_sender_decides_bottom(self, config7):
        result = run_dolev_strong(
            config7, sender=0, value=None, byzantine={0: SilentBehavior()}
        )
        assert result.unanimous_decision() == BOTTOM

    def test_equivocating_sender_agreement(self, config7):
        """The classical attack: both chains reach everyone via relays,
        so everyone extracts both values and decides ⊥ together."""
        result = run_dolev_strong(
            config7,
            sender=0,
            value=None,
            byzantine={0: DolevStrongEquivocatingSender("A", "B")},
        )
        assert result.unanimous_decision() == BOTTOM


class TestComplexity:
    def test_words_exceed_messages(self, config7):
        """Chains make words strictly dominate messages — the gap the
        paper's Section 4 highlights."""
        result = run_dolev_strong(config7, sender=0, value="m")
        assert result.correct_words > result.ledger.correct_messages

    def test_runs_t_plus_one_rounds(self, config7):
        result = run_dolev_strong(config7, sender=0, value="m")
        assert result.ticks == config7.t + 2  # t+1 rounds + final delivery
