"""Tests for the observability layer (:mod:`repro.obs`).

The contract under test has three legs:

1. **Deterministic telemetry** — fixed histogram buckets, sorted
   snapshots, simulated clocks: two identical runs produce
   byte-identical observer state.
2. **Observers record, never steer** — attaching an observer changes
   nothing about a run: same decisions, same word bill, same trace,
   and (the strongest form) identical model-checker exploration
   results.
3. **Machine-readable outputs** — the export format round-trips
   ``meta``/``obs``/``phase``, the run summary computes the paper's
   headlines (per-phase words, silent ratio, fallback skew), and the
   benchmark JSON schema accepts/rejects what it should.
"""

import dataclasses
import json

import pytest

from repro.adversary.behaviors import SilentBehavior
from repro.analysis.export import load_run, run_to_dict, save_run
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.mc.explore import explore_exhaustive
from repro.mc.scenario import make_scenario
from repro.obs import (
    DEFAULT_BUCKETS,
    EventLog,
    Histogram,
    MetricsRegistry,
    NullObserver,
    Observer,
    active_or_none,
    summarize_export,
    validate_bench_result,
)
from repro.obs.summary import render_summary

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


def run_instrumented(n=7, byzantine_pids=(1, 3), seed=0, observer=None):
    config = SystemConfig.with_optimal_resilience(n)
    byzantine = {p: SilentBehavior() for p in byzantine_pids}
    inputs = {p: "v" for p in config.processes if p not in byzantine}
    params = RunParameters(seed=seed, observer=observer)
    return run_weak_ba(
        config, inputs, VALIDITY, byzantine=byzantine, seed=seed, params=params
    )


class TestRegistry:
    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("words")
        counter.inc(3)
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.value == 3

    def test_histogram_buckets_are_fixed_and_placement_is_boundary_inclusive(self):
        h = Histogram(buckets=(1, 10, 100))
        for value in (0, 1, 2, 10, 11, 1000):
            h.observe(value)
        # counts[i] holds observations <= buckets[i]; last is overflow.
        assert h.counts == [2, 2, 1, 1]
        assert h.total == 6
        assert h.min == 0 and h.max == 1000

    def test_histogram_refuses_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10, 1))

    def test_registry_refuses_to_rebucket_an_existing_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1, 2, 3))

    def test_snapshot_is_sorted_and_json_compatible(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("aardvark").inc(2)
        registry.gauge("final").set(7.0)
        registry.histogram("h", buckets=DEFAULT_BUCKETS).observe(3)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["aardvark", "zebra"]
        json.dumps(snap)  # must not raise


class TestEventLog:
    def test_events_are_sequenced_and_jsonl_round_trips(self):
        log = EventLog()
        log.append("decided", at=4.0, pid=2)
        log.append("truncated", at=9.0)
        lines = [json.loads(line) for line in log.to_jsonl().splitlines()]
        assert [e["seq"] for e in lines] == [0, 1]
        assert lines[0] == {"seq": 0, "at": 4.0, "name": "decided", "pid": 2}

    def test_non_json_fields_are_coerced_to_repr(self):
        log = EventLog()
        log.append("odd", at=0.0, payload=frozenset({1}), nested={"k": (1, 2)})
        event = log.events[0]
        assert event["payload"] == repr(frozenset({1}))
        assert event["nested"] == {"k": [1, 2]}


class TestObserver:
    def test_simulated_clock_follows_ticks(self):
        obs = Observer()
        obs.on_tick(5)
        assert obs.time() == 5.0
        obs.event("marker")
        assert obs.events.events[0]["at"] == 5.0

    def test_span_measures_tick_deltas_on_the_simulated_clock(self):
        obs = Observer()
        obs.set_time(10)
        with obs.span("phase"):
            obs.set_time(14)
        hist = obs.registry.snapshot()["histograms"]["span.phase"]
        assert hist["count"] == 1 and hist["sum"] == 4.0

    def test_wall_clock_spans_report_nonnegative_seconds(self):
        obs = Observer.wall()
        with obs.span("real"):
            pass
        hist = obs.registry.snapshot()["histograms"]["span.real"]
        assert hist["count"] == 1 and hist["sum"] >= 0.0

    def test_null_observer_records_nothing(self):
        obs = NullObserver()
        obs.count("x")
        obs.event("y")
        obs.on_tick(3)
        with obs.span("z"):
            pass
        assert obs.snapshot() == {
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
            "events": 0,
        }

    def test_active_or_none_collapses_disabled_observers(self):
        assert active_or_none(None) is None
        assert active_or_none(NullObserver()) is None
        obs = Observer()
        assert active_or_none(obs) is obs


class TestRunInstrumentation:
    def test_observer_counters_match_the_word_ledger(self):
        obs = Observer()
        result = run_instrumented(observer=obs)
        counters = obs.registry.snapshot()["counters"]
        assert counters["words.correct"] == result.correct_words
        assert counters["messages.total"] == len(result.ledger.records)
        assert counters["words.total"] == sum(
            r.words for r in result.ledger.records
        )
        assert counters["signatures.total"] == result.ledger.signature_count()
        assert counters["sim.ticks"] == result.ticks
        # Phase-stamped traffic lands in per-phase series.
        assert any(name.startswith("words.phase.") for name in counters)

    def test_telemetry_is_deterministic_across_identical_runs(self):
        first, second = Observer(), Observer()
        run_instrumented(observer=first)
        run_instrumented(observer=second)
        assert first.snapshot() == second.snapshot()
        assert first.events.to_jsonl() == second.events.to_jsonl()

    def test_observer_never_changes_the_run(self):
        plain = run_instrumented(observer=None)
        disabled = run_instrumented(observer=NullObserver())
        observed = run_instrumented(observer=Observer())
        for other in (disabled, observed):
            assert other.decisions == plain.decisions
            assert other.correct_words == plain.correct_words
            assert other.ticks == plain.ticks
            assert other.trace.events == plain.trace.events

    def test_run_result_carries_the_active_observer(self):
        obs = Observer()
        assert run_instrumented(observer=obs).observer is obs
        assert run_instrumented(observer=NullObserver()).observer is None


class TestModelCheckerUnchanged:
    @staticmethod
    def _scenario():
        return make_scenario("weak-ba", n=4, t=1, max_ticks=12, perm_cap=2)

    def test_behavior_pruned_exploration_is_repeatable(self):
        """Regression: ``SilentBehavior`` lacked a stable repr, so the
        behavior fingerprint hashed a memory address and pruning varied
        between explorations in the same process."""
        first = explore_exhaustive(self._scenario(), max_runs=10_000)
        second = explore_exhaustive(self._scenario(), max_runs=10_000)
        assert dataclasses.asdict(first.stats) == dataclasses.asdict(
            second.stats
        )

    def test_exploration_identical_with_observer_attached(self):
        """The strongest form of 'observers record, never steer': the
        exhaustive exploration visits the same state space, prunes the
        same schedules, and reaches the same verdicts whether or not
        every simulation carries a recording observer."""
        plain = explore_exhaustive(self._scenario(), max_runs=10_000)

        observers = []
        scenario = self._scenario()
        orig_build = scenario.build

        def build_with_observer(choices):
            sim = orig_build(choices)
            obs = Observer()
            sim.observer = active_or_none(obs)
            observers.append(obs)
            return sim

        instrumented = explore_exhaustive(
            dataclasses.replace(scenario, build=build_with_observer),
            max_runs=10_000,
        )

        assert dataclasses.asdict(plain.stats) == dataclasses.asdict(
            instrumented.stats
        )
        assert plain.complete == instrumented.complete
        assert len(plain.counterexamples) == len(instrumented.counterexamples)
        # Not vacuous: the observers really recorded the explored runs.
        assert observers and any(
            o.registry.snapshot()["counters"].get("words.total", 0) > 0
            for o in observers
        )


class TestExportRoundTrip:
    def test_export_carries_meta_obs_and_phase(self, tmp_path):
        obs = Observer()
        result = run_instrumented(observer=obs)
        meta = {"protocol": "weak-ba", "seed": 0, "num_phases": 7}
        path = save_run(result, tmp_path / "run.json", meta=meta)
        loaded = load_run(path)
        assert loaded.meta == meta
        assert loaded.obs == obs.snapshot()
        assert loaded.correct_words == result.correct_words
        phases = {r.phase for r in loaded.ledger.records}
        assert any(isinstance(p, int) for p in phases)

    def test_loader_accepts_version_1_exports(self, tmp_path):
        result = run_instrumented()
        raw = run_to_dict(result)
        raw["format_version"] = 1
        del raw["meta"], raw["obs"]
        for record in raw["records"]:
            del record["phase"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(raw))
        loaded = load_run(path)
        assert loaded.meta == {} and loaded.obs is None
        assert loaded.correct_words == result.correct_words

    def test_loader_rejects_unknown_versions(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_run(path)


class TestSummary:
    def test_real_run_summary_reports_the_paper_headlines(self):
        obs = Observer()
        result = run_instrumented(observer=obs)
        raw = run_to_dict(
            result, meta={"protocol": "weak-ba", "num_phases": 7}
        )
        summary = summarize_export(raw)
        assert summary["totals"]["correct_words"] == result.correct_words
        phases = summary["phases"]
        assert phases["planned"] == 7
        assert phases["non_silent"] + phases["silent"] == 7
        assert sum(
            int(w) for w in summary["words_by_phase"].values()
        ) <= result.correct_words
        # With two silent Byzantine processes some planned phases must
        # have gone silent — the adaptivity headline.
        assert phases["silent"] > 0
        assert 0 < phases["silent_ratio"] < 1
        rendered = render_summary(summary)
        assert "silent ratio" in rendered and "words by phase" in rendered

    def test_fallback_entry_skew_from_events(self):
        raw = {
            "records": [],
            "events": [
                {"name": "fallback_started", "pid": 0, "tick": 20},
                {"name": "fallback_started", "pid": 1, "tick": 21},
                {"name": "fallback_started", "pid": 0, "tick": 25},  # dup
            ],
            "meta": {"num_phases": 3},
            "summary": {},
        }
        fallback = summarize_export(raw)["fallback"]
        assert fallback["used"] is True
        assert fallback["entry_ticks"] == {"0": 20, "1": 21}
        assert fallback["entry_skew"] == 1

    def test_byzantine_traffic_is_excluded_from_phase_words(self):
        raw = {
            "records": [
                {"tick": 1, "words": 5, "phase": 1, "sender_correct": True},
                {"tick": 1, "words": 9, "phase": 1, "sender_correct": False},
                {"tick": 2, "words": 2, "phase": 2, "sender_correct": True},
            ],
            "events": [],
            "meta": {"num_phases": 4},
            "summary": {},
        }
        summary = summarize_export(raw)
        assert summary["words_by_phase"] == {"1": 5, "2": 2}
        assert summary["phases"]["silent"] == 2
        assert summary["hot_spots"]["busiest_ticks"][0] == {
            "tick": 1,
            "words": 5,
        }


class TestBenchSchema:
    @staticmethod
    def _valid_doc():
        return {
            "schema_version": 1,
            "name": "bench",
            "git_rev": "abc123",
            "scenario": {"n": 9},
            "word_bills": [
                {
                    "label": "f=0",
                    "n": 9,
                    "t": 2,
                    "f": 0,
                    "words": 40,
                    "messages": 40,
                    "signatures": 8,
                    "fallback": False,
                }
            ],
            "wall_clock": {
                "unit": "seconds",
                "repeats": 3,
                "percentiles": {"p50": 0.1, "p90": 0.2, "p99": 0.2},
            },
            "sections": ["report text"],
        }

    def test_valid_document_passes(self):
        assert validate_bench_result(self._valid_doc()) == []

    def test_null_wall_clock_and_empty_bills_are_allowed(self):
        doc = self._valid_doc()
        doc["wall_clock"] = None
        doc["word_bills"] = []
        assert validate_bench_result(doc) == []

    def test_bool_words_do_not_pass_as_ints(self):
        doc = self._valid_doc()
        doc["word_bills"][0]["words"] = True
        assert any(
            "words must be a int" in e for e in validate_bench_result(doc)
        )

    def test_missing_keys_and_bad_version_are_reported(self):
        errors = validate_bench_result({"schema_version": 2})
        joined = "\n".join(errors)
        assert "schema_version" in joined
        assert "name" in joined and "scenario" in joined
        assert "word_bills" in joined


class TestEmptyRunAudit:
    """The empty-run path: a run with no planned phases summarizes to
    ``silent_ratio: None``, and that ``None`` must survive the whole
    trail — render, schema validation, and ``publish`` — instead of
    failing at whichever layer meets it first."""

    def test_empty_export_summarizes_and_renders_with_none_ratio(self):
        raw = {"records": [], "events": [], "meta": {}, "summary": {}}
        summary = summarize_export(raw)
        assert summary["phases"]["silent_ratio"] is None
        rendered = render_summary(summary)
        assert "silent ratio" not in rendered  # no fake 0.0% for an empty run
        assert "(no phase-stamped traffic)" in rendered

    def test_none_scenario_values_pass_schema_validation(self):
        doc = {
            "schema_version": 1,
            "name": "empty-run",
            "git_rev": None,
            "scenario": {"silent_ratio": None, "nested": {"also": None}},
            "word_bills": [],
            "wall_clock": None,
            "sections": ["empty"],
        }
        assert validate_bench_result(doc) == []

    def test_non_json_scenario_values_are_schema_errors_not_crashes(self):
        doc = {
            "schema_version": 1,
            "name": "bad",
            "git_rev": None,
            "scenario": {"ratio": {1: "non-string key"}, "obj": object()},
            "word_bills": [],
            "wall_clock": None,
            "sections": [],
        }
        errors = validate_bench_result(doc)
        assert any("key 1" in e for e in errors)
        assert any("scenario.obj" in e for e in errors)

    def test_publish_round_trips_a_none_bearing_scenario(
        self, tmp_path, monkeypatch, capsys
    ):
        import benchmarks._harness as harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.publish(
            "empty-run", "no traffic",
            scenario={"silent_ratio": None}, wall_clock=None,
        )
        document = json.loads((tmp_path / "empty-run.json").read_text())
        assert document["scenario"]["silent_ratio"] is None
        assert validate_bench_result(document) == []

    def test_time_percentiles_refuses_zero_repeats(self):
        from benchmarks._harness import time_percentiles

        with pytest.raises(ValueError, match="wall_clock=None"):
            time_percentiles(lambda: None, repeats=0)
