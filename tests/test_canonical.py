"""Unit tests for the canonical byte encoding."""

from dataclasses import dataclass
from enum import Enum

import pytest

from repro.crypto.canonical import encode


@dataclass(frozen=True)
class Point:
    x: int
    y: int


@dataclass(frozen=True)
class Other:
    x: int
    y: int


class Color(Enum):
    RED = 1
    BLUE = 2


class TestAtoms:
    def test_none(self):
        assert encode(None) == b"N"

    def test_bool_distinct_from_int(self):
        assert encode(True) != encode(1)
        assert encode(False) != encode(0)

    def test_ints(self):
        values = [0, 1, -1, 255, 256, -256, 2**128, -(2**128)]
        encodings = {encode(v) for v in values}
        assert len(encodings) == len(values)

    def test_str_vs_bytes_distinct(self):
        assert encode("ab") != encode(b"ab")

    def test_bytearray_equals_bytes(self):
        assert encode(bytearray(b"xy")) == encode(b"xy")

    def test_enum_includes_class_name(self):
        assert encode(Color.RED) != encode(Color.BLUE)


class TestComposites:
    def test_tuple_and_list_equivalent(self):
        assert encode((1, 2)) == encode([1, 2])

    def test_nesting_is_unambiguous(self):
        assert encode(((1,), 2)) != encode((1, (2,)))
        assert encode(("a", "bc")) != encode(("ab", "c"))

    def test_empty_containers(self):
        assert encode(()) != encode((None,))
        assert encode(frozenset()) != encode(())

    def test_frozenset_order_independent(self):
        assert encode(frozenset({1, 2, 3})) == encode(frozenset({3, 1, 2}))

    def test_dataclass_includes_type_name(self):
        assert encode(Point(1, 2)) != encode(Other(1, 2))

    def test_dataclass_field_sensitivity(self):
        assert encode(Point(1, 2)) != encode(Point(2, 1))

    def test_deterministic(self):
        value = (Point(1, 2), [3, "x"], frozenset({b"y"}), Color.RED, None)
        assert encode(value) == encode(value)


class TestRejection:
    def test_rejects_plain_objects(self):
        with pytest.raises(TypeError):
            encode(object())

    def test_rejects_dict(self):
        with pytest.raises(TypeError):
            encode({"a": 1})

    def test_rejects_nested_bad_value(self):
        with pytest.raises(TypeError):
            encode((1, object()))
