"""Tests for the multivalued adaptive strong-BA variant, parametrized
over every backend (cohen's Section-3 extension, civit's multivalued
certification stack).  Both satisfy the same Definition-2 contract —
strong unanimity with ⊥ permitted in mixed runs — so the bodies are
shared verbatim; only trace event names come from the backend
(``asba_non_silent_event`` / ``asba_certified_event``)."""

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.config import SystemConfig
from repro.core.values import BOTTOM


class TestStrongUnanimity:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_unanimous_failure_free(self, backend, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = backend.run_adaptive_strong_ba(
            config, {p: "V" for p in config.processes}
        )
        assert result.unanimous_decision() == "V"
        assert not result.fallback_was_used()

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_unanimous_with_silent_failures(self, backend, f, config7):
        byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
        inputs = {p: "V" for p in config7.processes if p not in byzantine}
        result = backend.run_adaptive_strong_ba(
            config7, inputs, byzantine=byzantine
        )
        assert result.unanimous_decision() == "V"

    def test_multivalued_inputs_supported(self, backend, config7):
        """Unlike the binary strong BA, the extension is multi-valued."""
        result = backend.run_adaptive_strong_ba(
            config7,
            {p: ("big", "structured", p < 100) for p in config7.processes},
        )
        assert result.unanimous_decision() == ("big", "structured", True)


class TestNonUnanimousRuns:
    def test_majority_value_can_win(self, backend, config7):
        """t+1 processes sharing a value can certify it."""
        inputs = {p: ("A" if p < 5 else "B") for p in config7.processes}
        result = backend.run_adaptive_strong_ba(config7, inputs)
        assert result.unanimous_decision() in ("A", BOTTOM)

    def test_all_distinct_inputs_decide_bottom(self, backend, config7):
        """No value reaches t+1 shares; Definition 2 permits ⊥."""
        inputs = {p: f"v{p}" for p in config7.processes}
        result = backend.run_adaptive_strong_ba(config7, inputs)
        assert result.unanimous_decision() == BOTTOM

    def test_byzantine_cannot_certify_its_own_value(self, backend, config7):
        """Even a full coalition (t processes) is one share short of an
        input certificate, so a value no correct process proposed can
        never be decided — the heart of the certification observation
        both stacks rest on."""
        byzantine = {p: GarbageSpammer() for p in (1, 3, 5)}
        inputs = {
            p: "honest" for p in config7.processes if p not in byzantine
        }
        result = backend.run_adaptive_strong_ba(
            config7, inputs, byzantine=byzantine
        )
        assert result.unanimous_decision() in ("honest", BOTTOM)


class TestAdaptivity:
    def test_unanimous_runs_are_adaptive(self, backend):
        """O(n(f+1)) in the unanimous case: words/n stays flat in n."""
        words = {}
        for n in (5, 9, 17):
            config = SystemConfig.with_optimal_resilience(n)
            result = backend.run_adaptive_strong_ba(
                config, {p: "V" for p in config.processes}
            )
            assert not result.fallback_was_used()
            words[n] = result.correct_words
        assert words[17] / 17 < 2 * words[5] / 5

    def test_one_non_silent_cert_phase_when_unanimous(self, backend, config7):
        result = backend.run_adaptive_strong_ba(
            config7, {p: "V" for p in config7.processes}
        )
        assert result.trace.count(backend.asba_non_silent_event) == 1

    def test_certificates_spread_to_everyone(self, backend, config7):
        result = backend.run_adaptive_strong_ba(
            config7, {p: "V" for p in config7.processes}
        )
        certified = {
            e.pid for e in result.trace.named(backend.asba_certified_event)
        }
        assert certified == set(config7.processes)
