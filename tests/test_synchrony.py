"""Synchrony models and the paced round scheduler.

Covers the ISSUE-9 tentpole surface: the :mod:`repro.runtime.synchrony`
model algebra (delivery laws, timeout policy, seeded purity,
reseeding), the scheduler's shared round clock (certificate-∨-timeout
advancement, drift staggering, round-unit ``ctx.now``), and the
satellite regressions — δ=2 lockstep billing identically to δ=1, and
``gst=0`` partial synchrony reproducing the lockstep trajectory.
"""

import pytest

from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.errors import ConfigurationError, SchedulerError
from repro.runtime.scheduler import Simulation
from repro.runtime.synchrony import (
    LOCKSTEP,
    Lockstep,
    PartialSynchrony,
    parse_synchrony,
)

config5 = SystemConfig(n=5, t=1)


def string_validity(suite, config):
    return ExternalValidity(lambda v: isinstance(v, str) and not v.startswith("!"))


def run_weak(model, max_ticks=5000, seed=0):
    params = RunParameters(max_ticks=max_ticks, synchrony=model)
    return run_weak_ba(
        config5,
        {p: "v" for p in config5.processes},
        string_validity,
        seed=seed,
        params=params,
    )


class TestModelAlgebra:
    def test_lockstep_delta1_is_trivial(self):
        assert LOCKSTEP.trivial
        assert Lockstep(delta=1).trivial
        assert not Lockstep(delta=2).trivial
        assert not PartialSynchrony(gst=0).trivial

    def test_lockstep_delivery_law(self):
        model = Lockstep(delta=3)
        assert model.delivery_tick(0, 0, 10, 0) == 11  # self: local hop
        assert model.delivery_tick(0, 1, 10, 0) == 13

    def test_lockstep_never_escalates(self):
        model = Lockstep(delta=2)
        assert model.timeout_base() == 2
        assert model.next_timeout(2) == 2
        assert not model.early_advance

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Lockstep(delta=0)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(gst=-1)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(pre_gst_levels=1)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(backoff=0.5)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(timeout=0)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(timeout=4, timeout_cap=3)
        with pytest.raises(ConfigurationError):
            PartialSynchrony(drift=-1)

    def test_backoff_escalates_and_caps(self):
        model = PartialSynchrony(gst=0, timeout=1, backoff=2.0, timeout_cap=6)
        seen = [1]
        while True:
            grown = model.next_timeout(seen[-1])
            if grown == seen[-1]:
                break
            seen.append(grown)
        assert seen == [1, 2, 4, 6]

    def test_post_gst_delivery_respects_delta(self):
        model = PartialSynchrony(gst=4, delta=3, seed=7)
        for sender in config5.processes:
            for receiver in config5.processes:
                if sender == receiver:
                    continue
                for tick in (4, 5, 20):
                    d = model.delivery_tick(sender, receiver, tick, 0)
                    assert tick + 1 <= d <= tick + 3

    def test_post_gst_link_latency_is_fixed_per_run(self):
        model = PartialSynchrony(gst=0, delta=4, seed=11)
        latencies = {
            model.delivery_tick(0, 1, tick, 0) - tick for tick in range(20)
        }
        assert len(latencies) == 1  # the link's seeded latency persists

    def test_pre_gst_delivery_bounded_by_stabilization(self):
        model = PartialSynchrony(gst=10, delta=2, pre_gst_cap=100, seed=3)
        for tick in range(10):
            for seq in range(4):
                d = model.delivery_tick(0, 1, tick, seq)
                assert tick + 1 <= d <= 10 + 2

    def test_self_sends_never_delayed(self):
        model = PartialSynchrony(gst=50, seed=9)
        assert model.delivery_tick(2, 2, 5, 0) == 6

    def test_delivery_is_pure(self):
        model = PartialSynchrony(gst=6, delta=2, seed=5)
        a = [model.delivery_tick(1, 3, 2, s) for s in range(8)]
        b = [model.delivery_tick(1, 3, 2, s) for s in range(8)]
        assert a == b

    def test_delay_options_include_both_endpoints(self):
        model = PartialSynchrony(gst=9, delta=1, pre_gst_levels=3)
        options = model._delay_options(3, 10)
        assert options[0] == 3 and options[-1] == 10
        assert len(options) == 3 and options == sorted(set(options))
        # A degenerate span collapses without duplicates.
        assert model._delay_options(5, 5) == [5]
        assert model._delay_options(5, 6) == [5, 6]

    def test_reseeded_rederives_every_subschedule(self):
        base = PartialSynchrony(gst=8, delta=3, seed=1, drift=2)
        other = base.reseeded(2)
        assert other == PartialSynchrony(gst=8, delta=3, seed=2, drift=2)
        # Same laws, different draws somewhere in each seeded stream.
        assert any(
            base.delivery_tick(s, r, t, 0) != other.delivery_tick(s, r, t, 0)
            for s in config5.processes
            for r in config5.processes
            for t in range(8)
            if s != r
        )
        assert any(
            base.drift_for(p, k) != other.drift_for(p, k)
            for p in config5.processes
            for k in range(16)
        )
        assert base.reseeded(1) == base

    def test_drift_is_bounded(self):
        model = PartialSynchrony(gst=0, drift=3, seed=13)
        draws = {
            model.drift_for(p, k) for p in config5.processes for k in range(50)
        }
        assert draws <= set(range(4))
        assert len(draws) > 1

    def test_describe(self):
        assert "delta=2" in Lockstep(delta=2).describe()
        text = PartialSynchrony(gst=5, seed=3).describe()
        assert "gst=5" in text and "seed=3" in text


class TestParseSynchrony:
    def test_specs(self):
        assert parse_synchrony("lockstep") == Lockstep()
        assert parse_synchrony("lockstep:3") == Lockstep(delta=3)
        assert parse_synchrony("gst:4") == PartialSynchrony(gst=4)
        assert parse_synchrony("gst:4:2") == PartialSynchrony(gst=4, delta=2)

    @pytest.mark.parametrize(
        "spec", ["", "gst", "gst:x", "lockstep:2:3", "banana", "gst:1:2:3"]
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ConfigurationError):
            parse_synchrony(spec)


class TestSchedulerIntegration:
    def test_trivial_path_untouched(self):
        sim = Simulation(config5)
        assert not sim._paced
        assert sim.pacer_fingerprint() == ()

    def test_rejects_non_model(self):
        with pytest.raises(SchedulerError):
            Simulation(config5, synchrony="gst:3")

    def test_paced_excludes_recovery(self, tmp_path):
        from repro.recovery.manager import RecoveryManager

        with pytest.raises(SchedulerError, match="lockstep"):
            Simulation(
                config5,
                synchrony=Lockstep(delta=2),
                recovery=RecoveryManager(tmp_path),
            )

    def test_delta2_lockstep_bills_identically_to_delta1(self):
        """Satellite regression: stretching every round 2× in ticks is
        protocol-invisible — same decisions, same word bill, same
        per-scope breakdown, twice the wall-clock ticks (minus the
        stretch-free decision tick)."""
        base = run_weak(None)
        stretched = run_weak(Lockstep(delta=2))
        assert stretched.decisions == base.decisions
        assert stretched.ledger.total_words == base.ledger.total_words
        assert stretched.ledger.words_by_scope() == base.ledger.words_by_scope()
        assert stretched.ticks > base.ticks

    def test_gst_zero_matches_lockstep_trajectory(self):
        """Fully synchronous timing under the paced scheduler: the
        shared round clock advances by certificate/base-timeout every
        tick, reproducing the lockstep run exactly."""
        base = run_weak(None)
        paced = run_weak(PartialSynchrony(gst=0))
        assert paced.decisions == base.decisions
        assert paced.ledger.total_words == base.ledger.total_words
        assert paced.ticks == base.ticks

    @pytest.mark.parametrize("gst", [2, 5, 9])
    def test_gst_runs_decide_unanimously(self, gst):
        result = run_weak(PartialSynchrony(gst=gst))
        assert set(result.decisions.values()) == {"v"}
        assert not result.truncated

    def test_drift_staggered_run_still_decides(self):
        result = run_weak(PartialSynchrony(gst=3, drift=2, seed=4))
        assert set(result.decisions.values()) == {"v"}

    def test_gst_run_is_seed_deterministic(self):
        a = run_weak(PartialSynchrony(gst=4, seed=7))
        b = run_weak(PartialSynchrony(gst=4, seed=7))
        assert a.decisions == b.decisions
        assert a.ticks == b.ticks
        assert a.ledger.total_words == b.ledger.total_words

    def test_now_counts_rounds_not_ticks(self):
        """Under a paced model ``ctx.now`` reports the round index, so
        protocol timers written in round units keep their meaning."""
        observed = {}

        def clockwatcher(ctx):
            first = ctx.now
            yield
            yield
            observed[ctx.pid] = (first, ctx.now)
            return "done"

        sim = Simulation(
            config5, synchrony=Lockstep(delta=3), max_ticks=100
        )
        for pid in config5.processes:
            sim.add_process(pid, clockwatcher)
        result = sim.run()
        assert set(result.decisions.values()) == {"done"}
        for first, last in observed.values():
            assert (first, last) == (0, 2)
        # Three-tick rounds: the run took ~3 ticks per round, not 1.
        assert result.ticks >= 6

    def test_paced_observability(self):
        from repro.obs.observer import Observer

        obs = Observer()
        params = RunParameters(
            max_ticks=5000,
            synchrony=PartialSynchrony(gst=4),
            observer=obs,
        )
        result = run_weak_ba(
            config5,
            {p: "v" for p in config5.processes},
            string_validity,
            params=params,
        )
        assert set(result.decisions.values()) == {"v"}
        counters = obs.snapshot()["metrics"]["counters"]
        assert counters.get("sync.cert_advance", 0) > 0
        assert counters.get("sync.timeout_fired", 0) > 0
