"""Tests for counterexample shrinking and the JSON replay artifact."""

import json

import pytest

from repro.errors import ModelCheckError
from repro.mc.explore import Counterexample, explore_exhaustive
from repro.mc.scenario import make_scenario
from repro.mc.shrink import (
    REPLAY_FORMAT,
    load_replay,
    replay,
    replay_artifact,
    save_replay,
    shrink,
)


def _broken_scenario(**overrides):
    params = dict(
        n=4,
        t=1,
        adversary="equivocating-leader",
        max_ticks=24,
        reorder=True,
        perm_cap=2,
        quorum_delta=-1,
    )
    params.update(overrides)
    return make_scenario("weak-ba", **params)


def _counterexample(scenario):
    result = explore_exhaustive(scenario, stop_at_first=True)
    assert not result.ok
    return result.counterexamples[0]


class TestShrink:
    def test_shrinks_padded_decisions_to_the_minimum(self):
        # The equivocation violates agreement on the canonical schedule
        # already, so any decorated decision sequence must shrink to ().
        scenario = _broken_scenario()
        padded = Counterexample(
            scenario=scenario.name,
            params=dict(scenario.params),
            decisions=(1, 0, 1, 0, 0),
            kinds=("agreement",),
            summary="padded",
            truncated=False,
        )
        shrunk = shrink(scenario, padded)
        assert shrunk.decisions == ()
        assert shrunk.original == (1, 0, 1, 0, 0)
        assert shrunk.kinds == ("agreement",)
        assert shrunk.tests > 1

    def test_shrunk_sequence_still_reproduces(self):
        scenario = _broken_scenario()
        ce = _counterexample(scenario)
        shrunk = shrink(scenario, ce)
        assert len(shrunk.decisions) <= len(ce.decisions)
        outcome = replay(replay_artifact(scenario, shrunk.decisions))
        assert {v.kind for v in outcome.report.violations} >= set(ce.kinds)

    def test_non_reproducing_counterexample_rejected(self):
        # A sound scenario cannot reproduce an "agreement" violation.
        scenario = make_scenario("weak-ba", n=4, t=1, max_ticks=12, reorder=False)
        bogus = Counterexample(
            scenario=scenario.name,
            params=dict(scenario.params),
            decisions=(),
            kinds=("agreement",),
            summary="bogus",
            truncated=False,
        )
        with pytest.raises(ModelCheckError):
            shrink(scenario, bogus)


class TestReplayArtifact:
    def test_roundtrip_through_nested_directory(self, tmp_path):
        scenario = _broken_scenario()
        artifact = replay_artifact(scenario, ())
        assert artifact["format"] == REPLAY_FORMAT
        assert artifact["scenario"] == "weak-ba"
        assert any(v["kind"] == "agreement" for v in artifact["violations"])
        path = save_replay(tmp_path / "deep" / "nested" / "ce.json", artifact)
        assert path.exists()
        assert load_replay(path) == artifact

    def test_replay_reconstructs_scenario_from_params(self, tmp_path):
        scenario = _broken_scenario()
        path = save_replay(tmp_path / "ce.json", replay_artifact(scenario, ()))
        outcome = replay(load_replay(path))
        assert any(v.kind == "agreement" for v in outcome.report.violations)

    def test_replay_detects_divergence(self):
        scenario = _broken_scenario()
        artifact = replay_artifact(scenario, ())
        artifact["violations"] = [{"kind": "word-budget", "detail": "forged"}]
        with pytest.raises(ModelCheckError, match="diverged"):
            replay(artifact)

    def test_replay_without_verify_skips_the_check(self):
        scenario = _broken_scenario()
        artifact = replay_artifact(scenario, ())
        artifact["violations"] = []
        outcome = replay(artifact, verify=False)
        assert outcome.report is not None

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-mc-replay/99"}))
        with pytest.raises(ModelCheckError, match="format"):
            load_replay(path)

    def test_pruned_run_cannot_become_artifact(self):
        # replay_artifact runs without a fingerprinter, so runs never
        # prune; guard the invariant at the API level regardless.
        scenario = _broken_scenario()
        artifact = replay_artifact(scenario, ())
        assert artifact["decisions"] == []
