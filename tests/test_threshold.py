"""Unit tests for the Shamir-based threshold signature scheme."""

import random

import pytest

from repro.crypto.threshold import ThresholdScheme, ThresholdSignature
from repro.errors import (
    DuplicateShareError,
    InsufficientSharesError,
    ThresholdError,
    UnknownSignerError,
)


@pytest.fixture
def scheme() -> ThresholdScheme:
    return ThresholdScheme("test", k=4, n=7, seed=b"s")


class TestPartials:
    def test_partial_verifies(self, scheme):
        partial = scheme.partial_sign(2, "msg")
        assert scheme.verify_partial(partial, "msg")

    def test_partial_wrong_message_rejected(self, scheme):
        partial = scheme.partial_sign(2, "msg")
        assert not scheme.verify_partial(partial, "other")

    def test_partial_from_wrong_scheme_rejected(self, scheme):
        other = ThresholdScheme("other", k=4, n=7, seed=b"s")
        partial = other.partial_sign(2, "msg")
        assert not scheme.verify_partial(partial, "msg")

    def test_unknown_share_holder(self, scheme):
        with pytest.raises(UnknownSignerError):
            scheme.partial_sign(10, "msg")


class TestCombine:
    def test_any_k_subset_combines_to_same_signature(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(7)]
        sig_a = scheme.combine(partials[:4])
        sig_b = scheme.combine(partials[3:])
        assert sig_a.value == sig_b.value
        assert scheme.verify(sig_a, "m")
        assert scheme.verify(sig_b, "m")

    def test_combined_signature_is_one_word(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        assert scheme.combine(partials).words() == 1

    def test_insufficient_shares_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        with pytest.raises(InsufficientSharesError):
            scheme.combine(partials)
        with pytest.raises(InsufficientSharesError):
            scheme.combine([])

    def test_duplicate_signer_rejected(self, scheme):
        partial = scheme.partial_sign(0, "m")
        others = [scheme.partial_sign(pid, "m") for pid in range(1, 4)]
        with pytest.raises(DuplicateShareError):
            scheme.combine([partial, partial, *others])

    def test_mixed_messages_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        partials.append(scheme.partial_sign(3, "different"))
        with pytest.raises(ThresholdError):
            scheme.combine(partials)

    def test_mixed_schemes_rejected(self, scheme):
        other = ThresholdScheme("other", k=4, n=7, seed=b"s")
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        partials.append(other.partial_sign(3, "m"))
        with pytest.raises(ThresholdError):
            scheme.combine(partials)


class TestVerification:
    def test_wrong_message_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        signature = scheme.combine(partials)
        assert not scheme.verify(signature, "other")

    def test_forged_value_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        signature = scheme.combine(partials)
        forged = ThresholdSignature(
            scheme_id=signature.scheme_id,
            digest=signature.digest,
            value=(signature.value + 1),
            signers=signature.signers,
        )
        assert not scheme.verify(forged, "m")

    def test_below_threshold_forgery_fails(self, scheme):
        """k-1 colluding holders cannot produce a verifying signature by
        interpolating what they have."""
        from repro.crypto import field

        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        points = [(p.signer + 1, p.value) for p in partials]
        guess = field.interpolate_at_zero(points)
        forged = ThresholdSignature(
            scheme_id=partials[0].scheme_id,
            digest=partials[0].digest,
            value=guess,
            signers=frozenset(range(3)),
        )
        assert not scheme.verify(forged, "m")


class TestCommitteeRestriction:
    def test_members_only_hold_shares(self):
        scheme = ThresholdScheme(
            "committee", k=2, n=7, seed=b"s", members=frozenset({1, 3, 5})
        )
        assert scheme.members == frozenset({1, 3, 5})
        partial = scheme.partial_sign(3, "m")
        assert scheme.verify_partial(partial, "m")
        with pytest.raises(UnknownSignerError):
            scheme.partial_sign(0, "m")

    def test_k_bounded_by_committee_size(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("c", k=4, n=7, seed=b"s", members=frozenset({1, 2}))

    def test_members_outside_range_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("c", k=1, n=3, seed=b"s", members=frozenset({5}))

    def test_invalid_k_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("bad", k=0, n=5)
        with pytest.raises(ThresholdError):
            ThresholdScheme("bad", k=6, n=5)

class TestCacheTransparency:
    """The memoization layers (Lagrange coefficients, sign/combine/
    verify memos, digest cache) must be observationally invisible: a
    cache-disabled scheme is the executable spec, and the cached scheme
    must agree with it on every operation — including rejections."""

    def test_cached_and_uncached_schemes_never_diverge(self):
        rng = random.Random(0xC0FFEE)
        cached = ThresholdScheme("prop", k=4, n=9, seed=b"p", cache=True)
        uncached = ThresholdScheme("prop", k=4, n=9, seed=b"p", cache=False)
        for trial in range(30):
            message = ("stmt", trial, rng.randrange(10_000))
            signers = rng.sample(range(9), rng.randrange(4, 10))
            partials = [cached.partial_sign(pid, message) for pid in signers]
            reference = [uncached.partial_sign(pid, message) for pid in signers]
            assert partials == reference

            signature = cached.combine(partials)
            assert signature == uncached.combine(reference)
            # Same signer subset again: the memoized path must return
            # the identical signature, and so must a disjoint subset.
            assert cached.combine(partials) == signature
            assert cached.verify(signature, message)
            assert uncached.verify(signature, message)

            # Rejections agree too (cached verdicts store both polarities).
            assert not cached.verify(signature, ("stmt", trial, "other"))
            assert not uncached.verify(signature, ("stmt", trial, "other"))
            forged = ThresholdSignature(
                scheme_id=signature.scheme_id,
                digest=signature.digest,
                value=signature.value + 1,
                signers=signature.signers,
            )
            assert not cached.verify(forged, message)
            assert not uncached.verify(forged, message)

    def test_lagrange_cache_matches_direct_computation(self):
        from repro.crypto.field import lagrange_coefficients_at_zero

        rng = random.Random(7)
        for _ in range(50):
            xs = tuple(
                sorted(rng.sample(range(1, 40), rng.randrange(1, 12)))
            )
            assert lagrange_coefficients_at_zero(
                xs, cache=True
            ) == lagrange_coefficients_at_zero(xs, cache=False)

    def test_batch_partial_verification_matches_sequential(self):
        rng = random.Random(11)
        scheme = ThresholdScheme("batch", k=3, n=7, seed=b"b")
        for trial in range(20):
            message = ("m", trial)
            partials = [scheme.partial_sign(pid, message) for pid in range(7)]
            if trial % 2:  # corrupt one share; the batch must not mask it
                victim = rng.randrange(7)
                bad = partials[victim]
                partials[victim] = type(bad)(
                    scheme_id=bad.scheme_id,
                    signer=bad.signer,
                    digest=bad.digest,
                    value=bad.value + 1,
                )
            sequential = [scheme.verify_partial(p, message) for p in partials]
            batch = scheme.verify_partials(partials, message)
            assert batch == sequential


class TestKeyEpochs:
    """Cache keys carry the key epoch: rotating keys must invalidate
    every cached verdict, so a signature from a stale epoch can never
    verify against the fresh keys via a leftover cache entry."""

    def test_epoch_changes_dealt_shares(self):
        epoch0 = ThresholdScheme("rot", k=3, n=5, seed=b"r", epoch=0)
        epoch1 = ThresholdScheme("rot", k=3, n=5, seed=b"r", epoch=1)
        partials0 = [epoch0.partial_sign(pid, "m") for pid in range(3)]
        partials1 = [epoch1.partial_sign(pid, "m") for pid in range(3)]
        assert [p.value for p in partials0] != [p.value for p in partials1]

    def test_stale_epoch_signature_rejected_despite_warm_cache(self):
        epoch0 = ThresholdScheme("rot", k=3, n=5, seed=b"r", epoch=0)
        epoch1 = ThresholdScheme("rot", k=3, n=5, seed=b"r", epoch=1)
        partials = [epoch0.partial_sign(pid, "m") for pid in range(3)]
        signature = epoch0.combine(partials)
        # Warm epoch-0's verify cache with the accepting verdict first.
        assert epoch0.verify(signature, "m")
        assert not epoch1.verify(signature, "m")
        # And per-partial verdicts do not leak across epochs either.
        assert all(epoch0.verify_partial(p, "m") for p in partials)
        assert not any(epoch1.verify_partial(p, "m") for p in partials)

    def test_suite_key_rotation_invalidates_certificates(self, config7):
        from repro.crypto.certificates import CryptoSuite

        suite = CryptoSuite(config7, seed=42)
        partials = [
            suite.partial_for_certificate(pid, "lbl", config7.small_quorum, "s")
            for pid in range(config7.small_quorum)
        ]
        certificate = suite.combine_certificate(
            "lbl", config7.small_quorum, "s", partials
        )
        assert certificate.verify(suite)  # warm the certificate cache
        assert suite.verify_certificate(certificate, "lbl", config7.small_quorum)

        suite.rotate_keys()
        assert suite.epoch == 1
        assert not certificate.verify(suite)
        assert not suite.verify_certificate(
            certificate, "lbl", config7.small_quorum
        )
        # The rotated suite still certifies fresh statements end to end.
        fresh = suite.combine_certificate(
            "lbl",
            config7.small_quorum,
            "s",
            [
                suite.partial_for_certificate(
                    pid, "lbl", config7.small_quorum, "s"
                )
                for pid in range(config7.small_quorum)
            ],
        )
        assert fresh.verify(suite)
