"""Unit tests for the Shamir-based threshold signature scheme."""

import pytest

from repro.crypto.threshold import ThresholdScheme, ThresholdSignature
from repro.errors import (
    DuplicateShareError,
    InsufficientSharesError,
    ThresholdError,
    UnknownSignerError,
)


@pytest.fixture
def scheme() -> ThresholdScheme:
    return ThresholdScheme("test", k=4, n=7, seed=b"s")


class TestPartials:
    def test_partial_verifies(self, scheme):
        partial = scheme.partial_sign(2, "msg")
        assert scheme.verify_partial(partial, "msg")

    def test_partial_wrong_message_rejected(self, scheme):
        partial = scheme.partial_sign(2, "msg")
        assert not scheme.verify_partial(partial, "other")

    def test_partial_from_wrong_scheme_rejected(self, scheme):
        other = ThresholdScheme("other", k=4, n=7, seed=b"s")
        partial = other.partial_sign(2, "msg")
        assert not scheme.verify_partial(partial, "msg")

    def test_unknown_share_holder(self, scheme):
        with pytest.raises(UnknownSignerError):
            scheme.partial_sign(10, "msg")


class TestCombine:
    def test_any_k_subset_combines_to_same_signature(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(7)]
        sig_a = scheme.combine(partials[:4])
        sig_b = scheme.combine(partials[3:])
        assert sig_a.value == sig_b.value
        assert scheme.verify(sig_a, "m")
        assert scheme.verify(sig_b, "m")

    def test_combined_signature_is_one_word(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        assert scheme.combine(partials).words() == 1

    def test_insufficient_shares_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        with pytest.raises(InsufficientSharesError):
            scheme.combine(partials)
        with pytest.raises(InsufficientSharesError):
            scheme.combine([])

    def test_duplicate_signer_rejected(self, scheme):
        partial = scheme.partial_sign(0, "m")
        others = [scheme.partial_sign(pid, "m") for pid in range(1, 4)]
        with pytest.raises(DuplicateShareError):
            scheme.combine([partial, partial, *others])

    def test_mixed_messages_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        partials.append(scheme.partial_sign(3, "different"))
        with pytest.raises(ThresholdError):
            scheme.combine(partials)

    def test_mixed_schemes_rejected(self, scheme):
        other = ThresholdScheme("other", k=4, n=7, seed=b"s")
        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        partials.append(other.partial_sign(3, "m"))
        with pytest.raises(ThresholdError):
            scheme.combine(partials)


class TestVerification:
    def test_wrong_message_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        signature = scheme.combine(partials)
        assert not scheme.verify(signature, "other")

    def test_forged_value_rejected(self, scheme):
        partials = [scheme.partial_sign(pid, "m") for pid in range(4)]
        signature = scheme.combine(partials)
        forged = ThresholdSignature(
            scheme_id=signature.scheme_id,
            digest=signature.digest,
            value=(signature.value + 1),
            signers=signature.signers,
        )
        assert not scheme.verify(forged, "m")

    def test_below_threshold_forgery_fails(self, scheme):
        """k-1 colluding holders cannot produce a verifying signature by
        interpolating what they have."""
        from repro.crypto import field

        partials = [scheme.partial_sign(pid, "m") for pid in range(3)]
        points = [(p.signer + 1, p.value) for p in partials]
        guess = field.interpolate_at_zero(points)
        forged = ThresholdSignature(
            scheme_id=partials[0].scheme_id,
            digest=partials[0].digest,
            value=guess,
            signers=frozenset(range(3)),
        )
        assert not scheme.verify(forged, "m")


class TestCommitteeRestriction:
    def test_members_only_hold_shares(self):
        scheme = ThresholdScheme(
            "committee", k=2, n=7, seed=b"s", members=frozenset({1, 3, 5})
        )
        assert scheme.members == frozenset({1, 3, 5})
        partial = scheme.partial_sign(3, "m")
        assert scheme.verify_partial(partial, "m")
        with pytest.raises(UnknownSignerError):
            scheme.partial_sign(0, "m")

    def test_k_bounded_by_committee_size(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("c", k=4, n=7, seed=b"s", members=frozenset({1, 2}))

    def test_members_outside_range_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("c", k=1, n=3, seed=b"s", members=frozenset({5}))

    def test_invalid_k_rejected(self):
        with pytest.raises(ThresholdError):
            ThresholdScheme("bad", k=0, n=5)
        with pytest.raises(ThresholdError):
            ThresholdScheme("bad", k=6, n=5)
