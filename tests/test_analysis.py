"""Tests for the analysis package: fitting, sweeps, tables."""

import math

import pytest

from repro.analysis.fitting import crossover_point, fit_loglog_slope, fit_slope_vs
from repro.analysis.sweeps import (
    sweep_byzantine_broadcast,
    sweep_strong_ba,
    sweep_weak_ba,
)
from repro.analysis.tables import ascii_series_plot, format_table, render_points


class TestFitting:
    def test_linear_data(self):
        xs = [2, 4, 8, 16]
        ys = [3 * x for x in xs]
        fit = fit_loglog_slope(xs, ys)
        assert fit.slope == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(32) == pytest.approx(96.0)

    def test_quadratic_data(self):
        xs = [2, 4, 8, 16]
        ys = [5 * x * x for x in xs]
        fit = fit_loglog_slope(xs, ys)
        assert fit.slope == pytest.approx(2.0)

    def test_noisy_data_r_squared_below_one(self):
        xs = [2, 4, 8, 16]
        ys = [2.1, 4.4, 7.2, 17.5]
        fit = fit_loglog_slope(xs, ys)
        assert 0.9 < fit.r_squared < 1.0
        assert 0.8 < fit.slope < 1.2

    def test_requires_two_distinct_xs(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([3, 3], [1, 2])
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [1])

    def test_fit_slope_vs_accessors(self):
        points = [(2, 4), (4, 16), (8, 64)]
        fit = fit_slope_vs(points, lambda p: p[0], lambda p: p[1])
        assert fit.slope == pytest.approx(2.0)

    def test_crossover(self):
        xs = [1, 2, 3, 4]
        assert crossover_point(xs, [1, 2, 9, 16], [5, 5, 5, 5]) == 3
        assert crossover_point(xs, [1, 1, 1, 1], [5, 5, 5, 5]) is None

    def test_crossover_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_point([1], [1, 2], [1, 2])


class TestSweeps:
    def test_bb_sweep_shapes(self):
        points = sweep_byzantine_broadcast([5, 7], fs=lambda c: [0, 1])
        assert len(points) == 4
        for p in points:
            assert p.protocol == "bb"
            assert p.decision == "payload"
            assert p.words > 0
            assert p.f in (0, 1)

    def test_weak_ba_sweep(self):
        points = sweep_weak_ba([5], fs=lambda c: [0])
        (p,) = points
        assert p.decision == "proposal"
        assert not p.fallback_used

    def test_strong_ba_fallback_flag(self):
        quiet = sweep_strong_ba([5], fs=lambda c: [0])
        noisy = sweep_strong_ba([5], fs=lambda c: [2])
        assert not quiet[0].fallback_used
        assert noisy[0].fallback_used

    def test_normalized_ratios(self):
        (p,) = sweep_byzantine_broadcast([5], fs=lambda c: [0])
        assert p.words_per_nf == pytest.approx(p.words / 5)
        assert p.words_per_n2 == pytest.approx(p.words / 25)

    def test_multiple_seeds(self):
        points = sweep_weak_ba([5], fs=lambda c: [1], seeds=(0, 1, 2))
        assert len(points) == 3
        assert {p.seed for p in points} == {0, 1, 2}


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        table = format_table(["x"], [[math.pi]])
        assert "3.142" in table

    def test_render_points_includes_extras(self):
        points = sweep_byzantine_broadcast([5], fs=lambda c: [0])
        text = render_points(points, extra={"w/n": lambda p: p.words / p.n})
        assert "w/n" in text
        assert "bb" in text

    def test_ascii_series_plot(self):
        text = ascii_series_plot(
            [1, 2], {"a": [1, 2], "b": [2, 4]}, title="demo"
        )
        assert "demo" in text
        assert "x=1" in text and "x=2" in text
        assert "#" in text

class TestParallelSweeps:
    """``sweep_parallel`` fans grid points out to worker processes; the
    results must be bit-identical to the serial sweep, in the same
    order, for every protocol key (including the CLI's hyphenated
    aliases)."""

    def test_parallel_sweep_matches_serial(self):
        from repro.analysis.sweeps import sweep_parallel, sweep_weak_ba

        serial = sweep_weak_ba([3, 5], seeds=(0, 1))
        for jobs in (1, 2):
            assert sweep_parallel(
                "weak_ba", [3, 5], seeds=(0, 1), jobs=jobs
            ) == serial

    def test_cli_alias_spellings_accepted(self):
        from repro.analysis.sweeps import (
            sweep_fallback_ba,
            sweep_parallel,
        )

        assert sweep_parallel("weak-ba", [3], jobs=1)
        assert sweep_parallel("fallback", [3], jobs=1) == sweep_fallback_ba([3])

    def test_unknown_protocol_rejected(self):
        from repro.analysis.sweeps import sweep_parallel

        with pytest.raises(ValueError):
            sweep_parallel("nope", [3], jobs=2)
