"""Property-based tests (hypothesis) on core invariants.

Two families:

* algebraic properties of the crypto substrate (any polynomial, any
  share subset, any message);
* protocol properties (agreement / termination / validity / complexity
  accounting) under randomized adversary placement and behavior mixes.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.adversary.protocol_attacks import WeakBaTeasingLeader
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM
from repro.core.weak_ba import run_weak_ba
from repro.crypto import field
from repro.crypto.canonical import encode
from repro.crypto.threshold import ThresholdScheme
from repro.fallback.recursive_ba import run_fallback_ba

# ----------------------------------------------------------------------
# Crypto algebra
# ----------------------------------------------------------------------

field_elements = st.integers(min_value=0, max_value=field.PRIME - 1)


class TestFieldProperties:
    @given(field_elements, field_elements)
    def test_add_commutes(self, a, b):
        assert field.add(a, b) == field.add(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_mul_distributes(self, a, b, c):
        assert field.mul(a, field.add(b, c)) == field.add(
            field.mul(a, b), field.mul(a, c)
        )

    @given(st.integers(min_value=1, max_value=field.PRIME - 1))
    def test_inverse(self, a):
        assert field.mul(a, field.inv(a)) == 1

    @given(
        st.lists(field_elements, min_size=1, max_size=5),
        st.sets(st.integers(min_value=1, max_value=40), min_size=5, max_size=8),
    )
    def test_interpolation_recovers_constant_term(self, coefficients, xs):
        poly = field.Polynomial(tuple(coefficients))
        points = [(x, poly.evaluate(x)) for x in sorted(xs)[: len(coefficients)]]
        if len(points) >= len(coefficients):
            assert field.interpolate_at_zero(points) == poly.evaluate(0)


class TestEncodingProperties:
    scalars = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),
        st.text(max_size=20),
        st.binary(max_size=20),
    )
    values = st.recursive(
        scalars, lambda children: st.lists(children, max_size=4), max_leaves=10
    )

    @given(values)
    def test_deterministic(self, value):
        assert encode(value) == encode(value)

    @given(values, values)
    def test_injective_on_samples(self, a, b):
        canonical_a = tuple(a) if isinstance(a, list) else a
        canonical_b = tuple(b) if isinstance(b, list) else b
        if encode(a) == encode(b):
            assert _normalize(canonical_a) == _normalize(canonical_b)


def _normalize(value):
    """Lists and tuples encode identically by design."""
    if isinstance(value, (list, tuple)):
        return tuple(_normalize(v) for v in value)
    return value


class TestThresholdProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=4),
        st.binary(min_size=1, max_size=8),
    )
    def test_any_quorum_combines_and_verifies(self, k, extra, seed):
        n = k + extra + 1
        scheme = ThresholdScheme("p", k=k, n=n, seed=seed)
        partials = [scheme.partial_sign(pid, ("m", 1)) for pid in range(n)]
        signature = scheme.combine(partials[extra : extra + k])
        assert scheme.verify(signature, ("m", 1))
        assert not scheme.verify(signature, ("m", 2))


# ----------------------------------------------------------------------
# Protocol properties under randomized adversaries
# ----------------------------------------------------------------------

protocol_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _behavior(kind, value="tease"):
    if kind == "silent":
        return lambda pid: SilentBehavior()
    if kind == "garbage":
        return lambda pid: GarbageSpammer()
    return lambda pid: WeakBaTeasingLeader(value=value)


class TestByzantineBroadcastProperties:
    @protocol_settings
    @given(
        n=st.sampled_from([3, 5, 7]),
        f_fraction=st.floats(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["silent", "garbage"]),
    )
    def test_validity_with_correct_sender(self, n, f_fraction, seed, kind):
        """Whatever the adversary does with up to t non-sender
        corruptions, all correct processes decide the sender's value."""
        config = SystemConfig.with_optimal_resilience(n)
        f = round(f_fraction * config.t)
        import random

        rng = random.Random(seed)
        targets = rng.sample([p for p in config.processes if p != 0], f)
        byzantine = {pid: _behavior(kind)(pid) for pid in targets}
        result = run_byzantine_broadcast(
            config, sender=0, value="V", byzantine=byzantine, seed=seed
        )
        assert result.unanimous_decision() == "V"

    @protocol_settings
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_ledger_scope_conservation(self, seed):
        config = SystemConfig.with_optimal_resilience(5)
        result = run_byzantine_broadcast(config, sender=0, value="V", seed=seed)
        assert (
            sum(result.ledger.words_by_scope().values()) == result.correct_words
        )
        assert (
            sum(result.ledger.words_by_sender().values()) == result.correct_words
        )


class TestWeakBaProperties:
    @protocol_settings
    @given(
        n=st.sampled_from([5, 7]),
        f=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.booleans(),
    )
    def test_agreement_and_unique_validity(self, n, f, seed, split):
        config = SystemConfig.with_optimal_resilience(n)
        f = min(f, config.t)
        import random

        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {pid: SilentBehavior() for pid in targets}
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        inputs = {
            p: ("common" if not split else f"v{p % 2}")
            for p in config.processes
            if p not in byzantine
        }
        result = run_weak_ba(
            config, inputs, validity, byzantine=byzantine, seed=seed
        )
        decision = result.unanimous_decision()
        if decision == BOTTOM:
            # Unique validity: ⊥ only when several valid values existed.
            assert len(set(inputs.values())) > 1
        else:
            assert isinstance(decision, str)
        if not split:
            # Single valid value in the run: it must win.
            assert decision == "common"


class TestStrongBaProperties:
    @protocol_settings
    @given(
        f=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
        value=st.sampled_from([0, 1]),
    )
    def test_strong_unanimity(self, f, seed, value):
        config = SystemConfig.with_optimal_resilience(7)
        import random

        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {pid: SilentBehavior() for pid in targets}
        inputs = {
            p: value for p in config.processes if p not in byzantine
        }
        result = run_strong_ba(config, inputs, byzantine=byzantine, seed=seed)
        assert result.unanimous_decision() == value


class TestFallbackProperties:
    @protocol_settings
    @given(
        n=st.sampled_from([3, 5, 7, 9]),
        seed=st.integers(min_value=0, max_value=10_000),
        mixed=st.booleans(),
    )
    def test_agreement_any_inputs(self, n, seed, mixed):
        config = SystemConfig.with_optimal_resilience(n)
        inputs = {
            p: (f"v{p % 3}" if mixed else "v") for p in config.processes
        }
        result = run_fallback_ba(config, inputs, seed=seed)
        decision = result.unanimous_decision()
        assert decision in set(inputs.values())
        if not mixed:
            assert decision == "v"


class TestSilentPhaseBound:
    @protocol_settings
    @given(
        f=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_non_silent_phases_bounded_by_f_plus_one(self, f, seed):
        """Section 6.1: with silent failures below the fallback
        threshold, at most f+1 weak-BA phases are non-silent."""
        config = SystemConfig.with_optimal_resilience(13)
        import random

        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {pid: SilentBehavior() for pid in targets}
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, str)
        )
        inputs = {p: "v" for p in config.processes if p not in byzantine}
        result = run_weak_ba(
            config, inputs, validity, byzantine=byzantine, seed=seed
        )
        if not result.fallback_was_used():
            assert result.trace.count("phase_non_silent") <= f + 1
