"""Value-domain stress: the protocols are value-agnostic, so every
layer (canonical encoding, threshold statements, pools, certificates)
must handle rich payload values — nested tuples, bytes, enums, long
strings, signed wrappers — not just the short strings most tests use.
"""

from enum import Enum

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba
from repro.fallback.recursive_ba import run_fallback_ba


class Color(Enum):
    RED = 1
    BLUE = 2


RICH_VALUES = [
    ("nested", ("tuples", ("all", "the", "way")), 42),
    b"\x00\x01binary payload\xff",
    "x" * 500,
    (True, False, None, 0, -1, 2**100),
    Color.RED,
    ((), (), ()),
]

value_strategy = st.one_of(
    st.text(max_size=50),
    st.binary(max_size=50),
    st.integers(),
    st.tuples(st.text(max_size=10), st.integers(), st.booleans()),
    st.sampled_from(RICH_VALUES),
)


class TestBroadcastValueDomains:
    @pytest.mark.parametrize("value", RICH_VALUES, ids=repr)
    def test_bb_carries_rich_values(self, value, config5):
        result = run_byzantine_broadcast(config5, sender=0, value=value)
        assert result.unanimous_decision() == value

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(value=value_strategy, seed=st.integers(min_value=0, max_value=99))
    def test_bb_property_over_value_domain(self, value, seed):
        config = SystemConfig.with_optimal_resilience(5)
        result = run_byzantine_broadcast(
            config, sender=0, value=value, seed=seed
        )
        assert result.unanimous_decision() == value


class TestAgreementValueDomains:
    def test_weak_ba_over_tuple_values(self, config5):
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, tuple)
        )
        value = ("command", ("nested", 1), b"blob")
        result = run_weak_ba(
            config5, {p: value for p in config5.processes}, validity
        )
        assert result.unanimous_decision() == value

    def test_fallback_over_mixed_rich_inputs(self, config5):
        inputs = {
            p: RICH_VALUES[p % len(RICH_VALUES)] for p in config5.processes
        }
        result = run_fallback_ba(config5, inputs)
        assert result.unanimous_decision() in set(inputs.values())

    def test_weak_ba_many_distinct_values(self):
        """13 processes, 13 distinct valid proposals: agreement on one
        of them or ⊥, never a made-up value."""
        from repro.core.values import BOTTOM

        config = SystemConfig.with_optimal_resilience(13)
        validity = lambda suite, cfg: ExternalValidity(
            lambda v: isinstance(v, tuple) and len(v) == 2
        )
        inputs = {p: ("proposal", p) for p in config.processes}
        result = run_weak_ba(config, inputs, validity)
        decision = result.unanimous_decision()
        assert decision == BOTTOM or decision in set(inputs.values())
