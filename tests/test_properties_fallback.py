"""Property-based tests focused on the fallback substrate.

The recursive BA's correctness argument leans on two graded-consensus
properties (validity, graded agreement) and on honest-majority
committees; these tests attack them with randomized adversary
placement, mixed behaviors, and randomized inputs.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.behaviors import EchoBehavior, GarbageSpammer, SilentBehavior
from repro.adversary.protocol_attacks import GcEquivocator
from repro.config import SystemConfig
from repro.fallback.graded_consensus import graded_consensus
from repro.fallback.phase_king import run_phase_king
from repro.fallback.recursive_ba import run_fallback_ba
from repro.runtime.pool import MessagePool
from repro.runtime.scheduler import Simulation

fallback_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_gc(config, inputs, byzantine, seed=0):
    simulation = Simulation(config, seed=seed)
    members = tuple(config.processes)

    def factory(value):
        def build(ctx):
            def protocol(ctx):
                pool = MessagePool()
                return (
                    yield from graded_consensus(
                        ctx, members, value, "prop-gc", 1, pool
                    )
                )

            return protocol(ctx)

        return build

    for pid in config.processes:
        if pid in byzantine:
            simulation.add_byzantine(pid, byzantine[pid])
        else:
            simulation.add_process(pid, factory(inputs[pid]))
    return simulation.run()


def _mixed_behavior(kind, members):
    if kind == "silent":
        return SilentBehavior()
    if kind == "garbage":
        return GarbageSpammer()
    if kind == "echo":
        return EchoBehavior()
    return GcEquivocator(
        session="prop-gc", members=members, value_a="EQA", value_b="EQB"
    )


class TestGradedConsensusProperties:
    @fallback_settings
    @given(
        n=st.sampled_from([5, 7, 9]),
        f=st.integers(min_value=0, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
        kinds=st.lists(
            st.sampled_from(["silent", "garbage", "echo", "equivocate"]),
            min_size=4,
            max_size=4,
        ),
        unanimous=st.booleans(),
    )
    def test_graded_agreement_invariant(self, n, f, seed, kinds, unanimous):
        config = SystemConfig.with_optimal_resilience(n)
        f = min(f, config.t)
        members = tuple(config.processes)
        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {
            pid: _mixed_behavior(kinds[i % len(kinds)], members)
            for i, pid in enumerate(targets)
        }
        inputs = {
            p: ("V" if unanimous else f"v{p % 2}")
            for p in config.processes
            if p not in byzantine
        }
        result = run_gc(config, inputs, byzantine, seed)
        outputs = list(result.decisions.values())

        # Graded agreement: at most one grade-2 value; grade 2 forces
        # everyone to grade >= 1 on the same value.
        grade2 = {v for v, g in outputs if g == 2}
        assert len(grade2) <= 1
        if grade2:
            (winner,) = grade2
            for value, grade in outputs:
                assert grade >= 1
                assert value == winner

        # Validity: unanimous honest inputs always end grade 2.
        if unanimous:
            for value, grade in outputs:
                assert (value, grade) == ("V", 2)


class TestRecursiveBaProperties:
    @fallback_settings
    @given(
        n=st.sampled_from([5, 7, 9, 11]),
        f=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
        kind=st.sampled_from(["silent", "garbage", "echo"]),
        unanimous=st.booleans(),
    )
    def test_agreement_and_unanimity(self, n, f, seed, kind, unanimous):
        config = SystemConfig.with_optimal_resilience(n)
        f = min(f, config.t)
        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {
            pid: _mixed_behavior(kind, tuple(config.processes))
            for pid in targets
        }
        inputs = {
            p: ("V" if unanimous else f"v{p % 3}")
            for p in config.processes
            if p not in byzantine
        }
        result = run_fallback_ba(
            config, inputs, byzantine=byzantine, seed=seed
        )
        decision = result.unanimous_decision()
        if unanimous:
            assert decision == "V"
        else:
            assert decision in set(inputs.values())


class TestPhaseKingProperties:
    @fallback_settings
    @given(
        t=st.sampled_from([1, 2]),
        f=st.integers(min_value=0, max_value=2),
        seed=st.integers(min_value=0, max_value=10_000),
        value=st.sampled_from([0, 1]),
        unanimous=st.booleans(),
    )
    def test_agreement_and_unanimity(self, t, f, seed, value, unanimous):
        config = SystemConfig(n=4 * t + 1, t=t)
        f = min(f, t)
        rng = random.Random(seed)
        targets = rng.sample(list(config.processes), f)
        byzantine = {pid: SilentBehavior() for pid in targets}
        inputs = {
            p: (value if unanimous else p % 2)
            for p in config.processes
            if p not in byzantine
        }
        result = run_phase_king(config, inputs, byzantine=byzantine, seed=seed)
        decision = result.unanimous_decision()
        assert decision in (0, 1)
        if unanimous:
            assert decision == value
