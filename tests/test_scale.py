"""Larger-scale smoke tests: the protocols at n = 41 and n = 61.

These guard against accidental super-linear blowups in the *simulator*
(envelope handling, pool scans) as much as in the protocols.
"""

from repro.adversary.behaviors import SilentBehavior
from repro.config import SystemConfig
from repro.core.byzantine_broadcast import run_byzantine_broadcast
from repro.core.strong_ba import run_strong_ba
from repro.fallback.recursive_ba import run_fallback_ba


class TestLargeDeployments:
    def test_bb_n41_failure_free(self):
        config = SystemConfig.with_optimal_resilience(41)
        result = run_byzantine_broadcast(config, sender=0, value="v")
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()
        # 6 payload rounds, each <= n-1 words.
        assert result.correct_words <= 6 * config.n

    def test_bb_n61_failure_free(self):
        config = SystemConfig.with_optimal_resilience(61)
        result = run_byzantine_broadcast(config, sender=0, value="v")
        assert result.unanimous_decision() == "v"
        assert result.correct_words <= 6 * config.n

    def test_strong_ba_n41(self):
        config = SystemConfig.with_optimal_resilience(41)
        result = run_strong_ba(config, {p: 1 for p in config.processes})
        assert result.unanimous_decision() == 1
        assert result.correct_words <= 4 * config.n

    def test_bb_n41_worst_case_quadratic_band(self):
        config = SystemConfig.with_optimal_resilience(41)
        byzantine = {p: SilentBehavior() for p in range(1, config.t + 1)}
        result = run_byzantine_broadcast(
            config, sender=0, value="v", byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
        assert result.fallback_was_used()
        assert result.correct_words <= 25 * config.n**2

    def test_fallback_n41_with_failures(self):
        config = SystemConfig.with_optimal_resilience(41)
        byzantine = {p: SilentBehavior() for p in range(1, 21)}
        inputs = {
            p: "v" for p in config.processes if p not in byzantine
        }
        result = run_fallback_ba(config, inputs, byzantine=byzantine)
        assert result.unanimous_decision() == "v"

    def test_adaptive_advantage_at_scale(self):
        """n=41: the f=0 run is two orders cheaper than the f=t run —
        the paper's whole point, at a size where it matters."""
        config = SystemConfig.with_optimal_resilience(41)
        quiet = run_byzantine_broadcast(config, sender=0, value="v")
        byzantine = {p: SilentBehavior() for p in range(1, config.t + 1)}
        noisy = run_byzantine_broadcast(
            config, sender=0, value="v", byzantine=byzantine
        )
        assert noisy.correct_words > 50 * quiet.correct_words
