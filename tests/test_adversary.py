"""Tests for the adversary framework (behaviors and strategies)."""

import pytest

from repro.adversary.behaviors import (
    DelayedSilence,
    EchoBehavior,
    GarbageSpammer,
    SilentBehavior,
)
from repro.adversary.strategies import (
    CrashStrategy,
    SilentStrategy,
    StaticStrategy,
    apply_strategy,
)
from repro.config import SystemConfig
from repro.errors import ConfigurationError
from repro.runtime.scheduler import Simulation


def chatty(ctx):
    """A correct process that broadcasts every tick for 6 ticks."""
    for _ in range(6):
        ctx.broadcast(("tick", ctx.now))
        yield
    return "done"


class TestBehaviors:
    def run_with(self, config, behaviors):
        simulation = Simulation(config)
        for pid in config.processes:
            if pid in behaviors:
                simulation.add_byzantine(pid, behaviors[pid])
            else:
                simulation.add_process(pid, chatty)
        return simulation.run()

    def test_silent_sends_nothing(self, config5):
        result = self.run_with(config5, {0: SilentBehavior()})
        assert all(r.sender != 0 for r in result.ledger.records)

    def test_echo_reflects(self, config5):
        result = self.run_with(config5, {0: EchoBehavior()})
        echoes = [
            r
            for r in result.ledger.records
            if r.sender == 0 and not r.sender_correct
        ]
        assert echoes  # reflected something back

    def test_delayed_silence_cuts_off(self, config5):
        inner = GarbageSpammer()
        result = self.run_with(config5, {0: DelayedSilence(inner, silent_from=2)})
        byz_ticks = {
            r.tick for r in result.ledger.records if not r.sender_correct
        }
        assert byz_ticks and max(byz_ticks) < 2

    def test_garbage_spammer_interval(self, config5):
        result = self.run_with(config5, {0: GarbageSpammer(every=3)})
        byz_ticks = sorted(
            {r.tick for r in result.ledger.records if not r.sender_correct}
        )
        assert all(t % 3 == 0 for t in byz_ticks)


class TestStrategies:
    def test_static_plan_size_and_behavior(self, config7):
        strategy = StaticStrategy(behavior_factory=lambda pid: SilentBehavior())
        plan = strategy.plan(config7, f=3, seed=1)
        assert plan.f == 3
        assert len(plan.initial) == 3
        assert not plan.scheduled

    def test_silent_strategy_avoids(self, config7):
        strategy = SilentStrategy(avoid=frozenset({0}))
        for seed in range(10):
            plan = strategy.plan(config7, f=3, seed=seed)
            assert 0 not in plan.corrupted

    def test_plans_deterministic_per_seed(self, config7):
        strategy = SilentStrategy()
        assert (
            strategy.plan(config7, 3, seed=5).corrupted
            == strategy.plan(config7, 3, seed=5).corrupted
        )

    def test_plans_vary_across_seeds(self, config7):
        strategy = SilentStrategy()
        plans = {
            tuple(sorted(strategy.plan(config7, 3, seed=s).corrupted))
            for s in range(20)
        }
        assert len(plans) > 1

    def test_f_bounds_enforced(self, config7):
        with pytest.raises(ConfigurationError):
            SilentStrategy().plan(config7, f=4)
        with pytest.raises(ConfigurationError):
            SilentStrategy().plan(config7, f=-1)

    def test_avoid_exhaustion_rejected(self):
        config = SystemConfig(n=3, t=1)
        strategy = SilentStrategy(avoid=frozenset({0, 1, 2}))
        with pytest.raises(ConfigurationError):
            strategy.plan(config, f=1)

    def test_crash_strategy_schedules_mid_run(self, config7):
        strategy = CrashStrategy(first_tick=1, last_tick=3)
        plan = strategy.plan(config7, f=2, seed=0)
        assert not plan.initial
        assert len(plan.scheduled) == 2
        assert all(1 <= tick <= 3 for tick, _, _ in plan.scheduled)
        assert plan.f == 2

    def test_apply_strategy_populates_simulation(self, config7):
        strategy = CrashStrategy(first_tick=1, last_tick=2)
        plan = strategy.plan(config7, f=2, seed=0)
        simulation = Simulation(config7)
        apply_strategy(simulation, plan, lambda pid: chatty)
        result = simulation.run()
        assert result.corrupted == plan.corrupted
        # Crashed processes made no decision; the rest did.
        assert set(result.decisions) == set(config7.processes) - plan.corrupted
