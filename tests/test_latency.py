"""Tests for decision-latency analysis."""

from repro.adversary.behaviors import SilentBehavior
from repro.adversary.protocol_attacks import WeakBaSplitFinalizeLeader
from repro.analysis.latency import decision_latencies, latency_summary
from repro.core.strong_ba import run_strong_ba
from repro.core.validity import ExternalValidity
from repro.core.weak_ba import run_weak_ba

VALIDITY = lambda suite, cfg: ExternalValidity(lambda v: isinstance(v, str))


class TestMechanismAttribution:
    def test_failure_free_weak_ba_is_all_in_phase(self, config7):
        result = run_weak_ba(
            config7, {p: "v" for p in config7.processes}, VALIDITY
        )
        summary = latency_summary(result)
        assert summary["mechanisms"] == {"in-phase": 7}
        assert summary["spread"] == 0  # everyone decides the same round

    def test_split_finalize_with_two_byzantine_shows_later_phase_repair(
        self, config7
    ):
        """With later correct leaders available, a split finalize is
        repaired by a later *phase*, not the help round: everyone still
        decides in-phase but spread out in time."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(value="v", recipients=frozenset({2, 4}))
        }
        inputs = {p: "v" for p in config7.processes if p != 1}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        summary = latency_summary(result)
        assert summary["mechanisms"] == {"in-phase": 6}
        assert summary["spread"] > 0  # two decision waves

    def test_split_finalize_shows_help_repair(self, config7):
        """When the quorum is blocked for everyone else (f = t), the
        non-recipient can only decide via a help answer — the two
        mechanisms are visible side by side."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(
                value="v", recipients=frozenset({0, 2, 3})
            ),
            5: SilentBehavior(),
            6: SilentBehavior(),
        }
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        summary = latency_summary(result)
        assert summary["mechanisms"].get("in-phase") == 3
        assert summary["mechanisms"].get("help") == 1
        assert summary["spread"] > 0

    def test_quorum_blocked_runs_decide_by_fallback(self, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        summary = latency_summary(result)
        assert summary["mechanisms"] == {"fallback": 4}

    def test_strong_ba_fast_path_mechanism(self, config7):
        result = run_strong_ba(config7, {p: 1 for p in config7.processes})
        summary = latency_summary(result)
        assert summary["mechanisms"] == {"fast-path": 7}
        assert summary["last_decision"] <= 6


class TestPerProcessView:
    def test_latencies_cover_all_correct_processes(self, config7):
        byzantine = {2: SilentBehavior()}
        inputs = {p: "v" for p in config7.processes if p != 2}
        result = run_weak_ba(config7, inputs, VALIDITY, byzantine=byzantine)
        latencies = decision_latencies(result)
        assert [l.pid for l in latencies] == result.correct_pids
        for latency in latencies:
            assert latency.decided_at is not None
            assert latency.halted_at is not None
            assert latency.decided_at <= latency.halted_at
