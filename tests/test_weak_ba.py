"""Tests for adaptive weak BA (Algorithms 3 + 4), parametrized over
every backend.  Both registered backends currently share the same
Algorithm-3 core (``civit.weak_ba_shares_core_with == "cohen"``), so
the second parametrization is a dispatch-parity check on the Protocol
API rather than a second implementation — but any future backend with
its own weak BA inherits this whole file for free."""

import pytest

from repro.adversary.behaviors import GarbageSpammer, SilentBehavior
from repro.adversary.protocol_attacks import (
    WeakBaSplitFinalizeLeader,
    WeakBaTeasingLeader,
)
from repro.config import RunParameters, SystemConfig
from repro.core.validity import ExternalValidity
from repro.core.values import BOTTOM


def string_validity(suite, config):
    return ExternalValidity(lambda v: isinstance(v, str) and not v.startswith("!"))


class TestUnanimousRuns:
    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_failure_free_decides_common_value(self, backend, n):
        config = SystemConfig.with_optimal_resilience(n)
        result = backend.run_weak_ba(
            config, {p: "v" for p in config.processes}, string_validity
        )
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()

    def test_decision_happens_in_first_phase(self, backend, config7):
        result = backend.run_weak_ba(
            config7, {p: "v" for p in config7.processes}, string_validity
        )
        phases = [
            e.get("phase") for e in result.trace.named("wba_decided_in_phase")
        ]
        assert phases and set(phases) == {1}

    def test_exactly_one_non_silent_phase_when_failure_free(
        self, backend, config7
    ):
        result = backend.run_weak_ba(
            config7, {p: "v" for p in config7.processes}, string_validity
        )
        assert result.trace.count("phase_non_silent") == 1


class TestUniqueValidity:
    def test_unanimous_valid_value_wins(self, backend, config7):
        """With a single valid proposal in the run, it is the only
        possible decision (unique validity, Definition 3)."""
        result = backend.run_weak_ba(
            config7, {p: "only" for p in config7.processes}, string_validity
        )
        assert result.unanimous_decision() == "only"

    def test_decision_is_valid_or_bottom(self, backend, config7):
        inputs = {p: f"v{p % 3}" for p in config7.processes}
        result = backend.run_weak_ba(config7, inputs, string_validity)
        decision = result.unanimous_decision()
        assert decision == BOTTOM or (
            isinstance(decision, str) and not decision.startswith("!")
        )

    def test_bottom_implies_multiple_valid_values(self, backend, config7):
        """Contrapositive check across seeds: whenever ⊥ is decided, the
        run indeed contained more than one valid proposal."""
        for seed in range(4):
            inputs = {p: f"v{p % 2}" for p in config7.processes}
            result = backend.run_weak_ba(
                config7, inputs, string_validity, seed=seed
            )
            decision = result.unanimous_decision()
            if decision == BOTTOM:
                assert len(set(inputs.values())) > 1


class TestAdaptivityAndLemma6:
    def test_below_threshold_no_fallback(self, backend, config7):
        """Lemma 6: f < (n-t-1)/2 means the fallback never runs.
        For n=7, t=3 the threshold is 1.5, so f=1 must stay adaptive."""
        byzantine = {3: SilentBehavior()}
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = backend.run_weak_ba(
            config7, inputs, string_validity, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
        assert not result.fallback_was_used()

    def test_above_threshold_fallback_runs_and_agrees(self, backend, config7):
        byzantine = {p: SilentBehavior() for p in (1, 3, 5)}
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = backend.run_weak_ba(
            config7, inputs, string_validity, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"
        assert result.fallback_was_used()

    def test_larger_network_threshold(self, backend):
        """n=13, t=6: threshold (n-t-1)/2 = 3; f=2 adaptive, f=4 not."""
        config = SystemConfig.with_optimal_resilience(13)
        for f, expect_fallback in ((2, False), (4, True)):
            byzantine = {p: SilentBehavior() for p in range(1, f + 1)}
            inputs = {p: "v" for p in config.processes if p not in byzantine}
            result = backend.run_weak_ba(
                config, inputs, string_validity, byzantine=byzantine
            )
            assert result.unanimous_decision() == "v"
            assert result.fallback_was_used() == expect_fallback

    def test_words_adaptive_under_teasing_leaders(self, backend):
        """Byzantine leaders that propose-and-abandon cost O(n) honest
        words each — words must grow with f but stay far below n^2
        (while f is below the fallback threshold)."""
        config = SystemConfig.with_optimal_resilience(13)
        words = {}
        for f in (0, 1, 2):
            byzantine = {
                p: WeakBaTeasingLeader(value="tease") for p in range(1, f + 1)
            }
            inputs = {p: "v" for p in config.processes if p not in byzantine}
            result = backend.run_weak_ba(
                config, inputs, string_validity, byzantine=byzantine
            )
            assert result.unanimous_decision() == "v"
            assert not result.fallback_was_used()
            words[f] = result.correct_words
        assert words[1] > words[0]
        assert words[2] > words[1]


class TestSplitFinalize:
    def test_split_decisions_repaired_by_help_round(self, backend, config7):
        """A Byzantine leader finalizes to a strict subset; the rest
        must catch up via help answers, and everyone agrees."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(
                value="v", recipients=frozenset({2, 4})
            )
        }
        inputs = {p: "v" for p in config7.processes if p != 1}
        result = backend.run_weak_ba(
            config7, inputs, string_validity, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"

    def test_split_with_conflicting_later_leaders(self, backend, config7):
        """After a split finalize, later correct leaders propose their
        own values; Lemma 15's commit machinery must keep the finalize
        value unique."""
        byzantine = {
            1: WeakBaSplitFinalizeLeader(
                value="v-split", recipients=frozenset({2})
            )
        }
        inputs = {
            p: f"v{p}" for p in config7.processes if p != 1
        }  # all distinct, all valid
        result = backend.run_weak_ba(
            config7, inputs, string_validity, byzantine=byzantine
        )
        decision = result.unanimous_decision()
        assert decision == "v-split" or decision == BOTTOM or isinstance(decision, str)


class TestRobustness:
    def test_garbage_spam_does_not_break_agreement(self, backend, config7):
        byzantine = {2: GarbageSpammer(), 6: GarbageSpammer(every=2)}
        inputs = {p: "v" for p in config7.processes if p not in byzantine}
        result = backend.run_weak_ba(
            config7, inputs, string_validity, byzantine=byzantine
        )
        assert result.unanimous_decision() == "v"

    def test_pseudocode_phase_count_variant(self, backend, config7):
        """The t+1-phase variant (Algorithm 3 as printed) still reaches
        agreement and termination (DESIGN.md fidelity note 1)."""
        params = RunParameters(num_phases=config7.t + 1)
        result = backend.run_weak_ba(
            config7,
            {p: "v" for p in config7.processes},
            string_validity,
            params=params,
        )
        assert result.unanimous_decision() == "v"

    def test_all_correct_emit_decided(self, backend, config7):
        result = backend.run_weak_ba(
            config7, {p: "v" for p in config7.processes}, string_validity
        )
        deciders = {e.pid for e in result.trace.named("decided")}
        assert deciders == set(config7.processes)
