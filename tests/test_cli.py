"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestRun:
    @pytest.mark.parametrize(
        "protocol",
        ["bb", "weak-ba", "strong-ba", "adaptive-strong-ba", "fallback",
         "dolev-strong"],
    )
    def test_run_each_protocol(self, protocol, capsys):
        assert main(["run", protocol, "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out
        assert "words=" in out

    def test_run_with_failures(self, capsys):
        assert main(["run", "bb", "--n", "7", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "f=2" in out
        assert "decided 'hello'" in out

    def test_run_with_adversary_choice(self, capsys):
        assert main(
            ["run", "weak-ba", "--n", "7", "--f", "1", "--adversary", "garbage"]
        ) == 0
        assert "decided" in capsys.readouterr().out

    def test_strong_ba_bit(self, capsys):
        assert main(["run", "strong-ba", "--n", "5", "--bit", "0"]) == 0
        assert "decided 0" in capsys.readouterr().out

    def test_layer_breakdown_printed(self, capsys):
        main(["run", "bb", "--n", "5"])
        out = capsys.readouterr().out
        assert "bb/weak_ba" in out

    def test_export_flag(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        assert main(["run", "bb", "--n", "5", "--export", str(out_file)]) == 0
        assert out_file.exists()
        from repro.analysis.export import load_run

        loaded = load_run(out_file)
        assert loaded.n == 5
        assert loaded.correct_words > 0

    def test_run_under_partial_synchrony(self, capsys):
        assert main(
            ["run", "weak-ba", "--n", "5", "--synchrony", "gst:3"]
        ) == 0
        assert "decided" in capsys.readouterr().out

    def test_run_under_stretched_lockstep(self, capsys):
        assert main(
            ["run", "bb", "--n", "5", "--synchrony", "lockstep:2"]
        ) == 0
        assert "decided" in capsys.readouterr().out

    def test_rejects_bad_synchrony_spec(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "bb", "--n", "5", "--synchrony", "banana"])


class TestSweepAndTables:
    def test_sweep_prints_table_and_slope(self, capsys):
        assert main(["sweep", "bb", "--ns", "5", "9", "--max-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "failure-free words ~ n^" in out

    def test_sweep_under_partial_synchrony(self, capsys):
        assert main(
            ["sweep", "weak-ba", "--ns", "5", "--max-f", "0",
             "--synchrony", "gst:4"]
        ) == 0
        assert "weak_ba" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--ns", "5", "9"]) == 0
        out = capsys.readouterr().out
        assert "Byzantine Broadcast" in out
        assert "O(n(f+1))" in out

    def test_flows(self, capsys):
        assert main(["flows", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "activity timeline" in out
        assert "word-flow matrix" in out
        assert "centrality" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "paxos"])


class TestFaultFlags:
    def test_run_under_fault_plan_reports_effective_f(self, capsys):
        assert main(
            ["run", "bb", "--n", "7", "--drop-rate", "0.2",
             "--lossy-senders", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fault plan: seed=0, drop_rate=0.2" in out
        assert "effective f (corrupted + omission senders): 1" in out
        assert "verdict under plan: OK" in out

    def test_omissions_count_toward_the_fault_budget(self, capsys):
        assert main(
            ["run", "weak-ba", "--n", "5", "--f", "0", "--drop-rate", "0.3",
             "--lossy-senders", "1", "3", "--fault-seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "effective f (corrupted + omission senders): 2" in out

    def test_plan_exceeding_t_rejected(self):
        # n=5 -> t=2; three omission-faulty senders alone exceed t.
        with pytest.raises(SystemExit, match="exceed t=2"):
            main(
                ["run", "weak-ba", "--n", "5", "--f", "0", "--drop-rate",
                 "0.5", "--lossy-senders", "1", "2", "3"]
            )

    def test_no_plan_without_fault_flags(self, capsys):
        assert main(["run", "bb", "--n", "5", "--fault-seed", "9"]) == 0
        assert "fault plan" not in capsys.readouterr().out


class TestModelChecking:
    def test_explore_proves_the_bounded_space(self, capsys):
        assert main(
            ["mc", "explore", "--n", "4", "--max-ticks", "12",
             "--perm-cap", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "PROVED over the bounded schedule space" in out
        assert "pruned" in out and "distinct states" in out

    def test_explore_random_mode(self, capsys):
        assert main(
            ["mc", "explore", "--n", "4", "--mode", "random",
             "--max-runs", "5"]
        ) == 0
        assert "schedules: 5 run" in capsys.readouterr().out

    def test_mutant_kill_and_replay_roundtrip(self, tmp_path, capsys):
        assert main(
            ["mc", "mutants", "quorum-off-by-one", "--out-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "KILLED (agreement)" in out
        artifact = tmp_path / "mutant-quorum-off-by-one.replay.json"
        assert artifact.exists()
        assert main(["mc", "replay", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "reproduced deterministically" in out
        assert "[agreement]" in out


class TestRecoverDiagnostics:
    """`repro recover` must fail loudly — one diagnostic line, exit 1 —
    on the operator mistakes a long soak makes routine."""

    def test_missing_stem_is_diagnosed(self, tmp_path, capsys):
        stem = str(tmp_path / "never-written" / "p3")
        assert main(["recover", "inspect", stem]) == 1
        assert "no WAL or snapshot" in capsys.readouterr().out
        assert main(["recover", "replay", stem]) == 1
        assert "no WAL or snapshot" in capsys.readouterr().out

    def test_empty_wal_is_diagnosed(self, tmp_path, capsys):
        (tmp_path / "p0.wal").write_bytes(b"")
        stem = str(tmp_path / "p0")
        assert main(["recover", "inspect", stem]) == 1
        assert "died before its first flush" in capsys.readouterr().out
        assert main(["recover", "replay", stem]) == 1
        assert "died before its first flush" in capsys.readouterr().out

    def test_directory_stem_lists_the_stems_inside(self, tmp_path, capsys):
        (tmp_path / "p0.wal").write_bytes(b"")
        (tmp_path / "p1.wal").write_bytes(b"")
        assert main(["recover", "inspect", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "is a directory, not a process stem" in out
        assert "p0, p1" in out
        assert main(["recover", "replay", str(tmp_path)]) == 1
        assert "is a directory" in capsys.readouterr().out

    def test_fully_torn_wal_fails_both_commands(self, tmp_path, capsys):
        """Garbage from byte 0: no valid prefix to recover, so inspect
        reports FATAL damage and both commands exit nonzero."""
        (tmp_path / "p0.wal").write_bytes(b"\xff\xde\xad\xbe\xef" * 20)
        stem = str(tmp_path / "p0")
        assert main(["recover", "inspect", stem]) == 1
        out = capsys.readouterr().out
        assert "damage (FATAL)" in out and "UNLOADABLE" in out
        assert main(["recover", "replay", stem]) == 1
        assert "replay failed" in capsys.readouterr().out


class TestSoakCli:
    def test_sabotaged_soak_fails_writes_artifact_and_replays(
        self, tmp_path, capsys
    ):
        out_json = tmp_path / "soak.json"
        arts = tmp_path / "arts"
        assert main(
            ["soak", "--seed", "5", "--instances", "2", "--workers", "1",
             "--chaos-profile", "calm", "--inject", "0:double-bill",
             "--out", str(out_json), "--artifacts-dir", str(arts)]
        ) == 1
        out = capsys.readouterr().out
        assert "instances committed: 2" in out
        assert "SOAK FAILED: 1 violation(s)" in out
        assert out_json.exists()
        artifact = arts / "soak-violation-i0.json"
        assert artifact.exists()
        assert main(["obs", "validate", str(out_json)]) == 0
        capsys.readouterr()

        assert main(["soak", "--replay", str(artifact)]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_honest_soak_passes(self, tmp_path, capsys):
        assert main(
            ["soak", "--seed", "5", "--instances", "1", "--workers", "1",
             "--chaos-profile", "calm",
             "--out", str(tmp_path / "soak.json"),
             "--artifacts-dir", str(tmp_path / "arts")]
        ) == 0
        out = capsys.readouterr().out
        assert "violations: 0" in out
        assert "trend artifact written" in out

    def test_bad_inject_spec_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--inject wants"):
            main(
                ["soak", "--instances", "1", "--inject", "frogs",
                 "--out", str(tmp_path / "s.json"),
                 "--artifacts-dir", str(tmp_path / "a")]
            )
