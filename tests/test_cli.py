"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestRun:
    @pytest.mark.parametrize(
        "protocol",
        ["bb", "weak-ba", "strong-ba", "adaptive-strong-ba", "fallback",
         "dolev-strong"],
    )
    def test_run_each_protocol(self, protocol, capsys):
        assert main(["run", protocol, "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "decided" in out
        assert "words=" in out

    def test_run_with_failures(self, capsys):
        assert main(["run", "bb", "--n", "7", "--f", "2"]) == 0
        out = capsys.readouterr().out
        assert "f=2" in out
        assert "decided 'hello'" in out

    def test_run_with_adversary_choice(self, capsys):
        assert main(
            ["run", "weak-ba", "--n", "7", "--f", "1", "--adversary", "garbage"]
        ) == 0
        assert "decided" in capsys.readouterr().out

    def test_strong_ba_bit(self, capsys):
        assert main(["run", "strong-ba", "--n", "5", "--bit", "0"]) == 0
        assert "decided 0" in capsys.readouterr().out

    def test_layer_breakdown_printed(self, capsys):
        main(["run", "bb", "--n", "5"])
        out = capsys.readouterr().out
        assert "bb/weak_ba" in out

    def test_export_flag(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        assert main(["run", "bb", "--n", "5", "--export", str(out_file)]) == 0
        assert out_file.exists()
        from repro.analysis.export import load_run

        loaded = load_run(out_file)
        assert loaded.n == 5
        assert loaded.correct_words > 0


class TestSweepAndTables:
    def test_sweep_prints_table_and_slope(self, capsys):
        assert main(["sweep", "bb", "--ns", "5", "9", "--max-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "protocol" in out
        assert "failure-free words ~ n^" in out

    def test_table1(self, capsys):
        assert main(["table1", "--ns", "5", "9"]) == 0
        out = capsys.readouterr().out
        assert "Byzantine Broadcast" in out
        assert "O(n(f+1))" in out

    def test_flows(self, capsys):
        assert main(["flows", "--n", "5"]) == 0
        out = capsys.readouterr().out
        assert "activity timeline" in out
        assert "word-flow matrix" in out
        assert "centrality" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "paxos"])
