"""Unit tests for asyncnet internals (network, context, result)."""

import asyncio

import pytest

from repro.asyncnet.runner import AsyncNetwork, AsyncRunResult
from repro.errors import AgreementViolation, SchedulerError
from repro.metrics.words import WordLedger
from repro.runtime.trace import Trace


def make_result(config5, decisions, corrupted=frozenset()):
    return AsyncRunResult(
        config=config5,
        decisions=decisions,
        corrupted=frozenset(corrupted),
        ledger=WordLedger(),
        trace=Trace(),
        elapsed=0.1,
    )


class TestAsyncRunResult:
    def test_unanimous(self, config5):
        result = make_result(config5, {p: "v" for p in range(5)})
        assert result.unanimous_decision() == "v"

    def test_disagreement_raises(self, config5):
        decisions = {p: "v" for p in range(5)}
        decisions[2] = "w"
        with pytest.raises(AgreementViolation):
            make_result(config5, decisions).unanimous_decision()

    def test_missing_decision_raises(self, config5):
        with pytest.raises(AgreementViolation):
            make_result(config5, {0: "v"}).unanimous_decision()

    def test_corrupted_excluded(self, config5):
        result = make_result(
            config5, {p: "v" for p in range(4)}, corrupted={4}
        )
        assert result.unanimous_decision() == "v"


class TestAsyncNetwork:
    def test_latency_bound_enforced(self, config5):
        with pytest.raises(SchedulerError):
            AsyncNetwork(config5, tick_duration=0.01, latency=0.01)

    def test_post_records_and_queues(self, config5):
        async def scenario():
            network = AsyncNetwork(config5, tick_duration=0.01)
            network.post(0, 1, "hello", tick=3, scope="test")
            envelope = network.queue_for(1).get_nowait()
            assert envelope.sender == 0
            assert envelope.payload == "hello"
            assert envelope.sent_at == 3
            assert network.ledger.correct_words == 1
            record = network.ledger.records[0]
            assert record.scope == "test"

        asyncio.run(scenario())

    def test_post_to_unknown_pid_rejected(self, config5):
        async def scenario():
            network = AsyncNetwork(config5, tick_duration=0.01)
            with pytest.raises(SchedulerError):
                network.post(0, 99, "x", tick=0, scope="s")

        asyncio.run(scenario())

    def test_latency_delays_delivery(self, config5):
        async def scenario():
            network = AsyncNetwork(
                config5, tick_duration=0.05, latency=0.02
            )
            network.post(0, 1, "delayed", tick=0, scope="s")
            queue = network.queue_for(1)
            assert queue.empty()  # not yet delivered
            await asyncio.sleep(0.04)
            assert not queue.empty()

        asyncio.run(scenario())

    def test_byzantine_sender_words_not_correct(self, config5):
        async def scenario():
            network = AsyncNetwork(config5, tick_duration=0.01)
            network.corrupted = {3}
            network.post(3, 1, "evil", tick=0, scope="byzantine")
            assert network.ledger.correct_words == 0
            assert network.ledger.total_words == 1

        asyncio.run(scenario())
